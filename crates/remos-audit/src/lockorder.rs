//! Lock-order audit: cross-function deadlock-cycle detection plus
//! "lock held across a blocking call" latency hazards.
//!
//! Per function, every `Mutex`/`RwLock` acquisition is extracted with a
//! conservative guard lifetime; lock-sets then propagate along resolved
//! call edges, the union of all "held A while acquiring B" pairs forms
//! the global lock graph, and any strongly connected component in that
//! graph is a potential deadlock.
//!
//! ## Acquisition forms
//!
//! * `recv.lock()` / `recv.read()` / `recv.write()` with **zero
//!   arguments** — the `Mutex`/`RwLock` signatures; `io::Write::write`
//!   and friends take arguments and are not matched;
//! * `lock(&recv)` — the workspace's poison-tolerant free helper
//!   (`remos-core/src/modeler/mod.rs`, `remos-obs`).
//!
//! ## Lock identity
//!
//! `self.field` receivers canonicalize to `Type.field` using the
//! enclosing impl type, so `self.inner.lock()` inside two different
//! `CircuitBreaker` methods is the *same* lock. Bare locals and
//! parameters (generic `Arc<Mutex<_>>` handles like the fx crate's
//! `sim`) canonicalize to `crate:name` — within one crate, one name is
//! assumed to be one lock. That conflation is deliberate: it can only
//! create extra edges (a waivable false cycle), never hide one.
//!
//! ## Guard lifetime
//!
//! * `let g = x.lock();` (optionally through `?` / `.unwrap()` /
//!   `.expect(…)`) — *bound*: held to the end of the enclosing block or
//!   an explicit `drop(g)`;
//! * anything else — *temporary*: held to the end of the statement
//!   (`;` at the acquisition's depth) or, for block-tailed statements
//!   like `if let Some(x) = m.lock().get(k) { … }`, to the `}` that
//!   returns to the acquisition's depth (skipping over an `else`).
//!
//! This models Rust's actual temporary-lifetime rules closely enough
//! that `let now = self.inner.lock().last_now; self.record_failure(now)`
//! is correctly *not* a self-deadlock.

use crate::model::Workspace;
use crate::parse::{calls_in, CallSite};
use crate::{Token, TokenKind, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Method/free names that are themselves acquisition primitives; never
/// treated as call-graph edges.
const ACQUIRE_NAMES: &[&str] = &["lock", "read", "write"];

/// Calls that stall the caller: collector refresh/poll, solver runs,
/// channel receives, thread parking. Holding any lock across one of
/// these serializes every other holder behind a slow operation.
const BLOCKING_NAMES: &[&str] = &[
    "poll",
    "refresh_topology",
    "solve",
    "solve_refs",
    "solve_scoped",
    "solve_scoped_refs",
    "recv",
    "recv_timeout",
    "park",
    "sleep",
    "wait",
    "wait_timeout",
];

/// One lock acquisition with its guard's token extent.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Canonical lock id (`CircuitBreaker.inner`, `remos-fx:sim`).
    pub lock: String,
    /// Token index of the acquiring call name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Exclusive token index where the guard dies.
    pub end: usize,
}

/// Extract every acquisition in the body of workspace function `i`.
pub fn acquisitions(ws: &Workspace, i: usize) -> Vec<Acq> {
    let rec = &ws.fns[i];
    let toks = ws.toks(i);
    let (start, end) = rec.info.body;
    let krate = Workspace::crate_of(&rec.info.file);
    let impl_ty = rec.info.impl_type.as_deref();
    let mut out = Vec::new();
    for k in start..end {
        if toks[k].kind != TokenKind::Ident {
            continue;
        }
        let name = toks[k].text.as_str();
        if !ACQUIRE_NAMES.contains(&name) {
            continue;
        }
        let Some(open) = toks.get(k + 1) else { continue };
        if open.text != "(" {
            continue;
        }
        let method = k > start && toks[k - 1].text == ".";
        let (lock, close) = if method {
            // `recv.lock()` — zero-argument only.
            if toks.get(k + 2).map(|t| t.text.as_str()) != Some(")") {
                continue;
            }
            let chain = recv_chain(toks, k, start);
            if chain.is_empty() {
                continue;
            }
            (canon(&chain, impl_ty, krate), k + 2)
        } else if name == "lock" && !(k > start && toks[k - 1].text == "::") {
            // Free `lock(&x)` helper — single `&`-argument only.
            if toks.get(k + 2).map(|t| t.text.as_str()) != Some("&") {
                continue;
            }
            let mut chain = Vec::new();
            let mut j = k + 3;
            while j < end && toks[j].text != ")" {
                if toks[j].kind == TokenKind::Ident {
                    chain.push(toks[j].text.clone());
                } else if toks[j].text != "." {
                    break;
                }
                j += 1;
            }
            if chain.is_empty() || toks.get(j).map(|t| t.text.as_str()) != Some(")") {
                continue;
            }
            (canon(&chain, impl_ty, krate), j)
        } else {
            continue;
        };
        let guard_end = guard_extent(toks, start, end, k, close);
        out.push(Acq { lock, tok: k, line: toks[k].line, end: guard_end });
    }
    out
}

/// Dotted receiver chain ending just before `.name(` at `k`.
fn recv_chain(toks: &[Token], k: usize, start: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = k - 1; // the `.`
    while j > start && toks[j].text == "." && toks[j - 1].kind == TokenKind::Ident {
        chain.push(toks[j - 1].text.clone());
        if j < 2 {
            break;
        }
        j -= 2;
    }
    chain.reverse();
    chain
}

/// Canonical lock id for a receiver/argument ident chain.
fn canon(chain: &[String], impl_ty: Option<&str>, krate: &str) -> String {
    if chain.first().map(String::as_str) == Some("self") {
        if let Some(ty) = impl_ty {
            return format!("{ty}.{}", chain[1..].join("."));
        }
    }
    if krate.is_empty() {
        chain.join(".")
    } else {
        format!("{krate}:{}", chain.join("."))
    }
}

/// Exclusive token index where the guard from the acquisition at `k`
/// (argument list closing at `close`) dies.
fn guard_extent(toks: &[Token], start: usize, end: usize, k: usize, close: usize) -> usize {
    // Is this a bound guard? Statement must be
    // `let [mut] g = CHAIN.lock()[?|.unwrap()|.expect(…)]* ;`.
    let stmt_head = stmt_start(toks, start, k);
    let bound_name = bound_guard_name(toks, stmt_head, close, end);
    if let Some(g) = bound_name {
        // Held to the end of the enclosing block, or `drop(g)`.
        let mut depth = 0i32;
        let mut j = close + 1;
        while j < end {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                "drop"
                    if depth >= 0
                        && toks.get(j + 1).map(|t| t.text.as_str()) == Some("(")
                        && toks.get(j + 2).map(|t| t.text.as_str()) == Some(g.as_str())
                        && toks.get(j + 3).map(|t| t.text.as_str()) == Some(")") =>
                {
                    return j;
                }
                _ => {}
            }
            j += 1;
        }
        return end;
    }
    // Plain `if` / `while` condition temporaries die when the condition
    // finishes evaluating — at the body's `{`. (Not `if let` / `while
    // let` / `match`: scrutinee temporaries live to the end of the
    // statement on edition 2021.)
    let head = toks.get(stmt_head).map(|t| t.text.as_str());
    let head_is_let = toks.get(stmt_head + 1).map(|t| t.text.as_str()) == Some("let");
    if matches!(head, Some("if") | Some("while")) && !head_is_let {
        let mut depth = 0i32;
        let mut j = close + 1;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => return j,
                _ => {}
            }
            j += 1;
        }
        return end;
    }
    // Temporary: to the `;` at this depth, or the `}` returning to this
    // depth (not followed by `else`) for block-tailed statements.
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut j = close + 1;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace <= 0 && toks.get(j + 1).map(|t| t.text.as_str()) != Some("else") {
                    return j + 1;
                }
            }
            ";" if brace == 0 && paren <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Token index of the start of the statement containing `k`: just past
/// the previous `;`, `{`, or `}` at the same nesting.
fn stmt_start(toks: &[Token], start: usize, k: usize) -> usize {
    let mut j = k;
    while j > start {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => return j,
            _ => j -= 1,
        }
    }
    start
}

/// `Some(name)` when the statement head reads `let [mut] name =` and the
/// expression after `close` is only `?` / `.unwrap()` / `.expect(…)`
/// chains ending in `;`.
fn bound_guard_name(toks: &[Token], head: usize, close: usize, end: usize) -> Option<String> {
    if toks.get(head).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    let mut j = head + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let name = toks.get(j).filter(|t| t.kind == TokenKind::Ident)?.text.clone();
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    // Tail after the acquisition's closing paren.
    let mut j = close + 1;
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some(";") => return Some(name),
            Some("?") => j += 1,
            Some(".") => {
                let m = toks.get(j + 1)?;
                if m.text != "unwrap" && m.text != "expect" {
                    return None;
                }
                if toks.get(j + 2).map(|t| t.text.as_str()) != Some("(") {
                    return None;
                }
                // Skip the balanced argument list.
                let mut depth = 0i32;
                let mut p = j + 2;
                while p < end {
                    match toks[p].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    p += 1;
                }
                j = p + 1;
            }
            _ => return None,
        }
    }
}

/// One directed edge in the global lock graph: `from` was held while
/// `to` was acquired, witnessed at `file:line` inside `via`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: PathBuf,
    pub line: u32,
    pub via: String,
}

/// Full analysis result, exposed for tests and the driver.
pub struct LockReport {
    pub edges: Vec<LockEdge>,
    pub violations: Vec<Violation>,
}

/// Run the lock-order audit across the workspace.
pub fn analyze(ws: &Workspace) -> LockReport {
    let n = ws.fns.len();
    let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(n);
    let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(n);
    for i in 0..n {
        if ws.fns[i].info.in_test {
            acqs.push(Vec::new());
            calls.push(Vec::new());
            continue;
        }
        acqs.push(acquisitions(ws, i));
        calls.push(
            calls_in(ws.toks(i), ws.fns[i].info.body)
                .into_iter()
                .filter(|c| !ACQUIRE_NAMES.contains(&c.name.as_str()))
                .collect(),
        );
    }

    // Transitive lock sets: locks a call into fn i may acquire, with one
    // witness location each. Fixpoint over resolved call edges.
    let mut trans: Vec<BTreeMap<String, (PathBuf, u32, String)>> = (0..n)
        .map(|i| {
            acqs[i]
                .iter()
                .map(|a| {
                    (
                        a.lock.clone(),
                        (ws.fns[i].info.file.clone(), a.line, ws.fns[i].info.qname()),
                    )
                })
                .collect()
        })
        .collect();
    // Transitive blocking reach: first blocking call a call into fn i
    // may hit.
    let mut blocking: Vec<Option<(String, PathBuf, u32)>> = (0..n)
        .map(|i| {
            calls[i]
                .iter()
                .find(|c| BLOCKING_NAMES.contains(&c.name.as_str()))
                .map(|c| (c.name.clone(), ws.fns[i].info.file.clone(), c.line))
        })
        .collect();
    // Lock-sets and blocking reach propagate only through *confidently*
    // resolved calls: `self.method()`, `Type::method()`, and free calls
    // (crate-narrowed). Dispatch through a field or local
    // (`self.sim.lock().now()`, `p.fire(...)`) fans out to every
    // same-named method in the workspace, which in practice merges every
    // lock into one giant false cycle — for those call shapes only the
    // direct blocking-name check below applies.
    let confident = |c: &CallSite| {
        c.qual.is_some()
            || (!c.method && c.recv.is_empty())
            || (c.recv.len() == 1 && c.recv[0] == "self")
    };
    let resolved: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|i| {
            calls[i]
                .iter()
                .map(|c| {
                    if !confident(c) {
                        return Vec::new();
                    }
                    ws.resolve(c, &ws.fns[i].info)
                        .into_iter()
                        .filter(|&g| !ws.fns[g].info.in_test)
                        .collect()
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for callees in &resolved[i] {
                for &g in callees {
                    if g == i {
                        continue;
                    }
                    let add: Vec<_> = trans[g]
                        .iter()
                        .filter(|(l, _)| !trans[i].contains_key(*l))
                        .map(|(l, w)| (l.clone(), w.clone()))
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        trans[i].extend(add);
                    }
                    if blocking[i].is_none() && blocking[g].is_some() {
                        blocking[i] = blocking[g].clone();
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges + held-across-blocking violations.
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut violations = Vec::new();
    let mut seen_block: BTreeSet<(PathBuf, u32, String)> = BTreeSet::new();
    for i in 0..n {
        let info = &ws.fns[i].info;
        for a in &acqs[i] {
            // Nested direct acquisitions.
            for b in &acqs[i] {
                if b.tok > a.tok && b.tok < a.end {
                    edges.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        file: info.file.clone(),
                        line: b.line,
                        via: info.qname(),
                    });
                }
            }
            for (ci, c) in calls[i].iter().enumerate() {
                if c.tok <= a.tok || c.tok >= a.end {
                    continue;
                }
                // Direct blocking call under a held guard.
                if BLOCKING_NAMES.contains(&c.name.as_str()) {
                    if seen_block.insert((info.file.clone(), c.line, a.lock.clone())) {
                        violations.push(Violation {
                            rule: "lock-across-blocking",
                            file: info.file.clone(),
                            line: c.line,
                            message: format!(
                                "guard on `{}` held across blocking call `{}` in `{}`; \
                                 drop the guard (or copy what you need out) first",
                                a.lock,
                                c.name,
                                info.qname()
                            ),
                            token: c.name.clone(),
                        });
                    }
                    continue;
                }
                for &g in &resolved[i][ci] {
                    if g == i {
                        continue;
                    }
                    // Locks the callee may take while ours is held. A
                    // re-acquisition of `a.lock` itself becomes a
                    // self-loop, which `cycles` reports as an immediate
                    // self-deadlock.
                    for (l, (wf, wl, wvia)) in &trans[g] {
                        edges.push(LockEdge {
                            from: a.lock.clone(),
                            to: l.clone(),
                            file: wf.clone(),
                            line: *wl,
                            via: format!("{} -> {wvia}", info.qname()),
                        });
                    }
                    // Blocking reached through the callee.
                    if let Some((bn, bf, bl)) = &blocking[g] {
                        if seen_block.insert((bf.clone(), *bl, a.lock.clone())) {
                            violations.push(Violation {
                                rule: "lock-across-blocking",
                                file: bf.clone(),
                                line: *bl,
                                message: format!(
                                    "guard on `{}` (held in `{}`, {}:{}) reaches blocking \
                                     call `{bn}` via `{}`",
                                    a.lock,
                                    info.qname(),
                                    info.file.display(),
                                    a.line,
                                    ws.fns[g].info.qname()
                                ),
                                token: bn.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    violations.extend(cycles(&edges));
    LockReport { edges, violations }
}

/// Find strongly connected components (and self-loops) in the lock
/// graph; one violation per cycle.
fn cycles(edges: &[LockEdge]) -> Vec<Violation> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let idx: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let n = names.len();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for e in edges {
        adj[idx[e.from.as_str()]].insert(idx[e.to.as_str()]);
    }
    // Kosaraju: order by finish time, then assign components on the
    // transposed graph.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative DFS with an explicit post-visit marker.
        let mut stack = vec![(s, false)];
        while let Some((v, post)) = stack.pop() {
            if post {
                order.push(v);
                continue;
            }
            if seen[v] {
                continue;
            }
            seen[v] = true;
            stack.push((v, true));
            for &w in &adj[v] {
                if !seen[w] {
                    stack.push((w, false));
                }
            }
        }
    }
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            if comp[v] != usize::MAX {
                continue;
            }
            comp[v] = ncomp;
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for v in 0..n {
        members[comp[v]].push(v);
    }
    let mut out = Vec::new();
    for group in members {
        let cyclic = group.len() > 1 || (group.len() == 1 && adj[group[0]].contains(&group[0]));
        if !cyclic {
            continue;
        }
        let locks: Vec<&str> = group.iter().map(|&v| names[v]).collect();
        // Witness: every edge between members of this component.
        let mut wit: Vec<String> = Vec::new();
        let mut first: Option<(&PathBuf, u32)> = None;
        for e in edges {
            let f = idx[e.from.as_str()];
            let t = idx[e.to.as_str()];
            if comp[f] == comp[group[0]]
                && comp[t] == comp[group[0]]
                && (group.len() > 1 || f == t)
            {
                if first.is_none() {
                    first = Some((&e.file, e.line));
                }
                wit.push(format!(
                    "{} -> {} at {}:{} ({})",
                    e.from,
                    e.to,
                    e.file.display(),
                    e.line,
                    e.via
                ));
            }
        }
        let (file, line) = match first {
            Some((f, l)) => (f.clone(), l),
            None => continue,
        };
        wit.sort();
        wit.dedup();
        out.push(Violation {
            rule: "lock-order-cycle",
            file,
            line,
            message: format!(
                "lock-order cycle between {{{}}}: {}",
                locks.join(", "),
                wit.join("; ")
            ),
            token: locks.first().map(|s| s.to_string()).unwrap_or_default(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (PathBuf::from(p), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn bound_guard_held_to_block_end_and_drop() {
        let w = ws(&[(
            "crates/remos-serve/src/x.rs",
            "impl S {
                fn f(&self) {
                    let g = self.a.lock();
                    self.touch();
                    drop(g);
                    self.after();
                }
            }",
        )]);
        let a = acquisitions(&w, 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].lock, "S.a");
        let toks = w.toks(0);
        // Guard dies at `drop`, so `after` is outside the extent.
        let after = toks.iter().position(|t| t.text == "after").unwrap();
        let touch = toks.iter().position(|t| t.text == "touch").unwrap();
        assert!(touch < a[0].end);
        assert!(after > a[0].end);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let w = ws(&[(
            "crates/remos-serve/src/x.rs",
            "impl S {
                fn f(&self) {
                    let now = self.inner.lock().last_now;
                    self.record_failure(now);
                }
            }",
        )]);
        let a = acquisitions(&w, 0);
        assert_eq!(a.len(), 1);
        let toks = w.toks(0);
        let rf = toks.iter().position(|t| t.text == "record_failure").unwrap();
        assert!(rf > a[0].end, "temporary must die at the `;`");
    }

    #[test]
    fn if_let_scrutinee_guard_spans_the_body() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "impl M {
                fn f(&self) {
                    if let Some(c) = lock(&self.cache).get(k) {
                        self.hit();
                    }
                    self.miss();
                }
            }",
        )]);
        let a = acquisitions(&w, 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].lock, "M.cache");
        let toks = w.toks(0);
        let hit = toks.iter().position(|t| t.text == "hit").unwrap();
        let miss = toks.iter().position(|t| t.text == "miss").unwrap();
        assert!(hit < a[0].end);
        assert!(miss > a[0].end);
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let w = ws(&[(
            "crates/remos-serve/src/x.rs",
            "impl P {
                fn forward(&self) { let g = self.a.lock(); let h = self.b.lock(); }
                fn backward(&self) { let g = self.b.lock(); let h = self.a.lock(); }
            }",
        )]);
        let rep = analyze(&w);
        let cyc: Vec<_> =
            rep.violations.iter().filter(|v| v.rule == "lock-order-cycle").collect();
        assert_eq!(cyc.len(), 1, "edges: {:?}", rep.edges);
        assert!(cyc[0].message.contains("P.a"));
        assert!(cyc[0].message.contains("P.b"));
    }

    #[test]
    fn cross_function_cycle_through_a_call_edge() {
        let w = ws(&[(
            "crates/remos-serve/src/x.rs",
            "impl P {
                fn forward(&self) { let g = self.a.lock(); self.take_b(); }
                fn take_b(&self) { let h = self.b.lock(); }
                fn backward(&self) { let g = self.b.lock(); self.take_a(); }
                fn take_a(&self) { let h = self.a.lock(); }
            }",
        )]);
        let rep = analyze(&w);
        assert!(
            rep.violations.iter().any(|v| v.rule == "lock-order-cycle"),
            "edges: {:?}",
            rep.edges
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let w = ws(&[(
            "crates/remos-serve/src/x.rs",
            "impl P {
                fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }
                fn two(&self) { let g = self.a.lock(); self.take_b(); }
                fn take_b(&self) { let h = self.b.lock(); }
            }",
        )]);
        let rep = analyze(&w);
        assert!(rep.violations.is_empty(), "got: {:?}", rep.violations);
    }

    #[test]
    fn guard_across_collector_poll_is_flagged() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "impl S {
                fn f(&self, col: &mut C) {
                    let g = self.state.lock();
                    col.poll();
                }
            }",
        )]);
        let rep = analyze(&w);
        let v: Vec<_> =
            rep.violations.iter().filter(|v| v.rule == "lock-across-blocking").collect();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("S.state"));
        assert!(v[0].message.contains("poll"));
    }

    #[test]
    fn transitive_blocking_through_a_callee() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "impl S {
                fn f(&self) { let g = self.state.lock(); self.helper(); }
                fn helper(&self) { self.col.refresh_topology(); }
            }",
        )]);
        let rep = analyze(&w);
        assert!(
            rep.violations
                .iter()
                .any(|v| v.rule == "lock-across-blocking"
                    && v.message.contains("refresh_topology")),
            "got: {:?}",
            rep.violations
        );
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let w = ws(&[(
            "crates/remos-obs/src/x.rs",
            "fn f(mut out: W, buf: &[u8]) { out.write(buf); out.flush(); }",
        )]);
        assert!(acquisitions(&w, 0).is_empty());
    }
}
