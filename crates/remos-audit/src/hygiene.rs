//! Error-hygiene pass: dropped `Result`s and panic sites reachable from
//! the serving/query hot paths.
//!
//! * `dropped-result` — `let _ = call(…);` where any call in the
//!   discarded expression resolves to a workspace function returning a
//!   `…Result` type. Discarding a fallible outcome silently converts an
//!   error into a wrong answer; match on it or propagate it. Macro
//!   statements (`let _ = writeln!(…)`) are exempt — the lexer never
//!   reports macro names as calls.
//! * `hot-path-unwrap` — `.unwrap()` / `.expect(…)` in any function
//!   reachable (over the resolved call graph) from the public serving
//!   and query entry points (`Remos::run`/`run_batch`/`run_within`,
//!   `Server::submit`/`serve_next`/`drain`). The per-file `panic-site`
//!   rule covers the core crates unconditionally; this rule extends
//!   the net to *any* crate a request can actually traverse.

use crate::model::Workspace;
use crate::parse::calls_in;
use crate::{TokenKind, Violation};
use std::collections::BTreeSet;

/// (impl type, method) pairs a request enters the workspace through.
const ENTRY_POINTS: &[(&str, &str)] = &[
    ("Remos", "run"),
    ("Remos", "run_batch"),
    ("Remos", "run_within"),
    ("Server", "submit"),
    ("Server", "serve_next"),
    ("Server", "drain"),
];

/// Run both hygiene rules across the workspace.
pub fn analyze(ws: &Workspace) -> Vec<Violation> {
    let mut out = dropped_results(ws);
    out.extend(hot_path_unwraps(ws));
    out
}

/// `let _ = fallible(…);` detection.
fn dropped_results(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..ws.fns.len() {
        let info = &ws.fns[i].info;
        if info.in_test {
            continue;
        }
        let toks = ws.toks(i);
        let (start, end) = info.body;
        let mut k = start;
        while k + 3 < end {
            if !(toks[k].text == "let" && toks[k + 1].text == "_" && toks[k + 2].text == "=") {
                k += 1;
                continue;
            }
            if toks[k].in_test {
                k += 3;
                continue;
            }
            // Statement extent: to the `;` at depth 0.
            let mut depth = 0i32;
            let mut stmt_end = k + 3;
            while stmt_end < end {
                match toks[stmt_end].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                stmt_end += 1;
            }
            for c in calls_in(toks, (k + 3, stmt_end)) {
                let fallible = ws
                    .resolve(&c, info)
                    .into_iter()
                    .any(|g| ws.fns[g].info.returns_result);
                if fallible {
                    out.push(Violation {
                        rule: "dropped-result",
                        file: info.file.clone(),
                        line: toks[k].line,
                        message: format!(
                            "`let _ =` discards the Result of `{}` in `{}`; handle or \
                             propagate the error (use `.ok()` with a comment if the drop \
                             is truly intended)",
                            c.name,
                            info.qname()
                        ),
                        token: c.name.clone(),
                    });
                    break; // one finding per statement
                }
            }
            k = stmt_end;
        }
    }
    out
}

/// BFS from the entry points, then flag unwrap/expect in reached code.
fn hot_path_unwraps(ws: &Workspace) -> Vec<Violation> {
    let n = ws.fns.len();
    let mut reached = vec![false; n];
    let mut queue: Vec<usize> = (0..n)
        .filter(|&i| {
            let f = &ws.fns[i].info;
            !f.in_test
                && ENTRY_POINTS.iter().any(|(ty, m)| {
                    f.impl_type.as_deref() == Some(*ty) && f.name == *m
                })
        })
        .collect();
    for &i in &queue {
        reached[i] = true;
    }
    while let Some(i) = queue.pop() {
        for c in calls_in(ws.toks(i), ws.fns[i].info.body) {
            for g in ws.resolve(&c, &ws.fns[i].info) {
                if !reached[g] && !ws.fns[g].info.in_test {
                    reached[g] = true;
                    queue.push(g);
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(std::path::PathBuf, u32)> = BTreeSet::new();
    for (i, &hit) in reached.iter().enumerate() {
        if !hit {
            continue;
        }
        let info = &ws.fns[i].info;
        let toks = ws.toks(i);
        let (start, end) = info.body;
        for k in start..end {
            let t = &toks[k];
            if t.kind != TokenKind::Ident || t.in_test {
                continue;
            }
            let is_unwrap = t.text == "unwrap" || t.text == "expect";
            if !is_unwrap
                || k == 0
                || toks[k - 1].text != "."
                || toks.get(k + 1).map(|x| x.text.as_str()) != Some("(")
            {
                continue;
            }
            if seen.insert((info.file.clone(), t.line)) {
                out.push(Violation {
                    rule: "hot-path-unwrap",
                    file: info.file.clone(),
                    line: t.line,
                    message: format!(
                        "`.{}(…)` in `{}` is reachable from a serving/query entry point; \
                         a panic here takes down the whole front end — return a typed \
                         RemosError instead",
                        t.text,
                        info.qname()
                    ),
                    token: t.text.clone(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (PathBuf::from(p), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn dropped_result_on_fallible_call() {
        let w = ws(&[(
            "crates/remos-net/src/x.rs",
            "impl E {
                fn stop_flow(&mut self, h: u32) -> NetResult<()> { Ok(()) }
                fn teardown(&mut self, h: u32) {
                    let _ = self.stop_flow(h);
                }
            }",
        )]);
        let got = dropped_results(&w);
        assert_eq!(got.len(), 1, "got: {got:?}");
        assert_eq!(got[0].rule, "dropped-result");
        assert_eq!(got[0].line, 4);
        assert_eq!(got[0].token, "stop_flow");
    }

    #[test]
    fn dropped_infallible_and_macros_are_clean() {
        let w = ws(&[(
            "crates/remos-net/src/x.rs",
            "impl E {
                fn count(&self) -> usize { 0 }
                fn f(&self, out: &mut String) {
                    let _ = self.count();
                    let _ = writeln!(out, \"x\");
                    let _ = out;
                }
            }",
        )]);
        assert!(dropped_results(&w).is_empty());
    }

    #[test]
    fn unwrap_reachable_from_entry_point_is_flagged() {
        let w = ws(&[
            (
                "crates/remos-core/src/a.rs",
                "impl Remos {
                    pub fn run(&mut self, q: &Query) -> u32 { helper(q) }
                }
                fn helper(q: &Query) -> u32 { q.first().unwrap() }",
            ),
            (
                "crates/remos-fx/src/b.rs",
                "fn unreached() -> u32 { none().unwrap() }",
            ),
        ]);
        let got = hot_path_unwraps(&w);
        assert_eq!(got.len(), 1, "got: {got:?}");
        assert_eq!(got[0].rule, "hot-path-unwrap");
        assert!(got[0].file.ends_with("a.rs"));
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws(&[(
            "crates/remos-core/src/a.rs",
            "impl Remos { pub fn run(&self) { helper() } }
             fn helper() {}
             #[cfg(test)]
             mod tests {
                 fn t() { let _ = fail(); x.unwrap(); }
                 fn fail() -> CoreResult<()> { Ok(()) }
             }",
        )]);
        assert!(analyze(&w).is_empty());
    }
}
