//! Fixture-based golden tests for the cross-file analyzer, plus a
//! real-workspace cleanliness gate.
//!
//! The fixture tree under `tests/fixtures/ws/` is a miniature workspace
//! (its files are analyzed, never compiled) seeding at least one
//! violation per rule — `determinism-taint` seeds two, a cross-function
//! flow and the coordinator's epoch-vector digest — next to the clean
//! patterns the rules must NOT flag. The golden file
//! `tests/fixtures/expected.json` is the byte-exact JSON report the
//! driver must produce for it.

use remos_audit::driver::{fix_allowlist, run, RunResult};
use remos_audit::report::{to_json, to_sarif};
use std::path::{Path, PathBuf};

/// Walk up from the build-time manifest dir to the checkout root (the
/// directory containing `crates/remos-audit/tests/fixtures/ws`). Works
/// from both the real package and the offline-harness mirror.
fn repo_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        if dir.join("crates/remos-audit/tests/fixtures/ws").is_dir() {
            return dir;
        }
        assert!(dir.pop(), "could not locate the repo root from CARGO_MANIFEST_DIR");
    }
}

fn fixture_result() -> RunResult {
    run(&repo_root().join("crates/remos-audit/tests/fixtures/ws")).expect("fixture run")
}

fn find<'a>(r: &'a RunResult, rule: &str) -> Vec<&'a remos_audit::Violation> {
    r.rejected.iter().filter(|v| v.rule == rule).collect()
}

#[test]
fn golden_json_report() {
    let r = fixture_result();
    let stale: Vec<_> = r.stale_entries.iter().map(|&i| &r.allow[i]).collect();
    let got = to_json(&r.rejected, &stale);
    let golden_path = repo_root().join("crates/remos-audit/tests/fixtures/expected.json");
    let want = std::fs::read_to_string(&golden_path).expect("read golden file");
    assert_eq!(
        got, want,
        "analyzer JSON diverged from {}; if the change is intended, \
         regenerate with `cargo run -p remos-audit -- <fixture-ws> --format json \
         --out <golden>`",
        golden_path.display()
    );
}

#[test]
fn lock_order_cycle_fires_with_location() {
    let r = fixture_result();
    let v = find(&r, "lock-order-cycle");
    assert_eq!(v.len(), 1, "exactly one seeded cycle: {:?}", r.rejected);
    assert_eq!(v[0].file, Path::new("crates/remos-serve/src/lock_cycle.rs"));
    assert_eq!(v[0].line, 14, "witness is the nested `b` acquisition in `forward`");
    assert!(v[0].message.contains("Pair.a"));
    assert!(v[0].message.contains("Pair.b"));
    assert!(v[0].message.contains("Pair::backward"));
}

#[test]
fn lock_across_collector_call_fires_with_location() {
    let r = fixture_result();
    let v = find(&r, "lock-across-blocking");
    assert_eq!(v.len(), 1, "exactly one seeded hazard: {:?}", r.rejected);
    assert_eq!(v[0].file, Path::new("crates/remos-core/src/lock_poll.rs"));
    assert_eq!(v[0].line, 13, "the `col.poll()` call under the guard");
    assert!(v[0].message.contains("SnapshotCache.state"));
}

#[test]
fn determinism_taint_into_digest_fires_with_location() {
    let r = fixture_result();
    let v = find(&r, "determinism-taint");
    assert_eq!(v.len(), 2, "exactly two seeded taint flows: {:?}", r.rejected);
    let direct = v
        .iter()
        .find(|v| v.file == Path::new("crates/remos-core/src/taint_digest.rs"))
        .expect("cross-function flow");
    assert_eq!(direct.line, 9, "the `mix(&vals)` call forwarding hash-ordered values");
    // The flow is cross-function: `mix` itself is not a digest — only
    // its parameter summary reaches one.
    assert_eq!(direct.token, "mix");
}

/// The sharded coordinator's epoch-vector digest is a taint sink by the
/// `digest` name rule: a hash-ordered epoch vector feeding it is a
/// finding, while the scoped pool's index-ordered fan-out over a `Vec`
/// of shards is sanctioned — same sink, no finding.
#[test]
fn epoch_vector_digest_is_a_sink_and_pool_fan_out_is_sanctioned() {
    let r = fixture_result();
    let v = find(&r, "determinism-taint");
    let coord: Vec<_> = v
        .iter()
        .filter(|v| v.file == Path::new("crates/remos-core/src/coordinator.rs"))
        .collect();
    assert_eq!(coord.len(), 1, "exactly the hashed fan-out: {:?}", r.rejected);
    assert_eq!(coord[0].token, "epoch_digest");
    assert!(
        coord[0].message.contains("`hashed_fan_out`"),
        "finding must be in the HashMap path, not the pool fan-out: {}",
        coord[0].message
    );
    // `sanctioned_fan_out` (pool::run_indexed_mut over a Vec) stays
    // clean — checked implicitly by the exact count above and the
    // byte-exact golden.
}

#[test]
fn dropped_result_fires_with_location() {
    let r = fixture_result();
    let v = find(&r, "dropped-result");
    assert_eq!(v.len(), 1, "exactly one seeded drop: {:?}", r.rejected);
    assert_eq!(v[0].file, Path::new("crates/remos-net/src/dropped.rs"));
    assert_eq!(v[0].line, 17, "the `let _ = p.emit();` statement");
    assert_eq!(v[0].token, "emit");
}

#[test]
fn hot_path_unwrap_fires_with_location() {
    let r = fixture_result();
    let v = find(&r, "hot-path-unwrap");
    assert_eq!(v.len(), 1, "exactly one seeded hot-path unwrap: {:?}", r.rejected);
    assert_eq!(v[0].file, Path::new("crates/remos-core/src/hot.rs"));
    assert_eq!(v[0].line, 18, "the `.unwrap()` in the helper reached from Remos::run");
}

#[test]
fn sarif_report_covers_every_fixture_rule() {
    let r = fixture_result();
    let sarif = to_sarif(&r.rejected);
    for rule in [
        "lock-order-cycle",
        "lock-across-blocking",
        "determinism-taint",
        "dropped-result",
        "hot-path-unwrap",
        "panic-site",
    ] {
        assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "missing rule {rule}");
        assert!(sarif.contains(&format!("\"ruleId\": \"{rule}\"")), "missing result {rule}");
    }
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"startLine\": 14"));
}

/// The real workspace must be clean: zero unwaived violations and zero
/// stale allowlist entries. This is the same gate CI's audit job
/// enforces, so a PR cannot land code the analyzer rejects.
#[test]
fn real_workspace_is_clean() {
    let r = run(&repo_root()).expect("workspace run");
    assert!(
        r.rejected.is_empty(),
        "unwaived violations in the real workspace:\n{}",
        r.rejected.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
    assert!(
        r.stale_entries.is_empty(),
        "stale audit.allow entries: {:?}",
        r.stale_entries.iter().map(|&i| &r.allow[i]).collect::<Vec<_>>()
    );
}

/// `--fix-allowlist` drops exactly the stale entries and keeps
/// comments, blank lines, and live entries.
#[test]
fn fix_allowlist_removes_only_stale_entries() {
    // Build a throwaway workspace: one live panic-site violation plus an
    // allowlist with one live waiver and one stale one.
    let dir = std::env::temp_dir().join(format!("remos-audit-fix-{}", std::process::id()));
    let src_dir = dir.join("crates/remos-net/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("probe.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write src");
    std::fs::write(
        dir.join("audit.allow"),
        "# fixture allowlist\n\
         panic-site crates/remos-net/src/probe.rs x.unwrap()\n\
         panic-site crates/remos-net/src/gone.rs no_such_line\n",
    )
    .expect("write allow");

    let r = run(&dir).expect("fixture run");
    assert_eq!(r.rejected.len(), 0, "the live entry waives the unwrap");
    assert_eq!(r.waived.len(), 1);
    assert_eq!(r.stale_entries.len(), 1, "the gone.rs entry is stale");
    let removed = fix_allowlist(&r).expect("rewrite");
    assert_eq!(removed, 1);

    let after = std::fs::read_to_string(dir.join("audit.allow")).expect("reread");
    assert!(after.contains("# fixture allowlist"), "comments survive");
    assert!(after.contains("probe.rs x.unwrap()"), "live entries survive");
    assert!(!after.contains("gone.rs"), "stale entries are gone");

    // Second run: nothing stale remains.
    let r2 = run(&dir).expect("second run");
    assert!(r2.stale_entries.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
