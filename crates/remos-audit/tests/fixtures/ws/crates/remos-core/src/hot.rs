//! Seeded `hot-path-unwrap` violation: an `.unwrap()` in a helper
//! reachable from `Remos::run`. The same line also trips the per-file
//! `panic-site` token rule — the fixture intentionally shows both
//! passes reporting the one defect. This file is ANALYZED by the
//! audit's fixture tests, never compiled.

pub struct Remos {
    latest: Option<u32>,
}

impl Remos {
    pub fn run(&mut self) -> u32 {
        newest_sample(self.latest)
    }
}

fn newest_sample(s: Option<u32>) -> u32 {
    s.unwrap()
}
