//! Seeded `determinism-taint` violation: HashMap iteration order flows
//! through a helper into an FNV digest — two runs of the same workload
//! can digest differently. The flow is cross-function on purpose: the
//! sink is only reached via `mix`'s parameter summary. This file is
//! ANALYZED by the audit's fixture tests, never compiled.

pub fn util_digest(metrics: &HashMap<u32, u64>) -> u64 {
    let vals: Vec<u64> = metrics.values().copied().collect();
    mix(&vals)
}

fn mix(vals: &[u64]) -> u64 {
    let mut d = 0xcbf29ce484222325u64;
    for v in vals {
        d = event_digest(d, *v);
    }
    d
}

fn event_digest(d: u64, v: u64) -> u64 {
    (d ^ v).wrapping_mul(0x100000001b3)
}
