//! Seeded `lock-across-blocking` violation: a guard on the local cache
//! is held across `Collector::poll`, serializing every other holder
//! behind a measurement round-trip. This file is ANALYZED by the
//! audit's fixture tests, never compiled.

pub struct SnapshotCache {
    state: Mutex<Inner>,
}

impl SnapshotCache {
    pub fn refresh(&self, col: &mut dyn Collector) {
        let g = self.state.lock();
        col.poll();
        drop(g);
    }
}
