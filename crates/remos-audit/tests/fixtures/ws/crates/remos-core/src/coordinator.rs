//! Sharded-coordinator determinism fixtures: the federation's
//! epoch-vector digest is an order-sensitive sink (covered by the
//! `digest` name rule), and the scoped pool's *index-ordered* fan-out
//! is the sanctioned way to collect per-shard results — the pool
//! returns results in input-index order no matter how the workers
//! schedule, so a `Vec` of shards stays order-stable end to end. This
//! file is ANALYZED by the audit's fixture tests, never compiled.

/// CLEAN: shards live in a `Vec` and the pool's fan-out preserves
/// input-index order, so the epoch vector fed to the digest is
/// identical across runs regardless of worker interleaving.
pub fn sanctioned_fan_out(shards: &mut Vec<Shard>, workers: usize) -> u64 {
    let epochs = pool::run_indexed_mut(shards, workers, |_, s| s.poll_epoch());
    epoch_digest(&epochs)
}

/// VIOLATION: collecting the per-shard epochs out of a `HashMap` walks
/// it in hash order, so the plan-cache key digests differently between
/// two identical runs.
pub fn hashed_fan_out(shards: &HashMap<u32, Shard>) -> u64 {
    let epochs: Vec<u64> = shards.values().map(|s| s.epoch()).collect();
    epoch_digest(&epochs)
}

/// The epoch-vector digest: FNV-1a over per-shard structure epochs.
/// Order-sensitive by construction, hence a taint sink by name.
fn epoch_digest(epochs: &[u64]) -> u64 {
    let mut d = 0xcbf29ce484222325u64;
    for e in epochs {
        d = (d ^ e).wrapping_mul(0x100000001b3);
    }
    d
}
