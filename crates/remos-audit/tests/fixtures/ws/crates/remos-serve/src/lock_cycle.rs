//! Seeded `lock-order-cycle` violation: `forward` acquires `a` then
//! `b`, `backward` acquires `b` then `a`. Two threads running one each
//! can deadlock. This file is ANALYZED by the audit's fixture tests,
//! never compiled.

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let g = self.a.lock();
        let h = self.b.lock();
        *g + *h
    }

    pub fn backward(&self) -> u32 {
        let g = self.b.lock();
        let h = self.a.lock();
        *g - *h
    }
}
