//! Seeded `dropped-result` violation: `fire_and_forget` discards the
//! Result of a fallible call with `let _ =`. This file is ANALYZED by
//! the audit's fixture tests, never compiled.

pub struct Probe {
    seq: u64,
}

impl Probe {
    pub fn emit(&mut self) -> NetResult<u64> {
        self.seq += 1;
        Ok(self.seq)
    }
}

pub fn fire_and_forget(p: &mut Probe) {
    let _ = p.emit();
}
