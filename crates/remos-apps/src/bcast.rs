//! Communication optimization: broadcast strategy selection (§2).
//!
//! "Closely related to the application mapping issues is the problem of
//! exploiting low-level system information, such as network topology. As
//! an example, if an application relies heavily on broadcasts, some
//! subnets (with a specific network architecture) may be better platforms
//! than others." — and §2's closing note that Remos can be used "to
//! optimize primitives in a communication library by customizing the
//! implementation of group communication operations for a particular
//! network."
//!
//! Three broadcast algorithms are provided; [`select_strategy`] picks the
//! one a Remos logical-topology query predicts to finish first, and
//! [`execute_broadcast`] runs any of them with real flows so predictions
//! can be validated against the simulator.

use remos_core::{CoreResult, RemosGraph};
use remos_net::flow::FlowParams;
use remos_net::{NetError, NodeId, SimTime};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};

/// A broadcast algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BroadcastStrategy {
    /// The root sends a separate copy to every receiver, all at once.
    /// One round, but the root's uplink carries (P-1) copies.
    Flat,
    /// Binomial tree: in round k every node that has the data forwards to
    /// one that doesn't. ⌈log₂ P⌉ rounds of disjoint pairwise transfers.
    BinomialTree,
    /// Store-and-forward chain: node i forwards to node i+1. P-1 rounds,
    /// each a single transfer.
    Chain,
}

impl BroadcastStrategy {
    /// All strategies.
    pub fn all() -> [BroadcastStrategy; 3] {
        [BroadcastStrategy::Flat, BroadcastStrategy::BinomialTree, BroadcastStrategy::Chain]
    }

    /// The transfer rounds for `p` members (member 0 is the root): each
    /// round is a set of `(src rank, dst rank)` pairs that run
    /// concurrently.
    pub fn rounds(&self, p: usize) -> Vec<Vec<(usize, usize)>> {
        match self {
            BroadcastStrategy::Flat => {
                vec![(1..p).map(|d| (0, d)).collect()]
            }
            BroadcastStrategy::BinomialTree => {
                let mut rounds = Vec::new();
                let mut have = 1; // ranks [0, have) hold the data
                while have < p {
                    let round: Vec<(usize, usize)> = (0..have)
                        .filter_map(|s| {
                            let d = s + have;
                            (d < p).then_some((s, d))
                        })
                        .collect();
                    rounds.push(round);
                    have *= 2;
                }
                rounds
            }
            BroadcastStrategy::Chain => {
                (0..p.saturating_sub(1)).map(|i| vec![(i, i + 1)]).collect()
            }
        }
    }
}

/// Predicted completion time (seconds) of broadcasting `bytes` from
/// `members[0]` over the measured logical topology.
///
/// Round model: concurrent transfers within a round share availability
/// according to how many of them leave the same source (the dominant
/// contention for Flat); the round ends with its slowest transfer.
pub fn predict_broadcast_secs(
    graph: &RemosGraph,
    members: &[String],
    bytes: u64,
    strategy: BroadcastStrategy,
) -> CoreResult<f64> {
    let idx: Vec<usize> =
        members.iter().map(|m| graph.index_of(m)).collect::<CoreResult<_>>()?;
    let mut total = 0.0;
    for round in strategy.rounds(members.len()) {
        let mut slowest: f64 = 0.0;
        for &(s, d) in &round {
            let fan_out = round.iter().filter(|&&(s2, _)| s2 == s).count() as f64;
            let avail = graph.path_avail_bw(idx[s], idx[d])? / fan_out;
            let latency = graph.path_latency(idx[s], idx[d])?.as_secs_f64();
            let t = if avail <= 0.0 {
                f64::INFINITY
            } else {
                bytes as f64 * 8.0 / avail + latency
            };
            slowest = slowest.max(t);
        }
        total += slowest;
    }
    Ok(total)
}

/// Pick the strategy with the lowest predicted completion time (ties
/// break in [`BroadcastStrategy::all`] order).
pub fn select_strategy(
    graph: &RemosGraph,
    members: &[String],
    bytes: u64,
) -> CoreResult<(BroadcastStrategy, f64)> {
    let mut best: Option<(BroadcastStrategy, f64)> = None;
    for s in BroadcastStrategy::all() {
        let t = predict_broadcast_secs(graph, members, bytes, s)?;
        match best {
            Some((_, bt)) if t >= bt => {}
            _ => best = Some((s, t)),
        }
    }
    Ok(best.expect("at least one strategy"))
}

/// Execute a broadcast with real flows; returns the elapsed simulated
/// seconds.
pub fn execute_broadcast(
    sim: &SharedSim,
    members: &[NodeId],
    bytes: u64,
    strategy: BroadcastStrategy,
) -> Result<f64, NetError> {
    let mut s = sim.lock();
    let t0: SimTime = s.now();
    for round in strategy.rounds(members.len()) {
        let mut handles = Vec::with_capacity(round.len());
        for &(src, dst) in &round {
            handles.push(s.start_flow(FlowParams::bulk(members[src], members[dst], bytes))?);
        }
        s.run_until_flows_complete(&handles)?;
    }
    Ok(s.now().since(t0).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::star;
    use remos_net::Simulator;
    use remos_snmp::sim::share;

    #[test]
    fn rounds_shapes() {
        let flat = BroadcastStrategy::Flat.rounds(5);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].len(), 4);

        let tree = BroadcastStrategy::BinomialTree.rounds(8);
        assert_eq!(tree.len(), 3); // log2(8)
        assert_eq!(tree.iter().map(Vec::len).sum::<usize>(), 7);
        // Every receiver appears exactly once as a destination.
        let mut dsts: Vec<usize> =
            tree.iter().flatten().map(|&(_, d)| d).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, (1..8).collect::<Vec<_>>());

        let chain = BroadcastStrategy::Chain.rounds(4);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[2], vec![(2, 3)]);
        // A source in round k of the tree must already hold the data.
        let mut have = [true, false, false, false, false, false, false, false];
        for round in &tree {
            for &(s, d) in round {
                assert!(have[s], "round sends from a non-holder");
                have[d] = true;
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(BroadcastStrategy::Flat.rounds(1)[0].is_empty());
        assert!(BroadcastStrategy::BinomialTree.rounds(1).is_empty());
        assert!(BroadcastStrategy::Chain.rounds(1).is_empty());
        assert_eq!(BroadcastStrategy::BinomialTree.rounds(2).len(), 1);
    }

    #[test]
    fn tree_beats_flat_on_a_star_and_prediction_agrees() {
        // 8 hosts on one switch: flat serializes 7 copies through the
        // root's uplink; the tree needs only 3 rounds.
        let topo = star(8);
        let sim = share(Simulator::new(topo).unwrap());
        let members: Vec<NodeId> = {
            let s = sim.lock();
            let t = s.topology_arc();
            (0..8).map(|i| t.lookup(&format!("h{i}")).unwrap()).collect()
        };
        let bytes = 1_250_000; // 10 Mbit
        let t_flat =
            execute_broadcast(&sim, &members, bytes, BroadcastStrategy::Flat).unwrap();
        let t_tree =
            execute_broadcast(&sim, &members, bytes, BroadcastStrategy::BinomialTree).unwrap();
        let t_chain =
            execute_broadcast(&sim, &members, bytes, BroadcastStrategy::Chain).unwrap();
        // Flat: 7 copies over one 100 Mbps uplink = 0.7 s.
        assert!((t_flat - 0.7).abs() < 0.01, "{t_flat}");
        // Tree: 3 rounds of parallel disjoint transfers = 0.3 s.
        assert!((t_tree - 0.3).abs() < 0.01, "{t_tree}");
        // Chain: 7 sequential transfers = 0.7 s.
        assert!((t_chain - 0.7).abs() < 0.01, "{t_chain}");
        assert!(t_tree < t_flat && t_tree <= t_chain);
    }

    #[test]
    fn selection_via_remos_graph() {
        use crate::TestbedHarness;
        use remos_core::Query;
        let mut h = TestbedHarness::new(star(8));
        let members: Vec<String> = (0..8).map(|i| format!("h{i}")).collect();
        let g = h
            .adapter
            .remos_mut()
            .run(Query::graph(members.iter().cloned()))
            .unwrap()
            .into_graph()
            .unwrap();
        let (best, t) = select_strategy(&g, &members, 1_250_000).unwrap();
        assert_eq!(best, BroadcastStrategy::BinomialTree);
        assert!((t - 0.3).abs() < 0.05, "{t}");
    }

    #[test]
    fn two_members_all_equal() {
        let topo = star(2);
        let sim = share(Simulator::new(topo).unwrap());
        let members: Vec<NodeId> = {
            let s = sim.lock();
            let t = s.topology_arc();
            (0..2).map(|i| t.lookup(&format!("h{i}")).unwrap()).collect()
        };
        for s in BroadcastStrategy::all() {
            let t = execute_broadcast(&sim, &members, 125_000, s).unwrap();
            assert!((t - 0.01).abs() < 1e-3, "{s:?}: {t}");
        }
    }
}
