//! Calibration constants.
//!
//! The simulated testbed is calibrated so that the *unloaded* execution
//! times of the FFT and Airshed program models land near the paper's
//! Table 1 numbers (measured on 1997-era DEC Alpha workstations and
//! 100 Mbps point-to-point Ethernet). Absolute agreement is not the goal
//! — the authors' testbed cannot be rebuilt — but starting in the right
//! regime makes the *relative* results (the actual claims of Tables 1–3)
//! directly comparable. EXPERIMENTS.md records paper-vs-measured for
//! every cell.

/// Host floating-point rate (flops/s). 50 Mflop/s reproduces the paper's
/// FFT timings on its DEC Alphas within ~10%.
pub const NODE_FLOPS: f64 = 50e6;

/// Testbed link rate: "Links: 100Mbps point-to-point ethernet".
pub const LINK_BPS: f64 = 100e6;

/// One-way per-hop latency. The paper's collector "assumes a fixed
/// per-hop delay"; 100 µs is a switched-100-Mbps-Ethernet-era figure.
pub const HOP_LATENCY_US: u64 = 100;

/// Cache/memory-hierarchy penalty applied to FFT flops: effective flops
/// per 1-D size-n FFT are `5 n log2 n * (1 + n / CACHE_KNEE)`. The
/// paper's FFT(1K) times grow faster than the pure flop count (5.7x from
/// 512 to 1K at 2 nodes); a linear-in-n memory penalty with knee 2048
/// reproduces that super-linearity.
pub const CACHE_KNEE: f64 = 2048.0;

/// Bytes of one complex sample (two f64).
pub const COMPLEX_BYTES: u64 = 16;

/// Airshed per-iteration replicated (sequential-fraction) work, flops.
pub const AIRSHED_REPLICATED_FLOPS: f64 = 75e6;

/// Airshed per-iteration parallel work, flops (split across ranks).
pub const AIRSHED_PARALLEL_FLOPS: f64 = 675e6;

/// Airshed per-iteration redistribution volume, bytes (divided by ranks²
/// per pair).
pub const AIRSHED_EXCHANGE_BYTES: u64 = 160_000_000;

/// Airshed per-iteration broadcast payload, bytes per destination.
pub const AIRSHED_BROADCAST_BYTES: u64 = 500_000;

/// Airshed outer iterations ("simulates diverse chemical and physical
/// phenomena" over many timesteps); 100 iterations lands the 3-node run
/// near the paper's ~908 s.
pub const AIRSHED_ITERATIONS: usize = 100;

/// Effective flops of one 1-D complex FFT of size `n`, including the
/// memory-hierarchy penalty.
pub fn fft_1d_flops(n: usize) -> f64 {
    let nf = n as f64;
    5.0 * nf * nf.log2() * (1.0 + nf / CACHE_KNEE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_flops_grow_superlinearly() {
        let f512 = fft_1d_flops(512);
        let f1024 = fft_1d_flops(1024);
        // More than 2x (linear) and more than the pure flops ratio
        // (2 * 10/9 ≈ 2.22).
        assert!(f1024 / f512 > 2.22 * 1.1, "{}", f1024 / f512);
    }
}
