//! Airshed pollution modelling.
//!
//! The paper's second application "contains a rich set of computation and
//! communication operations, as it simulates diverse chemical and
//! physical phenomena" [Subhlok et al. 98]. Two layers again:
//!
//! * a **real kernel** — a toy advection–reaction step on a 2-D
//!   concentration grid (upwind advection + Robertson-style linearized
//!   chemistry), enough to demonstrate the application pattern in the
//!   examples;
//! * the **program model** [`airshed_program`] — the iterated phase mix
//!   (replicated serial work, distributed parallel work, a boundary
//!   broadcast, a concentration-field redistribution) calibrated so the
//!   unloaded 3- and 5-node runs land near the paper's 908 s / 650 s.

use crate::calib;
use rayon::prelude::*;
use remos_fx::{CommPattern, Phase, Program};

/// A 2-D concentration grid with a wind field, advanced by
/// advection + chemistry steps.
#[derive(Clone, Debug)]
pub struct AirshedGrid {
    /// Grid side length.
    pub n: usize,
    /// Pollutant concentration, row-major n×n.
    pub conc: Vec<f64>,
    /// Wind (u, v) per cell.
    pub wind: Vec<(f64, f64)>,
}

impl AirshedGrid {
    /// A grid with a point emission source in the middle and a rotating
    /// wind field.
    pub fn new(n: usize) -> AirshedGrid {
        assert!(n >= 4);
        let mut conc = vec![0.0; n * n];
        conc[(n / 2) * n + n / 2] = 1000.0;
        let wind = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                // Solid-body rotation about the grid centre.
                let dy = r as f64 - n as f64 / 2.0;
                let dx = c as f64 - n as f64 / 2.0;
                (-dy * 0.05, dx * 0.05)
            })
            .collect();
        AirshedGrid { n, conc, wind }
    }

    /// One upwind-advection + first-order-decay step. `dt` must satisfy
    /// the CFL-ish bound `|wind| * dt < 1`.
    pub fn step(&mut self, dt: f64, decay: f64) {
        let n = self.n;
        let old = self.conc.clone();
        let get = |r: isize, c: isize| -> f64 {
            if r < 0 || c < 0 || r >= n as isize || c >= n as isize {
                0.0
            } else {
                old[r as usize * n + c as usize]
            }
        };
        self.conc
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, v)| {
                let (r, c) = ((i / n) as isize, (i % n) as isize);
                let (u, w) = self.wind[i];
                // Upwind differences.
                let ddx = if u >= 0.0 { get(r, c) - get(r, c - 1) } else { get(r, c + 1) - get(r, c) };
                let ddy = if w >= 0.0 { get(r, c) - get(r - 1, c) } else { get(r + 1, c) - get(r, c) };
                let advected = get(r, c) - dt * (u * ddx + w * ddy);
                // Linearized chemistry: first-order decay.
                *v = (advected * (1.0 - decay * dt)).max(0.0);
            });
    }

    /// Total pollutant mass.
    pub fn total_mass(&self) -> f64 {
        self.conc.iter().sum()
    }
}

/// The Airshed program model on `p` ranks.
///
/// Per outer iteration: a compute phase with both a replicated
/// (sequential-fraction) and a distributed part, a boundary broadcast
/// from rank 0, and an all-to-all redistribution of the concentration
/// field (transport happens along rows, chemistry along columns — the
/// same transpose structure HPF codes use).
pub fn airshed_program(p: usize) -> Program {
    airshed_program_iters(p, calib::AIRSHED_ITERATIONS)
}

/// [`airshed_program`] with an explicit iteration count (short runs for
/// tests, full runs for the tables).
pub fn airshed_program_iters(p: usize, iterations: usize) -> Program {
    assert!(p >= 1);
    let pair_bytes = calib::AIRSHED_EXCHANGE_BYTES / (p * p) as u64;
    Program {
        name: "Airshed".into(),
        ranks: p,
        startup: vec![Phase::Comm(CommPattern::Broadcast {
            root: 0,
            bytes: calib::AIRSHED_BROADCAST_BYTES,
        })],
        body: vec![
            Phase::Compute {
                parallel_flops: calib::AIRSHED_PARALLEL_FLOPS,
                replicated_flops: calib::AIRSHED_REPLICATED_FLOPS,
            },
            Phase::Comm(CommPattern::Broadcast {
                root: 0,
                bytes: calib::AIRSHED_BROADCAST_BYTES,
            }),
            Phase::Comm(CommPattern::AllToAll { bytes_per_pair: pair_bytes }),
        ],
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_mass_decays_under_chemistry() {
        let mut g = AirshedGrid::new(16);
        let m0 = g.total_mass();
        for _ in 0..10 {
            g.step(0.5, 0.1);
        }
        let m1 = g.total_mass();
        assert!(m1 < m0, "{m1} !< {m0}");
        assert!(m1 > 0.0);
    }

    #[test]
    fn grid_stays_non_negative() {
        let mut g = AirshedGrid::new(12);
        for _ in 0..50 {
            g.step(0.5, 0.05);
        }
        assert!(g.conc.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn advection_moves_plume() {
        let mut g = AirshedGrid::new(32);
        // Uniform eastward wind.
        for w in g.wind.iter_mut() {
            *w = (0.8, 0.0);
        }
        let centroid = |g: &AirshedGrid| -> f64 {
            let total = g.total_mass();
            g.conc
                .iter()
                .enumerate()
                .map(|(i, &v)| (i % g.n) as f64 * v)
                .sum::<f64>()
                / total
        };
        let c0 = centroid(&g);
        for _ in 0..10 {
            g.step(0.5, 0.0);
        }
        let c1 = centroid(&g);
        assert!(c1 > c0 + 1.0, "plume did not advect east: {c0} -> {c1}");
    }

    #[test]
    fn program_shape_and_scaling() {
        let p3 = airshed_program(3);
        assert_eq!(p3.ranks, 3);
        assert_eq!(p3.iterations, calib::AIRSHED_ITERATIONS);
        assert_eq!(p3.body.len(), 3);
        let p5 = airshed_program(5);
        // Redistribution volume per pair shrinks with p².
        let pair = |p: &Program| match &p.body[2] {
            Phase::Comm(CommPattern::AllToAll { bytes_per_pair }) => *bytes_per_pair,
            _ => panic!(),
        };
        assert!(pair(&p3) > pair(&p5));
        assert_eq!(pair(&p3), calib::AIRSHED_EXCHANGE_BYTES / 9);
    }

    #[test]
    fn short_run_constructor() {
        let p = airshed_program_iters(5, 3);
        assert_eq!(p.iterations, 3);
    }
}
