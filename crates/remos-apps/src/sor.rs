//! Pipelined SOR with Remos-driven pipeline-depth selection.
//!
//! §6 cites this adaptation parameter directly: "in \[21\] an adaptation
//! module selects the optimal pipeline depth for a pipelined SOR
//! application based on network and CPU performance" (Siegell &
//! Steenkiste, Concurrency P&E 9(3)). The grid flows through a chain of
//! P stages in `depth` blocks: deeper pipelines overlap more but pay the
//! per-step synchronization/latency cost more often.
//!
//! Cost model for one sweep at depth `d` over `P` stages:
//!
//! ```text
//! T(d) = (P + d - 1) * (C/d + X/d + o)
//! ```
//!
//! with `C` the per-stage compute seconds, `X` the per-stage transfer
//! seconds at measured bandwidth, and `o` the per-step overhead (barrier +
//! path latency). The optimum is near `d* = sqrt((P-1)(C+X)/o)`.

use remos_core::prelude::*;
use remos_core::Remos;
use remos_net::flow::FlowParams;
use remos_net::{NodeId, SimDuration};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};

/// SOR pipeline parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SorConfig {
    /// Per-stage compute work for a whole sweep, flops.
    pub stage_flops: f64,
    /// Data volume forwarded between consecutive stages per sweep, bytes.
    pub stage_bytes: u64,
    /// Fixed per-step overhead (barrier, scheduling).
    pub step_overhead: SimDuration,
    /// Largest depth considered.
    pub max_depth: usize,
}

impl Default for SorConfig {
    fn default() -> Self {
        SorConfig {
            stage_flops: 25e6,   // 0.5 s/stage at 50 Mflops
            stage_bytes: 2_500_000, // 0.2 s/stage at 100 Mbps
            step_overhead: SimDuration::from_millis(5),
            max_depth: 64,
        }
    }
}

/// Predicted sweep time at a given depth.
pub fn predict_sweep_secs(
    depth: usize,
    stages: usize,
    compute_secs: f64,
    transfer_secs: f64,
    overhead_secs: f64,
) -> f64 {
    assert!(depth >= 1 && stages >= 1);
    let steps = (stages + depth - 1) as f64;
    steps * ((compute_secs + transfer_secs) / depth as f64 + overhead_secs)
}

/// Pick the depth minimizing the predicted sweep time from live Remos
/// measurements: per-stage compute rate from host info, the slowest
/// inter-stage bandwidth/latency from a graph query.
pub fn select_depth(
    remos: &mut Remos,
    chain: &[String],
    cfg: &SorConfig,
) -> CoreResult<(usize, f64)> {
    assert!(chain.len() >= 2, "pipeline needs at least 2 stages");
    let graph = remos.run(Query::graph(chain.iter().cloned()))?.into_graph()?;
    // Slowest hop gates every step.
    let mut worst_bw = f64::INFINITY;
    let mut worst_lat = 0.0f64;
    for w in chain.windows(2) {
        let a = graph.index_of(&w[0])?;
        let b = graph.index_of(&w[1])?;
        worst_bw = worst_bw.min(graph.path_avail_bw(a, b)?);
        worst_lat = worst_lat.max(graph.path_latency(a, b)?.as_secs_f64());
    }
    let mut slowest_flops = f64::INFINITY;
    for name in chain {
        let h = remos.host_info(name)?;
        slowest_flops = slowest_flops.min(h.compute_flops);
    }
    let compute = cfg.stage_flops / slowest_flops.max(1.0);
    let transfer = if worst_bw <= 0.0 {
        f64::INFINITY
    } else {
        cfg.stage_bytes as f64 * 8.0 / worst_bw
    };
    let overhead = cfg.step_overhead.as_secs_f64() + worst_lat;
    let mut best = (1usize, f64::INFINITY);
    for d in 1..=cfg.max_depth {
        let t = predict_sweep_secs(d, chain.len(), compute, transfer, overhead);
        if t < best.1 {
            best = (d, t);
        }
    }
    Ok(best)
}

/// Execute one pipelined sweep at `depth` with real flows; returns
/// elapsed simulated seconds.
pub fn execute_sweep(
    sim: &SharedSim,
    chain: &[NodeId],
    cfg: &SorConfig,
    depth: usize,
) -> CoreResult<f64> {
    assert!(depth >= 1 && chain.len() >= 2);
    let p = chain.len();
    let mut s = sim.lock();
    let t0 = s.now();
    let topo = s.topology_arc();
    let slowest_flops = chain
        .iter()
        .map(|&n| topo.node(n).compute_flops)
        .fold(f64::INFINITY, f64::min);
    let block_compute =
        SimDuration::from_secs_f64(cfg.stage_flops / depth as f64 / slowest_flops.max(1.0));
    let block_bytes = (cfg.stage_bytes / depth as u64).max(1);

    for step in 0..(p + depth - 1) {
        // Stages holding a block this step compute concurrently.
        let active: Vec<usize> = (0..p)
            .filter(|&i| step >= i && step - i < depth)
            .collect();
        if active.is_empty() {
            continue;
        }
        s.run_for(block_compute).map_err(remos_core::RemosError::from)?;
        // Forward boundaries downstream (concurrently).
        let mut handles = Vec::new();
        for &i in &active {
            if i + 1 < p {
                handles.push(
                    s.start_flow(FlowParams::bulk(chain[i], chain[i + 1], block_bytes))
                        .map_err(remos_core::RemosError::from)?,
                );
            }
        }
        if !handles.is_empty() {
            s.run_until_flows_complete(&handles)
                .map_err(remos_core::RemosError::from)?;
        }
        s.run_for(cfg.step_overhead).map_err(remos_core::RemosError::from)?;
    }
    Ok(s.now().since(t0).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::star;
    use crate::TestbedHarness;

    #[test]
    fn model_has_interior_optimum() {
        // C + X = 0.7 s, o = 5 ms, P = 5: d* ≈ sqrt(4*0.7/0.005) ≈ 24.
        let t = |d| predict_sweep_secs(d, 5, 0.5, 0.2, 0.005);
        let best = (1..=64).min_by(|&a, &b| t(a).partial_cmp(&t(b)).unwrap()).unwrap();
        assert!((20..=28).contains(&best), "{best}");
        assert!(t(best) < t(1));
        assert!(t(best) < t(64));
        // Monotone pieces: way below and way above the optimum are worse.
        assert!(t(2) < t(1));
        assert!(t(60) > t(best));
    }

    #[test]
    fn selection_matches_execution_ranking() {
        let mut h = TestbedHarness::new(star(5));
        let chain: Vec<String> = (0..5).map(|i| format!("h{i}")).collect();
        let cfg = SorConfig::default();
        let (d_star, predicted) = select_depth(h.adapter.remos_mut(), &chain, &cfg).unwrap();
        assert!(d_star > 1 && d_star < cfg.max_depth, "{d_star}");

        let ids: Vec<NodeId> = {
            let s = h.sim.lock();
            let t = s.topology_arc();
            chain.iter().map(|n| t.lookup(n).unwrap()).collect()
        };
        let t_star = execute_sweep(&h.sim, &ids, &cfg, d_star).unwrap();
        let t_shallow = execute_sweep(&h.sim, &ids, &cfg, 1).unwrap();
        let t_deep = execute_sweep(&h.sim, &ids, &cfg, cfg.max_depth).unwrap();
        assert!(t_star < t_shallow, "{t_star} !< {t_shallow}");
        assert!(t_star < t_deep, "{t_star} !< {t_deep}");
        // The model's absolute prediction is in the right ballpark.
        assert!((t_star - predicted).abs() < predicted * 0.35, "{t_star} vs {predicted}");
    }

    #[test]
    fn congestion_shifts_depth() {
        // More transfer time (slower links) raises C+X and the optimal
        // depth with it.
        let quiet = {
            let mut h = TestbedHarness::new(star(5));
            let chain: Vec<String> = (0..5).map(|i| format!("h{i}")).collect();
            select_depth(h.adapter.remos_mut(), &chain, &SorConfig::default()).unwrap().0
        };
        let busy = {
            let mut h = TestbedHarness::new(star(5));
            // A 60 Mbps CBR stream on the h1->h2 hop leaves 40 Mbps:
            // transfers take 2.5x longer, pushing the optimum deeper.
            {
                let mut s = h.sim.lock();
                let t = s.topology_arc();
                let h1 = t.lookup("h1").unwrap();
                let h2 = t.lookup("h2").unwrap();
                s.start_flow(remos_net::flow::FlowParams::cbr(h1, h2, remos_net::mbps(60.0)))
                    .unwrap();
                s.run_for(SimDuration::from_secs(1)).unwrap();
            }
            let chain: Vec<String> = (0..5).map(|i| format!("h{i}")).collect();
            select_depth(h.adapter.remos_mut(), &chain, &SorConfig::default()).unwrap().0
        };
        assert!(busy > quiet, "busy {busy} <= quiet {quiet}");
    }
}
