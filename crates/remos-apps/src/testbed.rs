//! Topology builders.
//!
//! [`cmu_testbed`] is the reproduction of Fig 3: "Links: 100Mbps
//! point-to-point ethernet. Endpoints: DEC Alpha Systems (manchester-*
//! labeled m-*). Routers: Pentium Pro PCs running NetBSD (aspen,
//! timberline, whiteface)". The attachment layout is chosen to satisfy
//! every constraint the paper states: the synthetic traffic route is
//! `m-6 -> timberline -> whiteface -> m-8` (Fig 4), node selection from
//! start node m-4 under that traffic yields {m-1, m-2, m-4, m-5}, and any
//! node reaches any other within 3 router hops.

use crate::calib;
use remos_net::{mbps, NetError, NodeId, SimDuration, Topology, TopologyBuilder};

/// Host names of the testbed, in order.
pub const TESTBED_HOSTS: [&str; 8] =
    ["m-1", "m-2", "m-3", "m-4", "m-5", "m-6", "m-7", "m-8"];

/// Router names of the testbed.
pub const TESTBED_ROUTERS: [&str; 3] = ["aspen", "timberline", "whiteface"];

/// The CMU testbed (Fig 3): m-1..m-3 on aspen, m-4..m-6 on timberline,
/// m-7..m-8 on whiteface; routers chained
/// aspen — timberline — whiteface. All links 100 Mbps.
pub fn cmu_testbed() -> Topology {
    let mut b = TopologyBuilder::new();
    let lat = SimDuration::from_micros(calib::HOP_LATENCY_US);
    let hosts: Vec<NodeId> = TESTBED_HOSTS
        .iter()
        .map(|h| b.compute_with_speed(h, calib::NODE_FLOPS))
        .collect();
    let aspen = b.network("aspen");
    let timberline = b.network("timberline");
    let whiteface = b.network("whiteface");
    let attach = [
        (0, aspen),
        (1, aspen),
        (2, aspen),
        (3, timberline),
        (4, timberline),
        (5, timberline),
        (6, whiteface),
        (7, whiteface),
    ];
    for (h, r) in attach {
        b.link(hosts[h], r, mbps(100.0), lat).expect("host link");
    }
    b.link(aspen, timberline, mbps(100.0), lat).expect("backbone");
    b.link(timberline, whiteface, mbps(100.0), lat).expect("backbone");
    b.build().expect("testbed builds")
}

/// The Fig 1 example: compute nodes 1–8, network nodes A and B;
/// 10 Mbps host links, a 100 Mbps A—B link, and configurable switch
/// internal bandwidths (the figure's two interpretations).
pub fn fig1_network(internal_bw: Option<f64>) -> Topology {
    let mut b = TopologyBuilder::new();
    let lat = SimDuration::from_micros(calib::HOP_LATENCY_US);
    let mk_switch = |b: &mut TopologyBuilder, name: &str| match internal_bw {
        Some(bw) => b.network_with_internal_bw(name, bw),
        None => b.network(name),
    };
    let a = mk_switch(&mut b, "A");
    let bb = mk_switch(&mut b, "B");
    for i in 1..=4 {
        let h = b.compute(&format!("n{i}"));
        b.link(h, a, mbps(10.0), lat).expect("host link");
    }
    for i in 5..=8 {
        let h = b.compute(&format!("n{i}"));
        b.link(h, bb, mbps(10.0), lat).expect("host link");
    }
    b.link(a, bb, mbps(100.0), lat).expect("backbone");
    b.build().expect("fig1 builds")
}

/// A dumbbell: `n` hosts per side behind two routers joined by a
/// `backbone_bps` link. Host links 100 Mbps.
pub fn dumbbell(n: usize, backbone_bps: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let lat = SimDuration::from_micros(calib::HOP_LATENCY_US);
    let rl = b.network("left");
    let rr = b.network("right");
    for i in 0..n {
        let h = b.compute_with_speed(&format!("l{i}"), calib::NODE_FLOPS);
        b.link(h, rl, mbps(100.0), lat).expect("link");
    }
    for i in 0..n {
        let h = b.compute_with_speed(&format!("r{i}"), calib::NODE_FLOPS);
        b.link(h, rr, mbps(100.0), lat).expect("link");
    }
    b.link(rl, rr, backbone_bps, lat).expect("backbone");
    b.build().expect("dumbbell builds")
}

/// A star: `n` hosts on one switch (the degenerate LAN).
pub fn star(n: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let lat = SimDuration::from_micros(calib::HOP_LATENCY_US);
    let sw = b.network("sw");
    for i in 0..n {
        let h = b.compute_with_speed(&format!("h{i}"), calib::NODE_FLOPS);
        b.link(h, sw, mbps(100.0), lat).expect("link");
    }
    b.build().expect("star builds")
}

/// A seeded random two-level network for scaling studies: `routers`
/// network nodes connected by a random spanning tree plus `extra_links`
/// shortcuts, with `hosts` compute nodes attached round-robin.
///
/// Deterministic in `seed` (a simple LCG — no external RNG needed here).
pub fn random_network(
    hosts: usize,
    routers: usize,
    extra_links: usize,
    seed: u64,
) -> Result<Topology, NetError> {
    assert!(routers >= 1);
    let mut b = TopologyBuilder::new();
    let lat = SimDuration::from_micros(calib::HOP_LATENCY_US);
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = |bound: usize| -> usize {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    };
    let rs: Vec<NodeId> = (0..routers).map(|i| b.network(&format!("r{i}"))).collect();
    // Random spanning tree over routers.
    for i in 1..routers {
        let j = next(i);
        b.link(rs[i], rs[j], mbps(100.0), lat)?;
    }
    // Shortcut links (skip duplicates silently by trying distinct pairs).
    for _ in 0..extra_links {
        let i = next(routers);
        let j = next(routers);
        if i != j {
            // A duplicate shortcut pair is rejected by the builder;
            // that is the "skip silently" above, so the error is
            // discarded deliberately.
            b.link(rs[i], rs[j], mbps(100.0), lat).ok();
        }
    }
    for i in 0..hosts {
        let h = b.compute_with_speed(&format!("h{i}"), calib::NODE_FLOPS);
        b.link(h, rs[i % routers], mbps(100.0), lat)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::routing::Routing;
    use remos_net::topology::NodeKind;

    #[test]
    fn testbed_matches_fig3() {
        let t = cmu_testbed();
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.link_count(), 10);
        assert_eq!(t.compute_nodes().len(), 8);
        assert_eq!(t.network_nodes().len(), 3);
        assert!(t.is_connected());
        // All links are 100 Mbps.
        for l in t.link_ids() {
            assert_eq!(t.link(l).capacity, mbps(100.0));
        }
    }

    #[test]
    fn testbed_traffic_route_matches_fig4() {
        // "Traffic Route: m-6 -> timberline -> whiteface -> m-8"
        let t = cmu_testbed();
        let r = Routing::new(&t);
        let m6 = t.lookup("m-6").unwrap();
        let m8 = t.lookup("m-8").unwrap();
        let p = r.path(&t, m6, m8).unwrap();
        let names: Vec<&str> =
            p.nodes.iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, vec!["m-6", "timberline", "whiteface", "m-8"]);
    }

    #[test]
    fn testbed_three_hop_diameter() {
        // "any node can be reached from any other node with at most 3
        // hops" (router hops; i.e. ≤ 4 links).
        let t = cmu_testbed();
        let r = Routing::new(&t);
        let hosts = t.compute_nodes();
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    let p = r.path(&t, a, b).unwrap();
                    assert!(p.hop_count() <= 4, "{:?}", p.nodes);
                }
            }
        }
    }

    #[test]
    fn fig1_shape() {
        let t = fig1_network(Some(mbps(10.0)));
        assert_eq!(t.compute_nodes().len(), 8);
        assert_eq!(t.network_nodes().len(), 2);
        let a = t.lookup("A").unwrap();
        assert_eq!(t.node(a).internal_bw, Some(mbps(10.0)));
        assert_eq!(t.node(a).kind, NodeKind::Network);
        let none = fig1_network(None);
        assert_eq!(none.node(a).internal_bw, None);
    }

    #[test]
    fn dumbbell_and_star() {
        let d = dumbbell(3, mbps(10.0));
        assert_eq!(d.compute_nodes().len(), 6);
        assert!(d.is_connected());
        let s = star(5);
        assert_eq!(s.compute_nodes().len(), 5);
        assert!(s.is_connected());
    }

    #[test]
    fn random_network_is_connected_and_deterministic() {
        for seed in 0..5 {
            let t = random_network(20, 6, 4, seed).unwrap();
            assert!(t.is_connected(), "seed {seed}");
            assert_eq!(t.compute_nodes().len(), 20);
        }
        let a = random_network(10, 4, 2, 42).unwrap();
        let b = random_network(10, 4, 2, 42).unwrap();
        assert_eq!(a.link_count(), b.link_count());
    }
}
