//! Fast Fourier transforms.
//!
//! Two layers:
//! * a **real kernel** — an iterative radix-2 complex FFT and a 2-D FFT
//!   (sequential and rayon-row-parallel), used by the examples and to
//!   justify the flop model;
//! * the **program model** [`fft_program`] — the phase structure of the
//!   paper's parallel 2-D FFT: "a set of independent 1 dimensional row
//!   FFTs, followed by a transpose, and a set of independent 1
//!   dimensional column FFTs" (§8), plus the transpose back that restores
//!   the row-major distribution.

use crate::calib;
use rayon::prelude::*;
use remos_fx::{CommPattern, Phase, Program};
use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A complex number (f64 re/im) — self-contained so the kernel has no
/// external numeric dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructor.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// e^{iθ}.
    pub fn cis(theta: f64) -> Complex {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
/// `inverse` computes the unscaled inverse transform (divide by n to
/// invert exactly).
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT size {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Out-of-place transpose of an n×n row-major matrix.
pub fn transpose(data: &[Complex], n: usize) -> Vec<Complex> {
    assert_eq!(data.len(), n * n);
    let mut out = vec![Complex::default(); n * n];
    for r in 0..n {
        for c in 0..n {
            out[c * n + r] = data[r * n + c];
        }
    }
    out
}

/// 2-D FFT of an n×n row-major matrix: row FFTs, transpose, column (now
/// row) FFTs, transpose back — the exact phase structure the parallel
/// program model mirrors.
pub fn fft2d(data: &mut Vec<Complex>, n: usize, inverse: bool) {
    assert_eq!(data.len(), n * n);
    for row in data.chunks_mut(n) {
        fft(row, inverse);
    }
    *data = transpose(data, n);
    for row in data.chunks_mut(n) {
        fft(row, inverse);
    }
    *data = transpose(data, n);
}

/// Rayon-parallel 2-D FFT (rows in parallel) — the shared-memory analogue
/// of the distributed program, used by examples and benches.
pub fn fft2d_parallel(data: &mut Vec<Complex>, n: usize, inverse: bool) {
    assert_eq!(data.len(), n * n);
    data.par_chunks_mut(n).for_each(|row| fft(row, inverse));
    *data = transpose(data, n);
    data.par_chunks_mut(n).for_each(|row| fft(row, inverse));
    *data = transpose(data, n);
}

/// The parallel 2-D FFT program model for an n×n transform on `p` ranks.
///
/// Per run: row FFTs (n/p rows per rank), transpose (all-to-all of
/// `n²/p²` complex values per pair), column FFTs, transpose back.
pub fn fft_program(n: usize, p: usize) -> Program {
    assert!(n.is_power_of_two() && p >= 1);
    let rows_flops = n as f64 * calib::fft_1d_flops(n); // all rows
    let pair_bytes = (calib::COMPLEX_BYTES * (n * n) as u64) / (p * p) as u64;
    let transpose_phase = Phase::Comm(CommPattern::AllToAll { bytes_per_pair: pair_bytes });
    Program {
        name: format!("FFT ({n})"),
        ranks: p,
        startup: vec![],
        body: vec![
            Phase::Compute { parallel_flops: rows_flops, replicated_flops: 0.0 },
            transpose_phase.clone(),
            Phase::Compute { parallel_flops: rows_flops, replicated_flops: 0.0 },
            transpose_phase,
        ],
        iterations: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (t, &x) in input.iter().enumerate() {
                    acc = acc + x * Complex::cis(-2.0 * PI * (k * t) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut data = input.clone();
        fft(&mut data, false);
        let expected = naive_dft(&input);
        for (a, b) in data.iter().zip(&expected) {
            assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fft_inverse_roundtrip() {
        let input: Vec<Complex> =
            (0..64).map(|i| Complex::new(i as f64 * 0.1, -(i as f64) * 0.05)).collect();
        let mut data = input.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in data.iter().zip(&input) {
            let scaled = Complex::new(a.re / 64.0, a.im / 64.0);
            assert!((scaled - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data, false);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::default(); 12];
        fft(&mut data, false);
    }

    #[test]
    fn transpose_involution() {
        let n = 4;
        let data: Vec<Complex> =
            (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let tt = transpose(&transpose(&data, n), n);
        assert_eq!(tt, data);
        let t = transpose(&data, n);
        assert_eq!(t[n + 2], data[2 * n + 1]);
    }

    #[test]
    fn fft2d_parallel_matches_sequential() {
        let n = 32;
        let input: Vec<Complex> = (0..n * n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut seq = input.clone();
        fft2d(&mut seq, n, false);
        let mut par = input;
        fft2d_parallel(&mut par, n, false);
        for (a, b) in seq.iter().zip(&par) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft2d_roundtrip() {
        let n = 16;
        let input: Vec<Complex> =
            (0..n * n).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let mut data = input.clone();
        fft2d(&mut data, n, false);
        fft2d(&mut data, n, true);
        let scale = (n * n) as f64;
        for (a, b) in data.iter().zip(&input) {
            assert!((Complex::new(a.re / scale, a.im / scale) - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn program_shape() {
        let p = fft_program(512, 4);
        assert_eq!(p.ranks, 4);
        assert_eq!(p.iterations, 1);
        assert_eq!(p.body.len(), 4);
        // Transpose volume: total redistributed bytes per transpose is
        // (p²-p) pairs * 16*n²/p² = 16 n² (p-1)/p.
        let per_pair = (16 * 512 * 512 / 16) as u64;
        match &p.body[1] {
            Phase::Comm(CommPattern::AllToAll { bytes_per_pair }) => {
                assert_eq!(*bytes_per_pair, per_pair)
            }
            other => panic!("expected transpose, got {other:?}"),
        }
    }

    #[test]
    fn program_scales_down_with_ranks() {
        let p2 = fft_program(512, 2);
        let p4 = fft_program(512, 4);
        assert!(p4.total_comm_bytes() > p2.total_comm_bytes());
        // Total flops are rank-independent (no replicated work).
        assert!((p2.total_flops() - p4.total_flops()).abs() < 1.0);
    }
}
