//! Application quality metrics: an adaptive video stream (§2, §6).
//!
//! "Some applications must meet an application-specific quality model,
//! e.g., jitter-free display of an image sequence … As the network
//! environment changes, the application has to adjust its mix" — and §6:
//! "Video streaming has the property that the parameters to adjust …
//! are fairly obvious (typically the frame rate or frame size) … if the
//! available bandwidth drops, the frame rate should be reduced."
//!
//! The [`VideoStream`] sends fixed-size frames at one of a ladder of
//! frame rates. Every adjustment period it issues a Remos *fixed-flow*
//! query for the next-higher rung (upgrade if satisfiable with headroom)
//! and for its current rung (downgrade if no longer satisfiable) — the
//! §4.2 use of fixed flows: "for a fixed flow, an application may be
//! primarily interested in whether the network can support it."

use remos_core::prelude::*;
use remos_core::Remos;
use remos_net::flow::{FlowParams, FlowTag};
use remos_net::{Bps, SimDuration};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};

/// Configuration of an adaptive stream.
#[derive(Clone, Debug)]
pub struct VideoConfig {
    /// Frame payload, bytes.
    pub frame_bytes: u64,
    /// Frame-rate ladder (frames/s), ascending.
    pub rate_ladder: Vec<f64>,
    /// How often the controller re-evaluates.
    pub adjust_period: SimDuration,
    /// Required headroom to upgrade: the next rung's bandwidth must be
    /// granted at `headroom` × its requirement.
    pub headroom: f64,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            // 25 KB frames: 30 fps = 6 Mbit/s.
            frame_bytes: 25_000,
            rate_ladder: vec![5.0, 10.0, 15.0, 30.0],
            adjust_period: SimDuration::from_secs(2),
            headroom: 1.1,
        }
    }
}

/// Result of a streaming session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamReport {
    /// Frames actually delivered.
    pub frames_delivered: f64,
    /// Frames the top rung would have delivered in the same wall time.
    pub frames_ideal: f64,
    /// Frames that would have been lost had the stream *not* adapted
    /// (stayed at the top rung regardless of bandwidth).
    pub frames_lost_without_adaptation: f64,
    /// Rate changes performed: (time s, new fps).
    pub rate_changes: Vec<(f64, f64)>,
    /// Mean delivered frame rate.
    pub mean_fps: f64,
}

/// The adaptive sender.
pub struct VideoStream {
    cfg: VideoConfig,
    src: String,
    dst: String,
}

impl VideoStream {
    /// A stream from `src` to `dst`.
    pub fn new(src: &str, dst: &str, cfg: VideoConfig) -> VideoStream {
        VideoStream { cfg, src: src.to_string(), dst: dst.to_string() }
    }

    fn rate_bps(&self, fps: f64) -> Bps {
        self.cfg.frame_bytes as f64 * 8.0 * fps
    }

    /// Can the network support `fps` (with `margin` headroom)?
    fn supports(&self, remos: &mut Remos, fps: f64, margin: f64) -> CoreResult<bool> {
        let need = self.rate_bps(fps) * margin;
        let req = FlowInfoRequest::new().fixed(&self.src, &self.dst, need);
        let resp = remos.run(Query::flows(req))?.into_flows()?;
        Ok(resp.fixed[0].fully_satisfied)
    }

    /// Stream for `duration`, adapting every `adjust_period`. The stream
    /// itself runs as a CBR flow whose rate tracks the chosen rung; the
    /// achieved rate (max-min share) determines delivered frames.
    pub fn run(
        &self,
        sim: &SharedSim,
        remos: &mut Remos,
        duration: SimDuration,
    ) -> CoreResult<StreamReport> {
        let ladder = &self.cfg.rate_ladder;
        let mut rung = 0usize; // start conservatively at the bottom
        let Some(&top_fps) = ladder.last() else {
            return Err(remos_core::RemosError::InvalidQuery(
                remos_core::InvalidQueryKind::EmptyRateLadder,
            ));
        };

        let (src_id, dst_id) = {
            let s = sim.lock();
            let t = s.topology_arc();
            (
                t.lookup(&self.src).map_err(remos_core::RemosError::from)?,
                t.lookup(&self.dst).map_err(remos_core::RemosError::from)?,
            )
        };

        let t_start = sim.lock().now();
        let t_end = t_start + duration;
        let mut frames_delivered = 0.0;
        let mut frames_lost_na = 0.0; // without adaptation, at top rung
        let mut rate_changes = vec![(0.0, ladder[rung])];

        while sim.lock().now() < t_end {
            // One adjustment period at the current rung.
            let fps = ladder[rung];
            let flow = {
                let mut s = sim.lock();
                s.start_flow(
                    FlowParams::cbr(src_id, dst_id, self.rate_bps(fps))
                        .with_tag(FlowTag::APP),
                )
                .map_err(remos_core::RemosError::from)?
            };
            let period_end = (sim.lock().now() + self.cfg.adjust_period).min(t_end);
            {
                let mut s = sim.lock();
                s.run_until(period_end).map_err(remos_core::RemosError::from)?;
            }
            let rec = {
                let mut s = sim.lock();
                s.stop_flow(flow).map_err(remos_core::RemosError::from)?
            };
            let got_fps = rec.mean_rate() / (self.cfg.frame_bytes as f64 * 8.0);
            let period_secs = rec.finished.since(rec.started).as_secs_f64();
            frames_delivered += got_fps.min(fps) * period_secs;

            // What a stubborn top-rung sender would have lost: it offers
            // top_fps but only the achieved share arrives.
            let top_share = got_fps.min(fps) / fps; // fraction of offered rate delivered
            let na_delivered = top_fps * top_share.min(1.0);
            frames_lost_na += (top_fps - na_delivered).max(0.0) * period_secs;

            if sim.lock().now() >= t_end {
                break;
            }
            // Controller: upgrade if the next rung fits with headroom,
            // downgrade if even the current rung is unsupported.
            if rung + 1 < ladder.len()
                && self.supports(remos, ladder[rung + 1], self.cfg.headroom)?
            {
                rung += 1;
                rate_changes.push((
                    sim.lock().now().since(t_start).as_secs_f64(),
                    ladder[rung],
                ));
            } else if rung > 0 && !self.supports(remos, ladder[rung], 1.0)? {
                rung -= 1;
                rate_changes.push((
                    sim.lock().now().since(t_start).as_secs_f64(),
                    ladder[rung],
                ));
            }
        }
        let wall = sim.lock().now().since(t_start).as_secs_f64();
        Ok(StreamReport {
            frames_delivered,
            frames_ideal: top_fps * wall,
            frames_lost_without_adaptation: frames_lost_na,
            rate_changes,
            mean_fps: frames_delivered / wall.max(1e-9),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::cmu_testbed;
    use crate::TestbedHarness;
    use remos_net::mbps;
    use remos_net::SimTime;

    fn harness() -> TestbedHarness {
        TestbedHarness::new(cmu_testbed())
    }

    #[test]
    fn idle_network_climbs_to_top_rate() {
        let mut h = harness();
        let stream = VideoStream::new("m-1", "m-8", VideoConfig::default());
        let rep = stream
            .run(&h.sim, h.adapter.remos_mut(), SimDuration::from_secs(30))
            .unwrap();
        // The controller must reach 30 fps and deliver nearly everything
        // it offers (it starts at 5 fps, so the ideal is unreachable).
        assert_eq!(rep.rate_changes.last().unwrap().1, 30.0);
        assert!(rep.mean_fps > 15.0, "{}", rep.mean_fps);
    }

    #[test]
    fn congestion_forces_downgrade() {
        let mut h = harness();
        // The stream climbs on an idle network; at t = 20 s, 20 greedy
        // streams flood the shared path, leaving the video a ~4.8 Mbit/s
        // max-min share — below the 6 Mbit/s the 30 fps rung needs.
        crate::synthetic::add_greedy_traffic(
            &h.sim,
            "m-2",
            "m-7",
            20,
            SimTime::from_secs(20),
            None,
        )
        .unwrap();
        let stream = VideoStream::new("m-1", "m-8", VideoConfig::default());
        let rep = stream
            .run(&h.sim, h.adapter.remos_mut(), SimDuration::from_secs(60))
            .unwrap();
        // It reached the top rung before the congestion...
        assert!(rep.rate_changes.iter().any(|&(_, fps)| fps == 30.0), "{rep:?}");
        // ...then backed off below it.
        let final_fps = rep.rate_changes.last().unwrap().1;
        assert!(final_fps < 30.0, "{rep:?}");
        // A stubborn top-rung sender would have lost frames meanwhile.
        assert!(rep.frames_lost_without_adaptation > 0.0, "{rep:?}");
    }

    #[test]
    fn rate_bps_math() {
        let s = VideoStream::new("a", "b", VideoConfig::default());
        assert!((s.rate_bps(30.0) - mbps(6.0)).abs() < 1.0);
    }
}
