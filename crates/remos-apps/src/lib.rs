//! # remos-apps — applications, testbed, and experiment scenarios
//!
//! The paper evaluates Remos with "network-aware versions of the following
//! two programs: fast Fourier transforms (FFT) and Airshed pollution
//! modelling", executed on a dedicated IP testbed (Fig 3). This crate
//! provides:
//!
//! * [`fft`] — a real radix-2 complex FFT (sequential and rayon-parallel)
//!   plus [`fft::fft_program`], the 2-D FFT phase model (row FFTs,
//!   transpose, column FFTs, transpose back);
//! * [`airshed`] — a simplified advection–reaction kernel plus
//!   [`airshed::airshed_program`], the iterated mixed compute/communication
//!   phase model calibrated against the paper's execution times;
//! * [`testbed`] — topology builders: the CMU testbed (Fig 3/4), the Fig 1
//!   example network, dumbbells, stars, and seeded random networks;
//! * [`synthetic`] — the competing-traffic scenarios of §8.2–8.3;
//! * [`harness`] — one-call assembly of the full stack (simulator, SNMP
//!   agents, collector, Remos, adapter, runtime) for experiments.

pub mod airshed;
pub mod bcast;
pub mod calib;
pub mod fft;
pub mod harness;
pub mod scenario;
pub mod shipping;
pub mod sor;
pub mod synthetic;
pub mod testbed;
pub mod video;

pub use harness::TestbedHarness;
