//! One-call assembly of the full experiment stack.
//!
//! Builds, over any topology: the fluid network simulator, one SNMP agent
//! per node, the SNMP collector, a Remos instance, the adaptation module,
//! and the Fx runtime — i.e. everything in the paper's Fig 2 plus the
//! applications' runtime, wired to the same simulated network.

use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos_core::collector::SimClock;
use remos_core::{CoreResult, Remos, RemosConfig};
use remos_fx::runtime::{ExecutionReport, FxResult, FxRuntime, Mapping, RuntimeConfig};
use remos_fx::{AdaptConfig, Adapter, Program};
use remos_net::{Simulator, Topology};
use remos_obs::Obs;
use remos_snmp::fault::FaultDirector;
use remos_snmp::sim::{register_all_agents, register_all_agents_with_faults, share, SharedSim};
use remos_snmp::SimTransport;
use std::sync::Arc;

/// The assembled stack.
pub struct TestbedHarness {
    /// The shared simulated network.
    pub sim: SharedSim,
    /// The SNMP transport (for message-cost accounting).
    pub transport: Arc<SimTransport>,
    /// The Fx runtime.
    pub runtime: FxRuntime,
    /// The adaptation module (owns the Remos instance).
    pub adapter: Adapter,
    /// Shared observability handle: every layer (simulator engine, SNMP
    /// manager, collector, Remos facade, adapter) reports into it.
    pub obs: Obs,
}

impl TestbedHarness {
    /// Assemble the stack over `topo` with default configurations.
    pub fn new(topo: Topology) -> TestbedHarness {
        Self::with_configs(
            topo,
            RuntimeConfig::default(),
            AdaptConfig::default(),
            RemosConfig::default(),
        )
    }

    /// Assemble with explicit configurations.
    pub fn with_configs(
        topo: Topology,
        runtime_cfg: RuntimeConfig,
        adapt_cfg: AdaptConfig,
        remos_cfg: RemosConfig,
    ) -> TestbedHarness {
        let obs = Obs::new();
        let mut simulator = Simulator::new(topo).expect("topology is valid");
        simulator.set_obs(obs.clone());
        let sim = share(simulator);
        let transport = Arc::new(SimTransport::new());
        let agents = register_all_agents(&transport, &sim, "public");
        let mut collector = SnmpCollector::new(
            Arc::clone(&transport),
            agents,
            SnmpCollectorConfig::default(),
        );
        // React to linkDown/linkUp traps with re-discovery.
        collector.set_trap_source(Box::new(remos_snmp::sim::SimTrapSource::new(
            Arc::clone(&sim),
            "public",
        )));
        let mut remos = Remos::new(
            Box::new(collector),
            Box::new(SimClock(Arc::clone(&sim))),
            remos_cfg,
        );
        remos.set_obs(obs.clone());
        let mut adapter = Adapter::new(remos, adapt_cfg);
        adapter.set_obs(&obs);
        let runtime = FxRuntime::new(Arc::clone(&sim), runtime_cfg);
        TestbedHarness { sim, transport, runtime, adapter, obs }
    }

    /// The paper's testbed (Fig 3) with default configurations.
    pub fn cmu() -> TestbedHarness {
        Self::new(crate::testbed::cmu_testbed())
    }

    /// The paper's testbed with fault-scriptable agents: every agent
    /// honors `director`'s crash/freeze/flaky plans (the transport clock
    /// tracks the shared simulator, restarts reset sysUpTime and wipe
    /// counters), and the collector runs with `collector_cfg` so tests can
    /// tighten health/staleness thresholds.
    pub fn cmu_with_faults(
        director: &Arc<FaultDirector>,
        collector_cfg: SnmpCollectorConfig,
    ) -> TestbedHarness {
        let obs = Obs::new();
        let mut simulator =
            Simulator::new(crate::testbed::cmu_testbed()).expect("topology is valid");
        simulator.set_obs(obs.clone());
        let sim = share(simulator);
        let transport = Arc::new(SimTransport::new());
        let agents = register_all_agents_with_faults(&transport, &sim, "public", director);
        let mut collector =
            SnmpCollector::new(Arc::clone(&transport), agents, collector_cfg);
        collector.set_trap_source(Box::new(remos_snmp::sim::SimTrapSource::new(
            Arc::clone(&sim),
            "public",
        )));
        let mut remos = Remos::new(
            Box::new(collector),
            Box::new(SimClock(Arc::clone(&sim))),
            RemosConfig::default(),
        );
        remos.set_obs(obs.clone());
        let mut adapter = Adapter::new(remos, AdaptConfig::default());
        adapter.set_obs(&obs);
        let runtime = FxRuntime::new(Arc::clone(&sim), RuntimeConfig::default());
        TestbedHarness { sim, transport, runtime, adapter, obs }
    }

    /// Remos-driven node selection (§7.3): query, cluster, return names.
    pub fn select_nodes(
        &mut self,
        pool: &[&str],
        start: &str,
        k: usize,
    ) -> CoreResult<Vec<String>> {
        let pool: Vec<String> = pool.iter().map(|s| s.to_string()).collect();
        self.adapter.select_nodes(&pool, start, k)
    }

    /// Execute a program on a fixed node set.
    pub fn run_fixed(&mut self, prog: &Program, nodes: &[&str]) -> FxResult<ExecutionReport> {
        let mapping = Mapping::of(nodes)?;
        self.runtime.run(prog, &mapping)
    }

    /// Execute a program with per-iteration Remos-driven migration over
    /// `pool`, starting on `initial`.
    ///
    /// The application's own-traffic estimate handed to the adapter is the
    /// heaviest directed node-pair volume of one iteration divided by the
    /// last iteration's duration — "the application knows how much
    /// communication traffic it generates" (§8.3).
    pub fn run_adaptive(
        &mut self,
        prog: &Program,
        pool: &[&str],
        initial: &[&str],
    ) -> FxResult<ExecutionReport> {
        let pool: Vec<String> = pool.iter().map(|s| s.to_string()).collect();
        let initial = Mapping::of(initial)?;
        let per_iter_pair_bytes = heaviest_pair_bytes_per_iteration(prog, &initial);
        let TestbedHarness { runtime, adapter, .. } = self;
        runtime.run_with_hook(prog, initial, |_it, current, last_secs| {
            let own_rate = if last_secs > 0.0 {
                per_iter_pair_bytes as f64 * 8.0 / last_secs
            } else {
                0.0
            };
            let new = adapter.consider_migration(&pool, &current.nodes, own_rate)?;
            new.map(Mapping::new).transpose()
        })
    }
}

/// The heaviest directed node-pair communication volume of one body
/// iteration under a mapping (bytes).
pub fn heaviest_pair_bytes_per_iteration(prog: &Program, mapping: &Mapping) -> u64 {
    use remos_fx::Phase;
    use std::collections::HashMap;
    let mut agg: HashMap<(usize, usize), u64> = HashMap::new();
    for ph in &prog.body {
        if let Phase::Comm(pattern) = ph {
            for (rs, rd, bytes) in pattern.transfers(prog.ranks) {
                let ns = mapping.node_of_rank(rs);
                let nd = mapping.node_of_rank(rd);
                if ns != nd {
                    *agg.entry((ns, nd)).or_insert(0) += bytes;
                }
            }
        }
    }
    agg.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airshed::airshed_program_iters;
    use crate::fft::fft_program;
    use crate::synthetic::{install_scenario, TrafficScenario};
    use crate::testbed::TESTBED_HOSTS;

    #[test]
    fn selection_on_idle_testbed_prefers_index_order_ties() {
        let mut h = TestbedHarness::cmu();
        let sel = h.select_nodes(&TESTBED_HOSTS, "m-4", 2).unwrap();
        assert_eq!(sel[0], "m-4");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn fig4_node_selection_avoids_busy_links() {
        // The paper's Fig 4: traffic m-6 -> m-8, start node m-4, expected
        // selection {m-1, m-2, m-4, m-5}.
        let mut h = TestbedHarness::cmu();
        install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
        h.sim.lock().run_for(remos_net::SimDuration::from_secs(1)).unwrap();
        let mut sel = h.select_nodes(&TESTBED_HOSTS, "m-4", 4).unwrap();
        sel.sort();
        assert_eq!(sel, vec!["m-1", "m-2", "m-4", "m-5"]);
    }

    #[test]
    fn fft_runs_on_selected_nodes() {
        let mut h = TestbedHarness::cmu();
        let prog = fft_program(256, 2);
        let rep = h.run_fixed(&prog, &["m-4", "m-5"]).unwrap();
        assert!(rep.elapsed > 0.0);
        assert!(rep.bytes_sent > 0);
    }

    #[test]
    fn adaptive_run_migrates_under_interference() {
        let mut h = TestbedHarness::cmu();
        // Moderate run so the test stays fast: 5 iterations.
        let prog = airshed_program_iters(5, 5);
        install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
        h.sim.lock().run_for(remos_net::SimDuration::from_secs(1)).unwrap();
        let rep = h
            .run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-6", "m-7", "m-8"])
            .unwrap();
        // It must leave the loaded region: final mapping avoids m-6/m-8
        // whose links carry the traffic.
        assert!(
            !rep.final_mapping.iter().any(|n| n == "m-6" || n == "m-8"),
            "{:?}",
            rep.final_mapping
        );
        assert!(!rep.migrations.is_empty());
    }

    #[test]
    fn heaviest_pair_volume() {
        let prog = fft_program(512, 2);
        let m = Mapping::of(&["m-1", "m-2"]).unwrap();
        // Two transposes of 16*512²/4 bytes per pair.
        assert_eq!(
            heaviest_pair_bytes_per_iteration(&prog, &m),
            2 * 16 * 512 * 512 / 4
        );
    }
}
