//! Declarative experiment scenarios.
//!
//! A [`Scenario`] describes a topology plus background traffic in plain
//! data (JSON-serializable), so experiments can be written as files and
//! replayed through the CLI or the harness without code changes.

use crate::calib;
use remos_net::{mbps, NetError, SimDuration, SimTime, Topology, TopologyBuilder};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A node in a scenario topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Unique name.
    pub name: String,
    /// "host" or "router".
    pub kind: String,
    /// Host compute rate, Mflops (default 50).
    #[serde(default)]
    pub mflops: Option<f64>,
    /// Router internal bandwidth cap, Mbps (Fig 1 semantics).
    #[serde(default)]
    pub internal_mbps: Option<f64>,
}

/// A link in a scenario topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One endpoint name.
    pub a: String,
    /// Other endpoint name.
    pub b: String,
    /// Capacity in Mbps (default 100).
    #[serde(default)]
    pub mbps: Option<f64>,
    /// One-way latency in microseconds (default 100).
    #[serde(default)]
    pub latency_us: Option<u64>,
}

/// Background traffic in a scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TrafficSpec {
    /// Constant-bit-rate stream.
    Cbr {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
        /// Rate, Mbps.
        mbps: f64,
        /// Start time, seconds (default 0).
        #[serde(default)]
        start_s: f64,
        /// Stop time, seconds (default: never).
        #[serde(default)]
        stop_s: Option<f64>,
    },
    /// `streams` parallel greedy bulk flows.
    Greedy {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
        /// Parallel stream count.
        streams: usize,
        /// Start time, seconds (default 0).
        #[serde(default)]
        start_s: f64,
        /// Stop time, seconds (default: never).
        #[serde(default)]
        stop_s: Option<f64>,
    },
    /// Exponential on/off bursts.
    Bursty {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
        /// Mean burst length, seconds.
        mean_on_s: f64,
        /// Mean gap length, seconds.
        mean_off_s: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A scheduled link failure (and optional repair).
    LinkDown {
        /// One endpoint of the link.
        a: String,
        /// Other endpoint of the link.
        b: String,
        /// Failure time, seconds.
        at_s: f64,
        /// Repair time, seconds (default: never).
        #[serde(default)]
        restore_s: Option<f64>,
    },
}

/// A complete scenario.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name.
    #[serde(default)]
    pub name: String,
    /// Nodes.
    pub nodes: Vec<NodeSpec>,
    /// Links.
    pub links: Vec<LinkSpec>,
    /// Background traffic and events.
    #[serde(default)]
    pub traffic: Vec<TrafficSpec>,
}

/// Error building a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The topology data is invalid.
    Invalid(String),
    /// The underlying network builder rejected it.
    Net(NetError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
            ScenarioError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<NetError> for ScenarioError {
    fn from(e: NetError) -> Self {
        ScenarioError::Net(e)
    }
}

impl Scenario {
    /// The Fig 3 testbed with a chosen traffic pattern, as data.
    pub fn cmu(traffic: Vec<TrafficSpec>) -> Scenario {
        let mut nodes: Vec<NodeSpec> = crate::testbed::TESTBED_HOSTS
            .iter()
            .map(|h| NodeSpec {
                name: h.to_string(),
                kind: "host".into(),
                mflops: Some(calib::NODE_FLOPS / 1e6),
                internal_mbps: None,
            })
            .collect();
        for r in crate::testbed::TESTBED_ROUTERS {
            nodes.push(NodeSpec {
                name: r.to_string(),
                kind: "router".into(),
                mflops: None,
                internal_mbps: None,
            });
        }
        let mut links = Vec::new();
        let mut link = |a: &str, b: &str| {
            links.push(LinkSpec {
                a: a.to_string(),
                b: b.to_string(),
                mbps: Some(100.0),
                latency_us: Some(calib::HOP_LATENCY_US),
            })
        };
        for (h, r) in [
            ("m-1", "aspen"),
            ("m-2", "aspen"),
            ("m-3", "aspen"),
            ("m-4", "timberline"),
            ("m-5", "timberline"),
            ("m-6", "timberline"),
            ("m-7", "whiteface"),
            ("m-8", "whiteface"),
        ] {
            link(h, r);
        }
        link("aspen", "timberline");
        link("timberline", "whiteface");
        Scenario { name: "cmu-testbed".into(), nodes, links, traffic }
    }

    /// Build the topology.
    pub fn build_topology(&self) -> Result<Topology, ScenarioError> {
        if self.nodes.is_empty() {
            return Err(ScenarioError::Invalid("no nodes".into()));
        }
        let mut b = TopologyBuilder::new();
        let mut ids = HashMap::new();
        for n in &self.nodes {
            let id = match n.kind.as_str() {
                "host" => b.compute_with_speed(
                    &n.name,
                    n.mflops.unwrap_or(calib::NODE_FLOPS / 1e6) * 1e6,
                ),
                "router" => match n.internal_mbps {
                    Some(cap) => b.network_with_internal_bw(&n.name, mbps(cap)),
                    None => b.network(&n.name),
                },
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "node {:?}: kind must be \"host\" or \"router\", got {other:?}",
                        n.name
                    )))
                }
            };
            ids.insert(n.name.clone(), id);
        }
        for l in &self.links {
            let a = *ids
                .get(&l.a)
                .ok_or_else(|| ScenarioError::Invalid(format!("unknown node {:?}", l.a)))?;
            let bb = *ids
                .get(&l.b)
                .ok_or_else(|| ScenarioError::Invalid(format!("unknown node {:?}", l.b)))?;
            b.link(
                a,
                bb,
                mbps(l.mbps.unwrap_or(100.0)),
                SimDuration::from_micros(l.latency_us.unwrap_or(calib::HOP_LATENCY_US)),
            )?;
        }
        Ok(b.build()?)
    }

    /// Install the traffic/events into a shared simulator built from this
    /// scenario's topology.
    pub fn install_traffic(&self, sim: &SharedSim) -> Result<(), ScenarioError> {
        for t in &self.traffic {
            match t {
                TrafficSpec::Cbr { src, dst, mbps: rate, start_s, stop_s } => {
                    let mut s = sim.lock();
                    let topo = s.topology_arc();
                    let src = topo.lookup(src)?;
                    let dst = topo.lookup(dst)?;
                    s.add_process(
                        SimTime::from_secs_f64(*start_s),
                        Box::new(remos_net::traffic::CbrTraffic::new(
                            src,
                            dst,
                            mbps(*rate),
                            stop_s.map(SimTime::from_secs_f64),
                        )),
                    );
                }
                TrafficSpec::Greedy { src, dst, streams, start_s, stop_s } => {
                    let mut s = sim.lock();
                    let topo = s.topology_arc();
                    let src = topo.lookup(src)?;
                    let dst = topo.lookup(dst)?;
                    s.add_process(
                        SimTime::from_secs_f64(*start_s),
                        Box::new(remos_net::traffic::GreedyTraffic::new(
                            src,
                            dst,
                            *streams,
                            stop_s.map(SimTime::from_secs_f64),
                        )),
                    );
                }
                TrafficSpec::Bursty { src, dst, mean_on_s, mean_off_s, seed } => {
                    crate::synthetic::add_bursty_traffic(
                        sim,
                        src,
                        dst,
                        SimDuration::from_secs_f64(*mean_on_s),
                        SimDuration::from_secs_f64(*mean_off_s),
                        *seed,
                    )?;
                }
                TrafficSpec::LinkDown { a, b, at_s, restore_s } => {
                    let mut s = sim.lock();
                    let topo = s.topology_arc();
                    let na = topo.lookup(a)?;
                    let nb = topo.lookup(b)?;
                    let link = topo
                        .neighbors(na)
                        .iter()
                        .find(|&&(_, n)| n == nb)
                        .map(|&(l, _)| l)
                        .ok_or_else(|| {
                            ScenarioError::Invalid(format!("no link {a:?} -- {b:?}"))
                        })?;
                    s.schedule_link_state(SimTime::from_secs_f64(*at_s), link, false)?;
                    if let Some(r) = restore_s {
                        s.schedule_link_state(SimTime::from_secs_f64(*r), link, true)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Build the full [`crate::TestbedHarness`] for this scenario.
    pub fn build_harness(&self) -> Result<crate::TestbedHarness, ScenarioError> {
        let topo = self.build_topology()?;
        let h = crate::TestbedHarness::new(topo);
        self.install_traffic(&h.sim)?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::flow::FlowParams;

    fn mini() -> Scenario {
        Scenario {
            name: "mini".into(),
            nodes: vec![
                NodeSpec { name: "a".into(), kind: "host".into(), mflops: Some(100.0), internal_mbps: None },
                NodeSpec { name: "b".into(), kind: "host".into(), mflops: None, internal_mbps: None },
                NodeSpec { name: "r".into(), kind: "router".into(), mflops: None, internal_mbps: Some(50.0) },
            ],
            links: vec![
                LinkSpec { a: "a".into(), b: "r".into(), mbps: Some(100.0), latency_us: None },
                LinkSpec { a: "r".into(), b: "b".into(), mbps: None, latency_us: Some(250) },
            ],
            traffic: vec![TrafficSpec::Cbr {
                src: "a".into(),
                dst: "b".into(),
                mbps: 30.0,
                start_s: 1.0,
                stop_s: Some(3.0),
            }],
        }
    }

    #[test]
    fn builds_topology_with_defaults() {
        let t = mini().build_topology().unwrap();
        assert_eq!(t.node_count(), 3);
        let a = t.lookup("a").unwrap();
        assert_eq!(t.node(a).compute_flops, 100e6);
        let b = t.lookup("b").unwrap();
        assert_eq!(t.node(b).compute_flops, calib::NODE_FLOPS);
        let r = t.lookup("r").unwrap();
        assert_eq!(t.node(r).internal_bw, Some(mbps(50.0)));
        // Defaulted capacity and latency.
        let (l0, _) = t.neighbors(a)[0];
        assert_eq!(t.link(l0).capacity, mbps(100.0));
    }

    #[test]
    fn traffic_installs_and_runs() {
        let sc = mini();
        let h = sc.build_harness().unwrap();
        h.sim.lock().run_for(SimDuration::from_secs(5)).unwrap();
        let s = h.sim.lock();
        let topo = s.topology_arc();
        let a = topo.lookup("a").unwrap();
        let (link, _) = topo.neighbors(a)[0];
        // CBR 30 Mbps for 2 s = 7.5 MB.
        let octets = s.iface_out_octets(a, link);
        assert!((octets - 7.5e6).abs() < 100.0, "{octets}");
    }

    #[test]
    fn json_roundtrip() {
        let sc = Scenario::cmu(vec![TrafficSpec::Greedy {
            src: "m-6".into(),
            dst: "m-8".into(),
            streams: 8,
            start_s: 0.0,
            stop_s: None,
        }]);
        let json = serde_json::to_string_pretty(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes.len(), 11);
        assert_eq!(back.links.len(), 10);
        assert_eq!(back.traffic.len(), 1);
        back.build_topology().unwrap();
    }

    #[test]
    fn bad_scenarios_rejected() {
        let empty = Scenario::default();
        assert!(empty.build_topology().is_err());
        let mut bad_kind = mini();
        bad_kind.nodes[0].kind = "switchboard".into();
        assert!(matches!(bad_kind.build_topology(), Err(ScenarioError::Invalid(_))));
        let mut bad_link = mini();
        bad_link.links[0].a = "nope".into();
        assert!(bad_link.build_topology().is_err());
    }

    #[test]
    fn link_down_event_applies() {
        let mut sc = mini();
        sc.traffic = vec![TrafficSpec::LinkDown {
            a: "a".into(),
            b: "r".into(),
            at_s: 1.0,
            restore_s: Some(2.0),
        }];
        let h = sc.build_harness().unwrap();
        let (a, b, link) = {
            let s = h.sim.lock();
            let topo = s.topology_arc();
            let a = topo.lookup("a").unwrap();
            let b = topo.lookup("b").unwrap();
            let (link, _) = topo.neighbors(a)[0];
            (a, b, link)
        };
        let mut s = h.sim.lock();
        s.start_flow(FlowParams::cbr(a, b, mbps(10.0))).unwrap();
        s.run_for(SimDuration::from_millis(1500)).unwrap();
        assert!(!s.link_is_up(link));
        assert_eq!(s.active_flow_count(), 0, "flow dies with its only route");
        s.run_for(SimDuration::from_secs(1)).unwrap();
        assert!(s.link_is_up(link));
    }
}
