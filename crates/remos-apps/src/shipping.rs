//! Function and data shipping (§2).
//!
//! "In some scenarios, a tradeoff is possible between performing a
//! computation locally and performing the computation remotely, and such
//! tradeoffs depend on the availability of network and compute capacity,
//! based on a specific cost model, e.g., when deciding whether to perform
//! a simulation locally or on a remote server."
//!
//! [`decide`] implements that cost model on live Remos measurements
//! (host compute rates via the host-resources interface, transfer
//! bandwidth via a flow query), and [`execute`] carries the decision out
//! against the simulator so the prediction can be validated.

use remos_core::prelude::*;
use remos_core::Remos;
use remos_net::flow::FlowParams;
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};

/// A shippable job.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Job {
    /// Computation size, flops.
    pub work_flops: f64,
    /// Input data that must reach the executing node, bytes.
    pub input_bytes: u64,
    /// Result data that must return, bytes.
    pub output_bytes: u64,
}

/// Where to run, with predicted costs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShippingDecision {
    /// True to ship to the server, false to run locally.
    pub ship: bool,
    /// Predicted local execution time, seconds.
    pub local_secs: f64,
    /// Predicted remote execution time (transfers + compute), seconds.
    pub remote_secs: f64,
}

/// Decide local vs remote execution of `job` currently sitting on
/// `client`, with `server` as the candidate remote executor.
pub fn decide(
    remos: &mut Remos,
    client: &str,
    server: &str,
    job: &Job,
) -> CoreResult<ShippingDecision> {
    let client_host = remos.host_info(client)?;
    let server_host = remos.host_info(server)?;
    let local_secs = job.work_flops / client_host.compute_flops.max(1.0);

    // One simultaneous query for both transfer legs (they don't overlap
    // in time, but a simultaneous query is conservative if they share
    // links; §4.2's guidance).
    let req = FlowInfoRequest::new()
        .variable(client, server, 1.0)
        .variable(server, client, 1.0);
    let resp = remos.run(Query::flows(req))?.into_flows()?;
    let up = resp.variable[0].bandwidth.median;
    let down = resp.variable[1].bandwidth.median;
    let up_lat = resp.variable[0].latency.as_secs_f64();
    let down_lat = resp.variable[1].latency.as_secs_f64();

    let transfer = |bytes: u64, bw: f64, lat: f64| {
        if bw <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 * 8.0 / bw + lat
        }
    };
    let remote_secs = transfer(job.input_bytes, up, up_lat)
        + job.work_flops / server_host.compute_flops.max(1.0)
        + transfer(job.output_bytes, down, down_lat);

    Ok(ShippingDecision { ship: remote_secs < local_secs, local_secs, remote_secs })
}

/// Execute the job per `decision`; returns measured elapsed seconds.
/// Local compute advances the clock by `work/flops`; shipping performs
/// the real transfers.
pub fn execute(
    sim: &SharedSim,
    client: &str,
    server: &str,
    job: &Job,
    decision: &ShippingDecision,
) -> CoreResult<f64> {
    let mut s = sim.lock();
    let topo = s.topology_arc();
    let c = topo.lookup(client).map_err(remos_core::RemosError::from)?;
    let v = topo.lookup(server).map_err(remos_core::RemosError::from)?;
    let t0 = s.now();
    let compute_secs = |node: remos_net::NodeId| {
        job.work_flops / topo.node(node).compute_flops.max(1.0)
    };
    if decision.ship {
        let f = s
            .start_flow(FlowParams::bulk(c, v, job.input_bytes))
            .map_err(remos_core::RemosError::from)?;
        s.run_until_flows_complete(&[f]).map_err(remos_core::RemosError::from)?;
        s.run_for(remos_net::SimDuration::from_secs_f64(compute_secs(v)))
            .map_err(remos_core::RemosError::from)?;
        let f = s
            .start_flow(FlowParams::bulk(v, c, job.output_bytes))
            .map_err(remos_core::RemosError::from)?;
        s.run_until_flows_complete(&[f]).map_err(remos_core::RemosError::from)?;
    } else {
        s.run_for(remos_net::SimDuration::from_secs_f64(compute_secs(c)))
            .map_err(remos_core::RemosError::from)?;
    }
    Ok(s.now().since(t0).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib;
    use crate::TestbedHarness;
    use remos_net::{mbps, SimDuration, SimTime, TopologyBuilder};

    /// A slow client and a 10x server behind one router.
    fn asymmetric_harness() -> TestbedHarness {
        let mut b = TopologyBuilder::new();
        let c = b.compute_with_speed("client", calib::NODE_FLOPS);
        let v = b.compute_with_speed("server", calib::NODE_FLOPS * 10.0);
        let r = b.network("r");
        b.link(c, r, mbps(100.0), SimDuration::from_micros(100)).unwrap();
        b.link(r, v, mbps(100.0), SimDuration::from_micros(100)).unwrap();
        TestbedHarness::new(b.build().unwrap())
    }

    #[test]
    fn big_compute_small_data_ships() {
        let mut h = asymmetric_harness();
        // 500 Mflops (10 s local, 1 s remote), 1 MB each way (~0.16 s).
        let job = Job { work_flops: 500e6, input_bytes: 1_000_000, output_bytes: 1_000_000 };
        let d = decide(h.adapter.remos_mut(), "client", "server", &job).unwrap();
        assert!(d.ship, "{d:?}");
        assert!((d.local_secs - 10.0).abs() < 0.01);
        assert!(d.remote_secs < 2.0, "{d:?}");
        // Prediction matches execution.
        let measured = execute(&h.sim, "client", "server", &job, &d).unwrap();
        assert!((measured - d.remote_secs).abs() < d.remote_secs * 0.1, "{measured} vs {d:?}");
    }

    #[test]
    fn small_compute_huge_data_stays_local() {
        let mut h = asymmetric_harness();
        // 50 Mflops (1 s local), 100 MB input (8+ s transfer).
        let job = Job { work_flops: 50e6, input_bytes: 100_000_000, output_bytes: 1_000 };
        let d = decide(h.adapter.remos_mut(), "client", "server", &job).unwrap();
        assert!(!d.ship, "{d:?}");
        let measured = execute(&h.sim, "client", "server", &job, &d).unwrap();
        assert!((measured - d.local_secs).abs() < 1e-6);
    }

    #[test]
    fn congestion_flips_the_decision() {
        let mut h = asymmetric_harness();
        let job = Job { work_flops: 100e6, input_bytes: 10_000_000, output_bytes: 10_000_000 };
        // Idle: remote = 0.2 (compute) + ~1.6 (transfers) < 2.0 local.
        let d_idle = decide(h.adapter.remos_mut(), "client", "server", &job).unwrap();
        assert!(d_idle.ship, "{d_idle:?}");
        // Saturate the path: the transfer price explodes.
        crate::synthetic::add_greedy_traffic(&h.sim, "client", "server", 12, SimTime::ZERO, None)
            .unwrap();
        h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
        let d_loaded = decide(h.adapter.remos_mut(), "client", "server", &job).unwrap();
        assert!(!d_loaded.ship, "{d_loaded:?}");
        assert!(d_loaded.remote_secs > d_idle.remote_secs * 2.0);
    }
}
