//! Competing-traffic scenarios (§8.2–8.3).
//!
//! Table 2 uses "a synthetic program that generates significant traffic
//! between nodes m-6 and m-8"; Table 3 adds non-interfering and two
//! interfering placements. Each scenario registers background traffic
//! processes on the shared simulator.

use remos_net::traffic::{GreedyTraffic, OnOffTraffic};
use remos_net::{NetError, SimDuration, SimTime};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};

/// How many parallel greedy streams the synthetic traffic program opens.
/// With `n` streams, a competing application flow's max-min share of a
/// shared link drops to `1/(n+1)` — "significant traffic".
pub const DEFAULT_TRAFFIC_STREAMS: usize = 8;

/// A named background-traffic scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficScenario {
    /// No background traffic.
    None,
    /// Traffic confined to the aspen region (m-1 → m-2): does not
    /// interfere with programs on {m-4..m-8} (Table 3 "Non-interfering").
    NonInterfering,
    /// The Table 2 / Fig 4 traffic: m-6 → m-8 over
    /// timberline → whiteface (Table 3 "Interfering Traffic-1").
    Interfering1,
    /// Traffic pinning the whiteface region *and* the
    /// timberline→whiteface backbone from the other side: m-8 → m-5
    /// (Table 3 "Interfering Traffic-2" — loads the initial region but
    /// leaves aspen completely clean, so an adaptive program escapes
    /// fully).
    Interfering2,
}

impl TrafficScenario {
    /// The (src, dst) host pair the scenario loads, if any.
    pub fn route(self) -> Option<(&'static str, &'static str)> {
        match self {
            TrafficScenario::None => None,
            TrafficScenario::NonInterfering => Some(("m-1", "m-2")),
            TrafficScenario::Interfering1 => Some(("m-6", "m-8")),
            TrafficScenario::Interfering2 => Some(("m-8", "m-5")),
        }
    }

    /// All scenarios, in Table 3 column order.
    pub fn all() -> [TrafficScenario; 4] {
        [
            TrafficScenario::None,
            TrafficScenario::NonInterfering,
            TrafficScenario::Interfering1,
            TrafficScenario::Interfering2,
        ]
    }

    /// Table 3 column label.
    pub fn label(self) -> &'static str {
        match self {
            TrafficScenario::None => "No Traffic",
            TrafficScenario::NonInterfering => "Non-interfering Traffic",
            TrafficScenario::Interfering1 => "Interfering Traffic-1",
            TrafficScenario::Interfering2 => "Interfering Traffic-2",
        }
    }
}

/// Install `streams` parallel greedy flows between two named hosts,
/// active from `start` until `stop` (`None` = forever).
pub fn add_greedy_traffic(
    sim: &SharedSim,
    src: &str,
    dst: &str,
    streams: usize,
    start: SimTime,
    stop: Option<SimTime>,
) -> Result<(), NetError> {
    let mut s = sim.lock();
    let topo = s.topology_arc();
    let src = topo.lookup(src)?;
    let dst = topo.lookup(dst)?;
    s.add_process(start, Box::new(GreedyTraffic::new(src, dst, streams, stop)));
    Ok(())
}

/// Install a scenario with the default stream count, active immediately
/// and forever.
pub fn install_scenario(sim: &SharedSim, scenario: TrafficScenario) -> Result<(), NetError> {
    if let Some((src, dst)) = scenario.route() {
        add_greedy_traffic(sim, src, dst, DEFAULT_TRAFFIC_STREAMS, SimTime::ZERO, None)?;
    }
    Ok(())
}

/// Install bursty (exponential on/off) cross-traffic between two hosts —
/// the §4.4 motivation for quartile reporting.
pub fn add_bursty_traffic(
    sim: &SharedSim,
    src: &str,
    dst: &str,
    mean_on: SimDuration,
    mean_off: SimDuration,
    seed: u64,
) -> Result<(), NetError> {
    let mut s = sim.lock();
    let topo = s.topology_arc();
    let src = topo.lookup(src)?;
    let dst = topo.lookup(dst)?;
    s.add_process(
        SimTime::ZERO,
        Box::new(OnOffTraffic::new(src, dst, mean_on, mean_off, None, seed)),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::cmu_testbed;
    use remos_net::flow::FlowParams;
    use remos_net::{mbps, Simulator};
    use remos_snmp::sim::share;

    fn sim() -> SharedSim {
        share(Simulator::new(cmu_testbed()).unwrap())
    }

    #[test]
    fn interfering1_loads_the_fig4_route() {
        let s = sim();
        install_scenario(&s, TrafficScenario::Interfering1).unwrap();
        let mut guard = s.lock();
        guard.run_for(SimDuration::from_secs(1)).unwrap();
        // An app flow m-4 -> m-8 shares timberline->whiteface with 8
        // greedy streams: it gets ~100/9 Mbps.
        let topo = guard.topology_arc();
        let m4 = topo.lookup("m-4").unwrap();
        let m8 = topo.lookup("m-8").unwrap();
        let f = guard.start_flow(FlowParams::greedy(m4, m8)).unwrap();
        let rate = guard.flow_rate(f).unwrap();
        assert!((rate - mbps(100.0 / 9.0)).abs() < mbps(0.5), "{rate}");
    }

    #[test]
    fn noninterfering_leaves_timberline_clean() {
        let s = sim();
        install_scenario(&s, TrafficScenario::NonInterfering).unwrap();
        let mut guard = s.lock();
        guard.run_for(SimDuration::from_secs(1)).unwrap();
        let topo = guard.topology_arc();
        let m4 = topo.lookup("m-4").unwrap();
        let m5 = topo.lookup("m-5").unwrap();
        let f = guard.start_flow(FlowParams::greedy(m4, m5)).unwrap();
        assert!((guard.flow_rate(f).unwrap() - mbps(100.0)).abs() < 1.0);
    }

    #[test]
    fn scenario_none_installs_nothing() {
        let s = sim();
        install_scenario(&s, TrafficScenario::None).unwrap();
        let mut guard = s.lock();
        guard.run_for(SimDuration::from_secs(1)).unwrap();
        assert_eq!(guard.active_flow_count(), 0);
    }

    #[test]
    fn scenario_metadata() {
        assert_eq!(TrafficScenario::all().len(), 4);
        assert_eq!(TrafficScenario::Interfering1.route(), Some(("m-6", "m-8")));
        assert!(TrafficScenario::None.route().is_none());
        assert_eq!(TrafficScenario::Interfering2.label(), "Interfering Traffic-2");
    }

    #[test]
    fn bursty_traffic_runs() {
        let s = sim();
        add_bursty_traffic(
            &s,
            "m-6",
            "m-8",
            SimDuration::from_millis(500),
            SimDuration::from_millis(500),
            7,
        )
        .unwrap();
        let mut guard = s.lock();
        guard.run_for(SimDuration::from_secs(10)).unwrap();
        let topo = guard.topology_arc();
        let m6 = topo.lookup("m-6").unwrap();
        let (link, _) = topo.neighbors(m6)[0];
        let octets = guard.iface_out_octets(m6, link);
        assert!(octets > 0.0);
    }
}
