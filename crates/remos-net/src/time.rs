//! Simulation time.
//!
//! Virtual time is kept as an integer number of nanoseconds so that event
//! ordering is exact and runs are bit-for-bit reproducible. Durations derived
//! from fluid-rate computations are rounded up to the next nanosecond, which
//! guarantees progress (a positive remaining volume never yields a zero
//! duration).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no scheduled event may carry this timestamp.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time: {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }

    /// Saturating difference; zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding *up* to the next
    /// nanosecond so that positive spans never collapse to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).ceil() as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by an integer factor.
    #[inline]
    pub const fn mul_u64(self, k: u64) -> Self {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), NANOS_PER_SEC / 2);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(250).as_nanos(), 250_000);
    }

    #[test]
    fn duration_from_secs_rounds_up() {
        // A tiny positive span must not collapse to zero.
        let d = SimDuration::from_secs_f64(1e-12);
        assert!(d.as_nanos() >= 1);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t.since(SimTime::from_secs(1)).as_secs_f64(), 0.5);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(t),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "earlier is in the future")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
