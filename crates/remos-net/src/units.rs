//! Bandwidth and data-volume units.
//!
//! Rates are carried as `f64` bits per second ([`Bps`]); the fluid model is
//! inherently real-valued. Data volumes are integer bytes.

/// Bandwidth in bits per second.
pub type Bps = f64;

/// Kilobits per second (10^3 bits/s).
#[inline]
pub fn kbps(x: f64) -> Bps {
    x * 1e3
}

/// Megabits per second (10^6 bits/s). The paper's testbed links are
/// `mbps(100.0)` and `mbps(10.0)`.
#[inline]
pub fn mbps(x: f64) -> Bps {
    x * 1e6
}

/// Gigabits per second (10^9 bits/s).
#[inline]
pub fn gbps(x: f64) -> Bps {
    x * 1e9
}

/// Bits in `bytes` bytes.
#[inline]
pub fn bytes_to_bits(bytes: u64) -> f64 {
    bytes as f64 * 8.0
}

/// Seconds needed to move `bytes` bytes at `rate` bits/s.
/// Returns `f64::INFINITY` when the rate is zero.
#[inline]
pub fn transfer_secs(bytes: u64, rate: Bps) -> f64 {
    if rate <= 0.0 {
        f64::INFINITY
    } else {
        bytes_to_bits(bytes) / rate
    }
}

/// Kibibytes (2^10 bytes).
#[inline]
pub const fn kib(x: u64) -> u64 {
    x * 1024
}

/// Mebibytes (2^20 bytes).
#[inline]
pub const fn mib(x: u64) -> u64 {
    x * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(mbps(100.0), 100_000_000.0);
        assert_eq!(kbps(64.0), 64_000.0);
        assert_eq!(gbps(1.0), 1e9);
        assert_eq!(mib(4), 4 * 1024 * 1024);
        assert_eq!(kib(1), 1024);
    }

    #[test]
    fn transfer_time() {
        // 1 MiB over 8 Mbit/s is exactly 2^20 * 8 / 8e6 seconds.
        let secs = transfer_secs(mib(1), mbps(8.0));
        assert!((secs - (1024.0 * 1024.0 * 8.0 / 8e6)).abs() < 1e-12);
        assert!(transfer_secs(1, 0.0).is_infinite());
    }
}
