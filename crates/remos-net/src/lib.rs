//! # remos-net — fluid flow-level network simulator
//!
//! This crate is the substrate that replaces the physical IP testbed used in
//! the Remos paper (Lowekamp et al., HPDC 1998). It models a network of
//! compute nodes (hosts) and network nodes (routers/switches) connected by
//! full-duplex point-to-point links, and simulates the bandwidth received by
//! concurrent *flows* under **max-min fair sharing** — precisely the sharing
//! model the paper assumes for bottleneck links (§4.2, refs [14, 16]).
//!
//! The simulator is *fluid*: instead of individual packets, each flow has an
//! instantaneous rate, and the vector of rates is the weighted max-min fair
//! allocation over the capacities of all resources (directed link interfaces
//! and, optionally, switch backplanes). Rates are recomputed at every flow
//! arrival and departure; between events all rates are constant, so byte
//! counters advance analytically. This makes simulating hours of testbed
//! time cheap while reproducing exactly the contention behaviour the paper's
//! experiments exercise: a busy link slows every synchronous communication
//! phase that crosses it.
//!
//! Main entry points:
//! * [`topology::Topology`] / [`topology::TopologyBuilder`] — build networks.
//! * [`engine::Simulator`] — start/stop flows, advance virtual time, read
//!   per-interface octet counters (the data source for the SNMP substrate).
//! * [`maxmin`] — the stand-alone weighted max-min fair solver.
//! * [`traffic`] — background traffic generators (CBR, on-off, bulk pools).
//! * [`audit`] / [`digest`] — runtime max-min invariant checking and
//!   event-log digests for determinism tests (`docs/DETERMINISM.md`).

// This crate is the workspace's hottest path (see docs/PERFORMANCE.md);
// performance-smelling patterns are build errors, not suggestions.
#![deny(clippy::perf)]

pub mod audit;
pub mod counters;
pub mod digest;
pub mod engine;
pub mod error;
pub mod fabric;
pub mod flow;
pub mod maxmin;
pub mod pool;
pub mod routing;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod units;
pub mod whatif;

pub use audit::{AuditViolation, MaxMinAudit};
pub use digest::EventDigest;
pub use engine::{FlowHandle, Simulator, SolverMode};
pub use error::{NetError, Result};
pub use fabric::{FabricChurn, FatTree};
pub use time::{SimDuration, SimTime};
pub use topology::{DirLink, Direction, LinkId, NodeId, NodeKind, Topology, TopologyBuilder};
pub use units::{gbps, kbps, mbps, Bps};
pub use whatif::{FlowEstimate, WhatIfEngine, WhatIfFlow, WhatIfReport};
