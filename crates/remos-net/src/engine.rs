//! The fluid flow-level discrete-event simulator.
//!
//! Between events every active flow has a constant rate — the weighted
//! max-min fair allocation over all directed link interfaces and capped
//! switch backplanes. Events are: a bounded flow finishing its volume, a
//! scheduled traffic process firing, or the caller's time horizon. Octet
//! counters (the SNMP agents' data source) advance analytically between
//! events, so simulating 900 testbed-seconds of Airshed costs only as many
//! rate recomputations as there are flow arrivals and departures.

use crate::audit::{AuditViolation, MaxMinAudit};
use crate::digest::EventDigest;
use crate::error::{NetError, Result};
use crate::flow::{FlowParams, FlowRecord, FlowTag};
use crate::maxmin::{self, FlowSpec};
use crate::routing::{Path, Routing};
use crate::time::{SimDuration, SimTime};
use crate::topology::{DirLink, NodeId, Topology};
use crate::units::Bps;
use std::cmp::Reverse;
// Result-affecting maps are BTreeMaps: the rate solver, the completion
// scan, and the event log all iterate them, so ordering must be a
// property of the data, not of a hash seed (audited by remos-audit).
use remos_obs::{Counter, Histogram, Obs};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// Cached observability handles for the engine's hot paths. Resolving a
/// metric by name takes a registry lock; caching the handles here means a
/// steady-state recomputation pays exactly one atomic op per update. The
/// struct is rebuilt whenever a new [`Obs`] is installed.
struct EngineMetrics {
    full_recomputes: Counter,
    scoped_recomputes: Counter,
    routing_rebuilds: Counter,
    /// Flows touched per solve (full: all flows; scoped: component closure).
    solve_scope_flows: Histogram,
    /// Link transitions coalesced into one routing rebuild.
    link_batch_size: Histogram,
    /// Wall-clock nanoseconds per solve — only populated when a top-level
    /// caller injects a clock (see `remos_obs::clock`); empty by default.
    solve_latency_nanos: Histogram,
}

impl EngineMetrics {
    fn new(obs: &Obs) -> EngineMetrics {
        EngineMetrics {
            full_recomputes: obs.counter("engine_full_recomputes_total"),
            scoped_recomputes: obs.counter("engine_scoped_recomputes_total"),
            routing_rebuilds: obs.counter("engine_routing_rebuilds_total"),
            solve_scope_flows: obs.histogram("engine_solve_scope_flows"),
            link_batch_size: obs.histogram("engine_link_batch_size"),
            solve_latency_nanos: obs.histogram("engine_solve_latency_nanos"),
        }
    }
}

/// Handle to an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowHandle(pub(crate) u64);

impl FlowHandle {
    /// The flow's simulator-assigned id (ascending in start order; the
    /// id recorded in [`crate::flow::FlowRecord`] and the digests).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Identifies a registered traffic process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcessId(usize);

/// A scheduled traffic process (on-off sources, arrival generators, ...).
///
/// The engine calls [`TrafficProcess::fire`] at each scheduled time; the
/// process manipulates flows through the [`ProcessCtx`] and returns the next
/// time it wants to fire (or `None` to finish).
pub trait TrafficProcess: Send {
    /// React to the scheduled instant `now`, returning the next fire time.
    fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime>;
}

/// The restricted engine API handed to firing traffic processes.
///
/// Actions are queued and applied by the engine after the process returns;
/// flow handles are assigned eagerly so a process can remember the flows it
/// started and stop them on a later fire.
pub struct ProcessCtx<'a> {
    actions: &'a mut Vec<ProcessAction>,
    next_id: u64,
}

enum ProcessAction {
    Start(FlowParams, u64),
    Stop(FlowHandle),
    NotifyWhenComplete(Vec<FlowHandle>),
}

impl ProcessCtx<'_> {
    /// Queue a flow start; returns the handle the flow will receive.
    pub fn start_flow(&mut self, params: FlowParams) -> FlowHandle {
        let id = self.next_id;
        self.next_id += 1;
        self.actions.push(ProcessAction::Start(params, id));
        FlowHandle(id)
    }

    /// Queue a flow stop.
    pub fn stop_flow(&mut self, h: FlowHandle) {
        self.actions.push(ProcessAction::Stop(h));
    }

    /// Ask the engine to fire this process again once every listed flow
    /// has finished (completed, been stopped, or been killed by a link
    /// failure). Lets processes implement synchronous communication
    /// phases. The process is kept alive even if `fire` returns `None`.
    pub fn notify_when_complete(&mut self, flows: Vec<FlowHandle>) {
        self.actions.push(ProcessAction::NotifyWhenComplete(flows));
    }
}

struct ActiveFlow {
    params: FlowParams,
    /// Resource indices (dir-links, then backplanes) this flow loads.
    resources: Vec<usize>,
    path: Path,
    rate: Bps,
    remaining: f64, // bytes; f64::INFINITY for persistent flows
    bytes_sent: f64,
    started: SimTime,
    /// Predicted completion given the current rate.
    eta: SimTime,
}

/// Which rate-recomputation strategy the engine uses.
///
/// Both modes produce **bit-identical** allocations, event digests, and
/// completion orders — the determinism tests assert it — so the choice is
/// purely a performance knob. See `docs/PERFORMANCE.md` for the invariants
/// that make the equivalence hold.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverMode {
    /// Rebuild the whole flow set and re-solve every component on each
    /// recomputation (the historical behaviour; kept as the oracle the
    /// audit's shadow solve compares against).
    Full,
    /// Re-solve only the connected components of flows transitively
    /// sharing a resource with whatever changed since the last
    /// recomputation; every other flow keeps its frozen rate. The default.
    #[default]
    Incremental,
}

/// What changed since the last rate recomputation.
enum DirtyRates {
    /// Nothing: the cached rates are valid.
    Clean,
    /// Only flows transitively sharing these resources may change.
    Touched(BTreeSet<usize>),
    /// Everything must be recomputed (mode switches).
    All,
}

/// Record `resources` as touched since the last recomputation.
fn touch(dirty: &mut DirtyRates, resources: &[usize]) {
    match dirty {
        DirtyRates::All => {}
        DirtyRates::Touched(set) => set.extend(resources.iter().copied()),
        DirtyRates::Clean => {
            *dirty = DirtyRates::Touched(resources.iter().copied().collect());
        }
    }
}

/// Insert `id` into the membership list of each resource (sorted, deduped;
/// a flow crossing a resource twice is listed once).
fn members_insert(members: &mut [Vec<u64>], id: u64, resources: &[usize]) {
    for &r in resources {
        let v = &mut members[r];
        if let Err(pos) = v.binary_search(&id) {
            v.insert(pos, id);
        }
    }
}

/// Remove `id` from the membership list of each resource.
fn members_remove(members: &mut [Vec<u64>], id: u64, resources: &[usize]) {
    for &r in resources {
        let v = &mut members[r];
        if let Ok(pos) = v.binary_search(&id) {
            v.remove(pos);
        }
    }
}

/// Install a freshly solved rate on a flow. The ETA is re-derived **only
/// when the rate actually changed** (bitwise): an unchanged rate means the
/// flow's linear trajectory is unchanged, so recomputing the ETA from
/// `now + remaining/rate` would only inject float round-off. Both solver
/// modes share this rule — it is what keeps completion timestamps (and so
/// event digests) bit-identical between them, since the incremental mode
/// never even visits flows outside the affected components.
fn apply_rate(f: &mut ActiveFlow, rate: Bps, now: SimTime) {
    if rate.to_bits() == f.rate.to_bits() {
        return;
    }
    f.rate = rate;
    f.eta = if f.remaining.is_finite() && f.rate > 0.0 {
        now + SimDuration::from_secs_f64(f.remaining * 8.0 / f.rate)
    } else {
        SimTime::MAX
    };
}

/// Per-interface counters; indexed by [`DirLink::index`].
#[derive(Clone, Debug, Default)]
pub struct IfaceCounters {
    /// Exact delivered octets per directed interface.
    pub octets: Vec<f64>,
}

/// A link state transition that occurred in the simulation — the source
/// of SNMP linkDown/linkUp traps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    /// When the transition happened.
    pub t: SimTime,
    /// The affected link.
    pub link: crate::topology::LinkId,
    /// New state.
    pub up: bool,
}

/// The simulator.
///
/// ```
/// use remos_net::{Simulator, TopologyBuilder, mbps, SimDuration, SimTime};
/// use remos_net::flow::FlowParams;
///
/// let mut b = TopologyBuilder::new();
/// let h1 = b.compute("h1");
/// let h2 = b.compute("h2");
/// b.link(h1, h2, mbps(8.0), SimDuration::from_micros(10)).unwrap();
/// let mut sim = Simulator::new(b.build().unwrap()).unwrap();
///
/// // 1 MB at 8 Mbit/s takes exactly 1 second.
/// let f = sim.start_flow(FlowParams::bulk(h1, h2, 1_000_000)).unwrap();
/// let records = sim.run_until_flows_complete(&[f]).unwrap();
/// assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-6);
/// assert!(records[0].completed);
/// ```
pub struct Simulator {
    topo: Arc<Topology>,
    routing: Arc<Routing>,
    now: SimTime,
    flows: BTreeMap<u64, ActiveFlow>,
    next_id: u64,
    /// capacities of all resources: `dir_link_count()` interfaces followed
    /// by one entry per capped network node.
    capacities: Vec<f64>,
    /// node index -> backplane resource index (only capped network nodes).
    backplane: BTreeMap<NodeId, usize>,
    counters: IfaceCounters,
    /// What changed since the last rate recomputation.
    dirty: DirtyRates,
    /// Recomputation strategy; see [`SolverMode`].
    mode: SolverMode,
    /// Residual capacity per resource, maintained across recomputations
    /// (scoped solves only overwrite the affected components' entries).
    residual: Vec<f64>,
    /// Per-resource sorted list of the active flow ids crossing it — the
    /// adjacency the scoped solver walks to find affected components.
    members: Vec<Vec<u64>>,
    /// Persistent solver scratch (CSR buffers, interning marks) so
    /// steady-state recomputations allocate nothing.
    solver: maxmin::Solver,
    /// Scratch marks for component discovery, cleared after each use.
    res_seen: Vec<bool>,
    /// Statistics: full / scoped solver invocations and routing rebuilds.
    full_recomputes: u64,
    scoped_recomputes: u64,
    routing_rebuilds: u64,
    finished: Vec<FlowRecord>,
    processes: Vec<Option<Box<dyn TrafficProcess>>>,
    schedule: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Per-link operational state.
    link_up: Vec<bool>,
    /// Pending scheduled link transitions.
    link_schedule: BinaryHeap<Reverse<(SimTime, u32, bool)>>,
    /// Log of applied transitions (drained by trap sources).
    link_events: Vec<LinkEvent>,
    /// Completion watches: when all flows of a set are finished, the
    /// process fires.
    watches: Vec<(std::collections::BTreeSet<u64>, usize)>,
    /// Order-sensitive digest of every flow/link event so far.
    digest: EventDigest,
    /// When set, every rate recomputation is checked against the max-min
    /// invariants and violations are collected (always asserted in debug
    /// builds regardless).
    audit: Option<MaxMinAudit>,
    /// Violations collected while auditing (see [`Simulator::enable_audit`]).
    audit_violations: Vec<AuditViolation>,
    /// Observability handle (metrics + simulated-time traces). Every
    /// simulator owns one; [`Simulator::set_obs`] swaps in a shared handle
    /// so the whole stack reports into a single snapshot.
    obs: Obs,
    /// Cached metric handles derived from `obs`.
    obs_metrics: EngineMetrics,
}

impl Simulator {
    /// Build a simulator over a topology. Routing is computed eagerly.
    pub fn new(topo: Topology) -> Result<Simulator> {
        let routing = Routing::new(&topo);
        // Resource vector layout: the stable dir-link prefix (indexed by
        // `DirLink::index`), then one entry per capped backplane in node-id
        // order. Indices never move, so dirty-tracking can key on them.
        let mut capacities = topo.dir_link_capacities();
        let mut backplane = BTreeMap::new();
        for (n, bw) in topo.capped_network_nodes() {
            backplane.insert(n, capacities.len());
            capacities.push(bw);
        }
        let counters = IfaceCounters { octets: vec![0.0; topo.dir_link_count()] };
        let link_up = vec![true; topo.link_count()];
        let residual = capacities.clone();
        let members = vec![Vec::new(); capacities.len()];
        let res_seen = vec![false; capacities.len()];
        let obs = Obs::new();
        let obs_metrics = EngineMetrics::new(&obs);
        Ok(Simulator {
            topo: Arc::new(topo),
            routing: Arc::new(routing),
            now: SimTime::ZERO,
            flows: BTreeMap::new(),
            next_id: 0,
            capacities,
            backplane,
            counters,
            dirty: DirtyRates::Clean,
            mode: SolverMode::default(),
            residual,
            members,
            solver: maxmin::Solver::new(),
            res_seen,
            full_recomputes: 0,
            scoped_recomputes: 0,
            routing_rebuilds: 0,
            finished: Vec::new(),
            processes: Vec::new(),
            schedule: BinaryHeap::new(),
            link_up,
            link_schedule: BinaryHeap::new(),
            link_events: Vec::new(),
            watches: Vec::new(),
            digest: EventDigest::new(),
            audit: None,
            audit_violations: Vec::new(),
            obs,
            obs_metrics,
        })
    }

    /// Install a shared observability handle. Metric handles are re-cached
    /// against the new registry; counters restart from the registry's
    /// current values (the engine's own [`Simulator::full_recomputes`]-style
    /// counters are unaffected and keep their lifetime totals).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs_metrics = EngineMetrics::new(&obs);
        self.obs = obs;
    }

    /// The observability handle this simulator reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Turn on the runtime max-min audit: after every rate recomputation
    /// the allocation is checked against the invariants in
    /// [`MaxMinAudit`]; violations accumulate in
    /// [`Simulator::audit_violations`]. (Debug builds assert the same
    /// invariants unconditionally.)
    pub fn enable_audit(&mut self) {
        self.audit = Some(MaxMinAudit::default());
    }

    /// Violations collected since the audit was enabled (empty when the
    /// audit is off or every recomputation was valid).
    pub fn audit_violations(&self) -> &[AuditViolation] {
        &self.audit_violations
    }

    /// Select the rate-recomputation strategy. Switching marks the rates
    /// fully dirty so the next recomputation resynchronises under the new
    /// mode (a no-op in practice: both modes are bit-identical).
    pub fn set_solver_mode(&mut self, mode: SolverMode) {
        if self.mode != mode {
            self.mode = mode;
            if !self.flows.is_empty() {
                self.dirty = DirtyRates::All;
            }
        }
    }

    /// The active rate-recomputation strategy.
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Number of full (all-component) solver runs so far.
    pub fn full_recomputes(&self) -> u64 {
        self.full_recomputes
    }

    /// Number of scoped (affected-component-only) solver runs so far.
    pub fn scoped_recomputes(&self) -> u64 {
        self.scoped_recomputes
    }

    /// Number of times routing was rebuilt after link transitions. All
    /// transitions due at one instant are coalesced into a single rebuild.
    pub fn routing_rebuilds(&self) -> u64 {
        self.routing_rebuilds
    }

    /// Mode-agnostic digest of the current allocation: every active flow's
    /// id and bit-exact rate, in id order. Two simulators in different
    /// [`SolverMode`]s driven through the same scenario must agree on this
    /// at every instant — the verification hook the equivalence tests use.
    pub fn rates_digest(&mut self) -> u64 {
        self.recompute_rates_if_dirty();
        let mut d = EventDigest::new();
        for (id, f) in &self.flows {
            d.record_rate(*id, f.rate);
        }
        d.value()
    }

    /// Order-sensitive digest over every flow start, flow finish, and link
    /// transition so far, combined with the current clock and the exact
    /// per-interface octet counters. Two runs of the same scenario with
    /// the same seeds must produce equal digests; see
    /// `docs/DETERMINISM.md`.
    pub fn event_digest(&self) -> u64 {
        let mut d = self.digest;
        d.write_u64(self.now.as_nanos());
        for &o in &self.counters.octets {
            d.write_f64(o);
        }
        d.value()
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Shared handle to the topology.
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topo)
    }

    /// The routing table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of currently active flows.
    pub fn active_flow_count(&self) -> usize {
        self.flows.len()
    }

    fn resources_for_path(&self, path: &Path) -> Vec<usize> {
        let mut res: Vec<usize> = path.dirlink_indices().collect();
        // Interior nodes with capped backplanes are additional resources.
        for n in path.interior_nodes() {
            if let Some(&idx) = self.backplane.get(n) {
                res.push(idx);
            }
        }
        res
    }

    /// Start a flow. Endpoints must be distinct compute nodes with a route.
    pub fn start_flow(&mut self, params: FlowParams) -> Result<FlowHandle> {
        if params.weight <= 0.0 || !params.weight.is_finite() {
            return Err(NetError::Invalid(format!("flow weight {}", params.weight)));
        }
        if let Some(cap) = params.rate_cap {
            if cap <= 0.0 || !cap.is_finite() {
                return Err(NetError::Invalid(format!("rate cap {cap}")));
            }
        }
        if params.src == params.dst {
            return Err(NetError::Invalid("flow src == dst".into()));
        }
        let path = self.routing.path(&self.topo, params.src, params.dst)?;
        let resources = self.resources_for_path(&path);
        let (src, dst) = (params.src.0, params.dst.0);
        let id = self.next_id;
        self.next_id += 1;
        let remaining = params.volume.map_or(f64::INFINITY, |v| v as f64);
        members_insert(&mut self.members, id, &resources);
        touch(&mut self.dirty, &resources);
        self.flows.insert(
            id,
            ActiveFlow {
                params,
                resources,
                path,
                rate: 0.0,
                remaining,
                bytes_sent: 0.0,
                started: self.now,
                eta: SimTime::MAX,
            },
        );
        self.digest.record_start(id, src, dst, self.now.as_nanos());
        Ok(FlowHandle(id))
    }

    /// Stop a flow immediately, returning its record.
    pub fn stop_flow(&mut self, h: FlowHandle) -> Result<FlowRecord> {
        let f = self.flows.remove(&h.0).ok_or(NetError::UnknownFlow(h.0))?;
        members_remove(&mut self.members, h.0, &f.resources);
        touch(&mut self.dirty, &f.resources);
        let rec = FlowRecord {
            id: h.0,
            src: f.params.src,
            dst: f.params.dst,
            tag: f.params.tag,
            started: f.started,
            finished: self.now,
            bytes: f.bytes_sent,
            completed: false,
        };
        self.digest.record_finish(&rec);
        self.finished.push(rec.clone());
        self.settle_watches(&[h.0]);
        Ok(rec)
    }

    /// Register a traffic process, firing first at `start`.
    pub fn add_process(&mut self, start: SimTime, p: Box<dyn TrafficProcess>) -> ProcessId {
        let id = self.processes.len();
        self.processes.push(Some(p));
        self.schedule.push(Reverse((start.max(self.now), id)));
        ProcessId(id)
    }

    /// Remove a traffic process (it will not fire again). Flows it started
    /// keep running; stop them separately if needed.
    pub fn remove_process(&mut self, id: ProcessId) {
        if let Some(slot) = self.processes.get_mut(id.0) {
            *slot = None;
        }
    }

    /// Current rate of an active flow, bits/s.
    pub fn flow_rate(&mut self, h: FlowHandle) -> Result<Bps> {
        self.recompute_rates_if_dirty();
        self.flows.get(&h.0).map(|f| f.rate).ok_or(NetError::UnknownFlow(h.0))
    }

    /// Bytes delivered so far by an active flow.
    pub fn flow_bytes_sent(&self, h: FlowHandle) -> Result<f64> {
        self.flows.get(&h.0).map(|f| f.bytes_sent).ok_or(NetError::UnknownFlow(h.0))
    }

    /// Whether the handle refers to a still-active flow.
    pub fn flow_is_active(&self, h: FlowHandle) -> bool {
        self.flows.contains_key(&h.0)
    }

    /// Drain the records of flows finished (completed or stopped) so far.
    pub fn take_finished(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.finished)
    }

    /// Operational state of a link.
    pub fn link_is_up(&self, link: crate::topology::LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// Drain the log of link transitions (SNMP trap source).
    pub fn take_link_events(&mut self) -> Vec<LinkEvent> {
        std::mem::take(&mut self.link_events)
    }

    /// Change a link's state *now*: routing is recomputed, every active
    /// flow is re-pathed onto its new best route (flows left with no route
    /// terminate with `completed = false`), and the transition is logged.
    pub fn set_link_state(&mut self, link: crate::topology::LinkId, up: bool) -> Result<()> {
        self.apply_link_transitions(&[(link, up)])
    }

    /// Apply a batch of link transitions as one event: all flips are
    /// recorded first, then routing is rebuilt **once** and every flow is
    /// re-pathed once against the final state. Coalescing simultaneous
    /// transitions this way means a link that goes down and comes back up
    /// at the same instant never strands the flows crossing it.
    fn apply_link_transitions(&mut self, batch: &[(crate::topology::LinkId, bool)]) -> Result<()> {
        let mut flips = 0u64;
        for &(link, up) in batch {
            self.topo.try_link(link)?;
            if self.link_up[link.index()] == up {
                continue;
            }
            self.link_up[link.index()] = up;
            let ev = LinkEvent { t: self.now, link, up };
            self.digest.record_link(&ev);
            self.link_events.push(ev);
            flips += 1;
        }
        if flips == 0 {
            return Ok(());
        }
        self.routing = Arc::new(Routing::with_link_state(&self.topo, Some(&self.link_up)));
        self.routing_rebuilds += 1;
        self.obs_metrics.routing_rebuilds.inc();
        self.obs_metrics.link_batch_size.observe(flips);
        self.obs.event("engine.routing.rebuild", self.now.as_nanos(), &[("links", flips)]);
        // Re-path every flow; BTreeMap iteration is already id order, so
        // re-pathing is deterministic without an explicit sort. Flows whose
        // best path is unchanged are skipped entirely — they stay outside
        // the dirty set, so a faraway flap costs them nothing.
        let ids: Vec<u64> = self.flows.keys().copied().collect();
        for id in ids {
            let Some(f) = self.flows.get(&id) else { continue };
            let (src, dst) = (f.params.src, f.params.dst);
            match self.routing.path(&self.topo, src, dst) {
                Ok(path) => {
                    if self.flows.get(&id).is_some_and(|f| f.path.hops == path.hops) {
                        continue;
                    }
                    let resources = self.resources_for_path(&path);
                    let Some(f) = self.flows.get_mut(&id) else { continue };
                    f.path = path;
                    let old = std::mem::replace(&mut f.resources, resources);
                    members_remove(&mut self.members, id, &old);
                    touch(&mut self.dirty, &old);
                    if let Some(f) = self.flows.get(&id) {
                        members_insert(&mut self.members, id, &f.resources);
                        touch(&mut self.dirty, &f.resources);
                    }
                }
                Err(_) => {
                    // Disconnected: the connection breaks.
                    let Some(f) = self.flows.remove(&id) else { continue };
                    members_remove(&mut self.members, id, &f.resources);
                    touch(&mut self.dirty, &f.resources);
                    let rec = FlowRecord {
                        id,
                        src: f.params.src,
                        dst: f.params.dst,
                        tag: f.params.tag,
                        started: f.started,
                        finished: self.now,
                        bytes: f.bytes_sent,
                        completed: false,
                    };
                    self.digest.record_finish(&rec);
                    self.finished.push(rec);
                    self.settle_watches(&[id]);
                }
            }
        }
        Ok(())
    }

    /// Schedule a link transition at a future instant.
    pub fn schedule_link_state(
        &mut self,
        t: SimTime,
        link: crate::topology::LinkId,
        up: bool,
    ) -> Result<()> {
        self.topo.try_link(link)?;
        self.link_schedule.push(Reverse((t.max(self.now), link.0, up)));
        Ok(())
    }

    fn next_link_change(&self) -> SimTime {
        self.link_schedule.peek().map_or(SimTime::MAX, |Reverse((t, _, _))| *t)
    }

    fn apply_due_link_changes(&mut self) -> Result<()> {
        // Coalesce every transition due at or before `now` into one batch:
        // one routing rebuild and one re-path pass regardless of how many
        // links flip together. Pop order — (time, link, down-before-up) —
        // fixes the digest order of the recorded events.
        let mut batch: Vec<(crate::topology::LinkId, bool)> = Vec::new();
        while let Some(&Reverse((t, link, up))) = self.link_schedule.peek() {
            if t > self.now {
                break;
            }
            self.link_schedule.pop();
            batch.push((crate::topology::LinkId(link), up));
        }
        if batch.is_empty() {
            return Ok(());
        }
        // Validated at insertion; re-propagate rather than panic in case
        // the invariant is ever broken.
        self.apply_link_transitions(&batch)
    }

    /// Exact octets delivered over a directed interface since t=0.
    pub fn dirlink_octets(&self, d: DirLink) -> f64 {
        self.counters.octets[d.index()]
    }

    /// Octets sent *by* `node` onto `link` (the `ifOutOctets` of that
    /// node's interface on the link).
    pub fn iface_out_octets(&self, node: NodeId, link: crate::topology::LinkId) -> f64 {
        let dir = self.topo.link(link).direction_from(node);
        self.dirlink_octets(DirLink { link, dir })
    }

    /// Instantaneous aggregate rate over a directed interface, bits/s.
    pub fn dirlink_rate(&mut self, d: DirLink) -> Bps {
        self.recompute_rates_if_dirty();
        self.flows
            .values()
            .filter(|f| f.path.hops.contains(&d))
            .map(|f| f.rate)
            .sum()
    }

    /// Instantaneous aggregate rate of flows with a given tag over a
    /// directed interface (oracle view used by tests and ablations).
    pub fn dirlink_rate_by_tag(&mut self, d: DirLink, tag: FlowTag) -> Bps {
        self.recompute_rates_if_dirty();
        self.flows
            .values()
            .filter(|f| f.params.tag == tag && f.path.hops.contains(&d))
            .map(|f| f.rate)
            .sum()
    }

    fn recompute_rates_if_dirty(&mut self) {
        let dirty = std::mem::replace(&mut self.dirty, DirtyRates::Clean);
        match (self.mode, dirty) {
            (_, DirtyRates::Clean) => {}
            (SolverMode::Full, _) | (_, DirtyRates::All) => self.recompute_full(),
            (SolverMode::Incremental, DirtyRates::Touched(touched)) => {
                self.recompute_scoped(&touched);
            }
        }
    }

    /// Rebuild the whole problem and solve every component from scratch.
    fn recompute_full(&mut self) {
        self.full_recomputes += 1;
        self.obs_metrics.full_recomputes.inc();
        self.obs_metrics.solve_scope_flows.observe(self.flows.len() as u64);
        let span = self.obs.span("engine.solve.full", self.now.as_nanos());
        let t0 = self.obs.clock_nanos();
        // BTreeMap iteration is id order, so the solver sees flows in a
        // deterministic sequence without an explicit sort.
        let specs: Vec<FlowSpec> = self
            .flows
            .values()
            .map(|f| FlowSpec {
                weight: f.params.weight,
                cap: f.params.rate_cap,
                resources: f.resources.clone(),
            })
            .collect();
        let alloc = maxmin::solve(&self.capacities, &specs);
        self.residual = alloc.residual;
        let now = self.now;
        for (f, &rate) in self.flows.values_mut().zip(alloc.rates.iter()) {
            apply_rate(f, rate, now);
        }
        if let (Some(t0), Some(t1)) = (t0, self.obs.clock_nanos()) {
            self.obs_metrics.solve_latency_nanos.observe(t1.saturating_sub(t0));
        }
        span.end(self.now.as_nanos(), &[("flows", self.flows.len() as u64)]);
        self.check_allocation();
    }

    /// Re-solve only the connected components of flows transitively
    /// sharing a resource with the `touched` set; all other flows keep
    /// their frozen rates and ETAs, and untouched resources keep their
    /// residuals. Bit-identical to [`recompute_full`](Self::recompute_full)
    /// because the solver fills each component in isolation anyway, always
    /// iterating its flows in ascending id order.
    fn recompute_scoped(&mut self, touched: &BTreeSet<usize>) {
        self.scoped_recomputes += 1;
        self.obs_metrics.scoped_recomputes.inc();
        let span = self.obs.span("engine.solve.scoped", self.now.as_nanos());
        let t0 = self.obs.clock_nanos();
        // Closure: every resource and flow reachable from the touched set
        // through the membership lists.
        let mut comp_res: Vec<usize> = Vec::new();
        let mut comp_flows: BTreeSet<u64> = BTreeSet::new();
        for &r in touched {
            if !self.res_seen[r] {
                self.res_seen[r] = true;
                comp_res.push(r);
            }
        }
        let mut head = 0;
        while head < comp_res.len() {
            let r = comp_res[head];
            head += 1;
            for &fid in &self.members[r] {
                if comp_flows.insert(fid) {
                    if let Some(f) = self.flows.get(&fid) {
                        for &r2 in &f.resources {
                            if !self.res_seen[r2] {
                                self.res_seen[r2] = true;
                                comp_res.push(r2);
                            }
                        }
                    }
                }
            }
        }
        for &r in &comp_res {
            self.res_seen[r] = false;
            if self.members[r].is_empty() {
                // Vacated resource (its last flow departed): the residual
                // reverts to full capacity, clamped exactly as the full
                // solver clamps its output.
                self.residual[r] = self.capacities[r];
                if self.residual[r] < 0.0 {
                    self.residual[r] = 0.0;
                }
            }
        }
        let scope_flows = comp_flows.len();
        self.obs_metrics.solve_scope_flows.observe(scope_flows as u64);
        // The closure may span several *disjoint* components (e.g. a
        // departed flow used to bridge them). Fill each separately, lowest
        // flow id first, so the arithmetic matches the full solver's
        // canonical per-component fills.
        let now = self.now;
        let mut remaining = comp_flows;
        let mut sub: Vec<u64> = Vec::new();
        let mut fstack: Vec<u64> = Vec::new();
        while let Some(first) = remaining.pop_first() {
            sub.clear();
            fstack.clear();
            sub.push(first);
            fstack.push(first);
            while let Some(fid) = fstack.pop() {
                if let Some(f) = self.flows.get(&fid) {
                    for &r in &f.resources {
                        for &other in &self.members[r] {
                            if remaining.remove(&other) {
                                sub.push(other);
                                fstack.push(other);
                            }
                        }
                    }
                }
            }
            sub.sort_unstable();
            self.solver.begin_component(self.capacities.len());
            let mut pushed = 0usize;
            for &fid in &sub {
                let Some(f) = self.flows.get(&fid) else { continue };
                self.solver
                    .push_flow(f.params.weight, f.params.rate_cap, &f.resources, &self.capacities);
                pushed += 1;
            }
            debug_assert_eq!(pushed, sub.len(), "flow membership out of sync");
            self.solver.run_fill();
            for (k, &fid) in sub.iter().enumerate() {
                let rate = self.solver.component_rates()[k];
                if let Some(f) = self.flows.get_mut(&fid) {
                    apply_rate(f, rate, now);
                }
            }
            for (r, resid) in self.solver.component_residuals() {
                self.residual[r] = resid;
            }
        }
        if let (Some(t0), Some(t1)) = (t0, self.obs.clock_nanos()) {
            self.obs_metrics.solve_latency_nanos.observe(t1.saturating_sub(t0));
        }
        span.end(self.now.as_nanos(), &[("flows", scope_flows as u64)]);
        self.check_allocation();
    }

    /// Debug/audit hook run after every recomputation. In debug builds the
    /// current allocation (rates + maintained residuals) is asserted
    /// against the max-min invariants; with the audit enabled, violations
    /// are collected instead, and in incremental mode a shadow full solve
    /// cross-checks every rate bit-for-bit (divergence is reported as
    /// [`AuditViolation::SolverDivergence`]).
    fn check_allocation(&mut self) {
        if self.audit.is_none() && !cfg!(debug_assertions) {
            return;
        }
        let specs: Vec<FlowSpec> = self
            .flows
            .values()
            .map(|f| FlowSpec {
                weight: f.params.weight,
                cap: f.params.rate_cap,
                resources: f.resources.clone(),
            })
            .collect();
        let alloc = maxmin::Allocation {
            rates: self.flows.values().map(|f| f.rate).collect(),
            residual: self.residual.clone(),
        };
        debug_assert!(
            maxmin::validate(&self.capacities, &specs, &alloc).is_none(),
            "engine produced invalid allocation: {:?}",
            maxmin::validate(&self.capacities, &specs, &alloc)
        );
        if let Some(audit) = self.audit {
            self.audit_violations
                .extend(audit.check(&self.capacities, &specs, &alloc));
            if self.mode == SolverMode::Incremental {
                let full = maxmin::solve(&self.capacities, &specs);
                for ((&id, f), &want) in self.flows.iter().zip(full.rates.iter()) {
                    if f.rate.to_bits() != want.to_bits() {
                        self.audit_violations.push(AuditViolation::SolverDivergence {
                            flow: id,
                            incremental: f.rate,
                            full: want,
                        });
                    }
                }
            }
        }
    }

    /// Advance counters and flow progress by `dt` at current rates.
    fn advance(&mut self, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let secs = dt.as_secs_f64();
        for f in self.flows.values_mut() {
            if f.rate <= 0.0 {
                continue;
            }
            let bytes = f.rate * secs / 8.0;
            f.bytes_sent += bytes;
            if f.remaining.is_finite() {
                f.remaining = (f.remaining - bytes).max(0.0);
            }
            for h in &f.path.hops {
                self.counters.octets[h.index()] += bytes;
            }
        }
        // DES monotonic-clock audit: `now` may only stand still or move
        // forward. Impossible to violate today (unsigned add), but the
        // tripwire survives refactors that change how time is stepped.
        let before = self.now;
        self.now += dt;
        debug_assert!(self.now >= before, "simulation clock moved backwards");
        if let Some(audit) = self.audit {
            if let Some(v) = audit.check_clock(before, self.now) {
                self.audit_violations.push(v);
            }
        }
    }

    fn next_completion(&self) -> SimTime {
        self.flows.values().map(|f| f.eta).min().unwrap_or(SimTime::MAX)
    }

    fn next_process_fire(&self) -> SimTime {
        self.schedule.peek().map_or(SimTime::MAX, |Reverse((t, _))| *t)
    }

    fn complete_due_flows(&mut self) {
        // BTreeMap iteration yields due flows in id order, so records of
        // simultaneous completions land in the `finished` log (and the
        // event digest) in a deterministic order. With the old HashMap the
        // order depended on the hash seed and differed between runs.
        let due: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.eta <= self.now || f.remaining <= 1e-6)
            .map(|(&id, _)| id)
            .collect();
        for &id in &due {
            let Some(f) = self.flows.remove(&id) else { continue };
            members_remove(&mut self.members, id, &f.resources);
            touch(&mut self.dirty, &f.resources);
            let rec = FlowRecord {
                id,
                src: f.params.src,
                dst: f.params.dst,
                tag: f.params.tag,
                started: f.started,
                finished: self.now,
                bytes: f.bytes_sent,
                completed: true,
            };
            self.digest.record_finish(&rec);
            self.finished.push(rec);
        }
        self.settle_watches(&due);
    }

    /// Remove finished flow ids from completion watches; empty watches
    /// fire their process immediately.
    fn settle_watches(&mut self, finished: &[u64]) {
        if self.watches.is_empty() || finished.is_empty() {
            return;
        }
        let now = self.now;
        let mut fired = Vec::new();
        self.watches.retain_mut(|(set, pid)| {
            for id in finished {
                set.remove(id);
            }
            if set.is_empty() {
                fired.push(*pid);
                false
            } else {
                true
            }
        });
        for pid in fired {
            self.schedule.push(Reverse((now, pid)));
        }
    }

    fn fire_due_processes(&mut self) {
        while let Some(&Reverse((t, pid))) = self.schedule.peek() {
            if t > self.now {
                break;
            }
            self.schedule.pop();
            let Some(mut proc_) = self.processes[pid].take() else { continue };
            let mut actions = Vec::new();
            let next = {
                let mut ctx = ProcessCtx { actions: &mut actions, next_id: self.next_id };
                proc_.fire(self.now, &mut ctx)
            };
            // Apply queued actions.
            let mut registered_watch = false;
            for a in actions {
                match a {
                    ProcessAction::Start(params, id) => {
                        debug_assert_eq!(id, self.next_id, "reserved flow id out of sync");
                        // Errors from background generators are swallowed by
                        // design (a generator pointed at an unroutable pair
                        // simply produces nothing), but the reserved id must
                        // still be consumed to keep later handles in sync.
                        if self.start_flow(params).is_err() {
                            self.next_id = self.next_id.max(id + 1);
                        }
                    }
                    ProcessAction::Stop(h) => {
                        // A generator stopping an already-finished flow
                        // is routine, not an error; the record it would
                        // return is not wanted here.
                        self.stop_flow(h).ok();
                    }
                    ProcessAction::NotifyWhenComplete(handles) => {
                        registered_watch = true;
                        let set: std::collections::BTreeSet<u64> = handles
                            .iter()
                            .map(|h| h.0)
                            .filter(|id| self.flows.contains_key(id))
                            .collect();
                        if set.is_empty() {
                            // Everything already finished: fire right away.
                            self.schedule.push(Reverse((self.now, pid)));
                        } else {
                            self.watches.push((set, pid));
                        }
                    }
                }
            }
            if let Some(next_t) = next {
                let next_t = if next_t <= self.now {
                    self.now + SimDuration::from_nanos(1)
                } else {
                    next_t
                };
                self.processes[pid] = Some(proc_);
                self.schedule.push(Reverse((next_t, pid)));
            } else if registered_watch {
                // Kept alive: the completion watch will fire it.
                self.processes[pid] = Some(proc_);
            }
        }
    }

    /// Run the simulation up to `target` (inclusive).
    pub fn run_until(&mut self, target: SimTime) -> Result<()> {
        while self.now < target {
            self.apply_due_link_changes()?;
            self.fire_due_processes();
            self.recompute_rates_if_dirty();
            let t_next = self
                .next_completion()
                .min(self.next_process_fire())
                .min(self.next_link_change())
                .min(target);
            if t_next > self.now {
                let dt = t_next.since(self.now);
                self.advance(dt);
            }
            self.complete_due_flows();
            self.apply_due_link_changes()?;
            self.fire_due_processes();
            if self.now >= target {
                break;
            }
        }
        // Completions exactly at `target`.
        self.recompute_rates_if_dirty();
        self.complete_due_flows();
        Ok(())
    }

    /// Run for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> Result<()> {
        let target = self.now + d;
        self.run_until(target)
    }

    /// Run until every listed flow has finished; returns their records in
    /// the same order. Errors with [`NetError::Stalled`] if the listed
    /// flows can never finish (zero rate and no scheduled process).
    pub fn run_until_flows_complete(&mut self, handles: &[FlowHandle]) -> Result<Vec<FlowRecord>> {
        let pending: Vec<u64> = handles.iter().map(|h| h.0).collect();
        loop {
            if pending.iter().all(|id| !self.flows.contains_key(id)) {
                break;
            }
            self.apply_due_link_changes()?;
            self.fire_due_processes();
            if pending.iter().all(|id| !self.flows.contains_key(id)) {
                break; // a link failure may have terminated a waited flow
            }
            self.recompute_rates_if_dirty();
            let t_next = self
                .next_completion()
                .min(self.next_process_fire())
                .min(self.next_link_change());
            if t_next == SimTime::MAX {
                return Err(NetError::Stalled);
            }
            let dt = t_next.since(self.now);
            self.advance(dt);
            self.complete_due_flows();
            self.apply_due_link_changes()?;
            self.fire_due_processes();
        }
        // Collect records in request order.
        let mut out = Vec::with_capacity(pending.len());
        for id in pending {
            let rec = self
                .finished
                .iter()
                .rev()
                .find(|r| r.id == id)
                .cloned()
                .ok_or(NetError::UnknownFlow(id))?;
            out.push(rec);
        }
        Ok(out)
    }

    /// Static capacity of a directed interface, bits/s.
    pub fn dirlink_capacity(&self, d: DirLink) -> Bps {
        self.capacities[d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::{mbps, mib};

    /// h1 -- r -- h2 and h3 -- r (star), 100 Mbps links.
    fn star() -> (Simulator, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let r = b.network("r");
        for h in [h1, h2, h3] {
            b.link(h, r, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        }
        (Simulator::new(b.build().unwrap()).unwrap(), h1, h2, h3)
    }

    #[test]
    fn bulk_transfer_timing() {
        let (mut sim, h1, h2, _) = star();
        // 12.5 MB at 100 Mbps = 1.0 s
        let f = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        let recs = sim.run_until_flows_complete(&[f]).unwrap();
        assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-6, "{}", sim.now());
        assert!(recs[0].completed);
        assert!((recs[0].bytes - 12_500_000.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_receiver_link() {
        let (mut sim, h1, h2, h3) = star();
        // Both h1->h2 and h3->h2 converge on h2's downlink: 50 Mbps each.
        let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
        let recs = sim.run_until_flows_complete(&[f1, f2]).unwrap();
        assert!((sim.now().as_secs_f64() - 2.0).abs() < 1e-6, "{}", sim.now());
        assert!(recs.iter().all(|r| r.completed));
    }

    #[test]
    fn early_finisher_releases_bandwidth() {
        let (mut sim, h1, h2, h3) = star();
        // f1 carries half the bytes of f2. Phase 1 (both active): 50 Mbps
        // each; f1 finishes at t=1. Phase 2: f2 alone at 100 Mbps finishes
        // the remaining 6.25 MB in 0.5 s => total 1.5 s.
        let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 6_250_000)).unwrap();
        let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
        sim.run_until_flows_complete(&[f1, f2]).unwrap();
        assert!((sim.now().as_secs_f64() - 1.5).abs() < 1e-6, "{}", sim.now());
    }

    #[test]
    fn cbr_flow_limits_itself() {
        let (mut sim, h1, h2, _) = star();
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        sim.run_for(SimDuration::from_secs(2)).unwrap();
        let sent = sim.flow_bytes_sent(f).unwrap();
        assert!((sent - 2.5e6).abs() < 10.0, "sent {sent}");
    }

    #[test]
    fn counters_advance() {
        let (mut sim, h1, h2, _) = star();
        sim.start_flow(FlowParams::cbr(h1, h2, mbps(80.0))).unwrap();
        sim.run_for(SimDuration::from_secs(1)).unwrap();
        // h1's uplink carries 10 MB.
        let link = sim.topology().neighbors(h1)[0].0;
        let octets = sim.iface_out_octets(h1, link);
        assert!((octets - 1e7).abs() < 10.0, "{octets}");
        // Reverse direction carries nothing.
        let dir = sim.topology().link(link).direction_from(h1).reverse();
        assert_eq!(sim.dirlink_octets(DirLink { link, dir }), 0.0);
    }

    #[test]
    fn stop_flow_returns_record() {
        let (mut sim, h1, h2, _) = star();
        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        sim.run_for(SimDuration::from_secs(1)).unwrap();
        let rec = sim.stop_flow(f).unwrap();
        assert!(!rec.completed);
        assert!((rec.bytes - 12.5e6).abs() < 10.0);
        assert!(!sim.flow_is_active(f));
        assert!(sim.stop_flow(f).is_err());
    }

    #[test]
    fn stalled_detection() {
        let (mut sim, h1, h2, h3) = star();
        // Saturate h2's downlink with a greedy persistent flow... a greedy
        // flow still shares, so instead: a flow with zero possible rate
        // cannot exist here. Use volume flow blocked by nothing => must
        // complete; the stall test needs an actually-stuck flow, which the
        // engine only produces with a zero-capacity path. Simplest: wait on
        // a persistent flow, which never completes.
        let _ = h3;
        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        assert!(matches!(
            sim.run_until_flows_complete(&[f]),
            Err(NetError::Stalled)
        ));
    }

    #[test]
    fn weighted_sharing() {
        let (mut sim, h1, h2, h3) = star();
        let f1 = sim
            .start_flow(FlowParams::greedy(h1, h2).with_weight(3.0))
            .unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h3, h2)).unwrap();
        assert!((sim.flow_rate(f1).unwrap() - mbps(75.0)).abs() < 1.0);
        assert!((sim.flow_rate(f2).unwrap() - mbps(25.0)).abs() < 1.0);
    }

    #[test]
    fn backplane_limits_aggregate() {
        // Fig 1 semantics: a switch with 10 Mbps internal bandwidth caps the
        // sum of traffic through it even over 100 Mbps links.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let h4 = b.compute("h4");
        let sw = b.network_with_internal_bw("sw", mbps(10.0));
        for h in [h1, h2, h3, h4] {
            b.link(h, sw, mbps(100.0), SimDuration::ZERO).unwrap();
        }
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();
        let f1 = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h3, h4)).unwrap();
        let r1 = sim.flow_rate(f1).unwrap();
        let r2 = sim.flow_rate(f2).unwrap();
        assert!((r1 + r2 - mbps(10.0)).abs() < 1.0, "{r1} + {r2}");
        assert!((r1 - r2).abs() < 1.0);
    }

    #[test]
    fn uncapped_backplane_does_not_limit() {
        let (mut sim, h1, h2, h3) = star();
        let f1 = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h2, h3)).unwrap();
        // Disjoint directed paths: both get full 100 Mbps.
        assert!((sim.flow_rate(f1).unwrap() - mbps(100.0)).abs() < 1.0);
        assert!((sim.flow_rate(f2).unwrap() - mbps(100.0)).abs() < 1.0);
    }

    #[test]
    fn full_duplex_independence() {
        let (mut sim, h1, h2, _) = star();
        let f1 = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h2, h1)).unwrap();
        assert!((sim.flow_rate(f1).unwrap() - mbps(100.0)).abs() < 1.0);
        assert!((sim.flow_rate(f2).unwrap() - mbps(100.0)).abs() < 1.0);
    }

    #[test]
    fn tag_filtered_rates() {
        let (mut sim, h1, h2, h3) = star();
        sim.start_flow(FlowParams::cbr(h1, h2, mbps(30.0)).with_tag(FlowTag::APP))
            .unwrap();
        sim.start_flow(
            FlowParams::cbr(h3, h2, mbps(20.0)).with_tag(FlowTag::BACKGROUND),
        )
        .unwrap();
        let link = sim.topology().neighbors(h2)[0].0;
        let dir = sim.topology().link(link).direction_from(h2).reverse();
        let d = DirLink { link, dir };
        assert!((sim.dirlink_rate(d) - mbps(50.0)).abs() < 1.0);
        assert!((sim.dirlink_rate_by_tag(d, FlowTag::APP) - mbps(30.0)).abs() < 1.0);
        assert!(
            (sim.dirlink_rate_by_tag(d, FlowTag::BACKGROUND) - mbps(20.0)).abs() < 1.0
        );
        assert_eq!(sim.dirlink_rate_by_tag(d, FlowTag::PROBE), 0.0);
        assert_eq!(sim.dirlink_capacity(d), mbps(100.0));
    }

    #[test]
    fn run_until_is_idempotent_at_target() {
        let (mut sim, h1, h2, _) = star();
        sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        sim.run_until(SimTime::from_secs(5)).unwrap();
        sim.run_until(SimTime::from_secs(5)).unwrap();
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn invalid_flow_params_rejected() {
        let (mut sim, h1, h2, _) = star();
        assert!(sim.start_flow(FlowParams::bulk(h1, h1, 10)).is_err());
        assert!(sim
            .start_flow(FlowParams::greedy(h1, h2).with_weight(0.0))
            .is_err());
        assert!(sim
            .start_flow(FlowParams::greedy(h1, h2).with_rate_cap(-1.0))
            .is_err());
    }

    #[test]
    fn process_fires_and_creates_flows() {
        struct Burst {
            src: NodeId,
            dst: NodeId,
            count: usize,
        }
        impl TrafficProcess for Burst {
            fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
                ctx.start_flow(FlowParams::bulk(self.src, self.dst, mib(1)));
                self.count -= 1;
                if self.count > 0 {
                    Some(now + SimDuration::from_secs(1))
                } else {
                    None
                }
            }
        }
        let (mut sim, h1, h2, _) = star();
        sim.add_process(
            SimTime::from_secs(1),
            Box::new(Burst { src: h1, dst: h2, count: 3 }),
        );
        sim.run_until(SimTime::from_secs(10)).unwrap();
        let finished = sim.take_finished();
        assert_eq!(finished.len(), 3);
        assert!(finished.iter().all(|r| r.completed));
    }

    #[test]
    fn identical_runs_produce_identical_digests() {
        let run = || {
            let (mut sim, h1, h2, h3) = star();
            sim.enable_audit();
            let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
            let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
            sim.run_until_flows_complete(&[f1, f2]).unwrap();
            assert!(sim.audit_violations().is_empty(), "{:?}", sim.audit_violations());
            sim.event_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn simultaneous_completions_finish_in_id_order() {
        // Two identical flows complete at the same instant; their records
        // must land in the finished log in id order every run (this was
        // hash-map dependent before the BTreeMap migration).
        let (mut sim, h1, h2, h3) = star();
        let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
        sim.run_until_flows_complete(&[f1, f2]).unwrap();
        let finished = sim.take_finished();
        let ids: Vec<u64> = finished.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(finished[0].finished, finished[1].finished);
    }

    #[test]
    fn audit_runs_clean_across_link_flaps() {
        let (mut sim, h1, h2, h3) = star();
        sim.enable_audit();
        let link = sim.topology().neighbors(h3)[0].0;
        sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        sim.schedule_link_state(SimTime::from_millis(200), link, false).unwrap();
        sim.schedule_link_state(SimTime::from_millis(700), link, true).unwrap();
        sim.run_until(SimTime::from_secs(1)).unwrap();
        assert!(sim.audit_violations().is_empty(), "{:?}", sim.audit_violations());
    }

    #[test]
    fn link_failure_reroutes_flow() {
        // h1 - r1 - h2 primary, h1 - r2 - r3 - h2 backup (longer).
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let r3 = b.network("r3");
        let lat = SimDuration::from_micros(10);
        let primary = b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, h2, mbps(100.0), lat).unwrap();
        b.link(h1, r2, mbps(50.0), lat).unwrap();
        b.link(r2, r3, mbps(50.0), lat).unwrap();
        b.link(r3, h2, mbps(50.0), lat).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();

        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        assert!((sim.flow_rate(f).unwrap() - mbps(100.0)).abs() < 1.0);

        sim.set_link_state(primary, false).unwrap();
        // Rerouted onto the 50 Mbps backup, bytes preserved.
        assert!(sim.flow_is_active(f));
        assert!((sim.flow_rate(f).unwrap() - mbps(50.0)).abs() < 1.0);
        let events = sim.take_link_events();
        assert_eq!(events.len(), 1);
        assert!(!events[0].up);

        // Restoring the link moves the flow back to the best path.
        sim.set_link_state(primary, true).unwrap();
        assert!((sim.flow_rate(f).unwrap() - mbps(100.0)).abs() < 1.0);
        assert!(sim.take_link_events().iter().any(|e| e.up));
    }

    #[test]
    fn link_failure_without_backup_kills_flow() {
        let (mut sim, h1, h2, _) = star();
        let link = sim.topology().neighbors(h1)[0].0;
        let f = sim.start_flow(FlowParams::bulk(h1, h2, mib(100))).unwrap();
        sim.run_for(SimDuration::from_millis(100)).unwrap();
        sim.set_link_state(link, false).unwrap();
        assert!(!sim.flow_is_active(f));
        let rec = sim
            .take_finished()
            .into_iter()
            .find(|r| r.id == 0)
            .unwrap();
        assert!(!rec.completed);
        assert!(rec.bytes > 0.0);
        // New flows over the dead link are rejected.
        assert!(matches!(
            sim.start_flow(FlowParams::greedy(h1, h2)),
            Err(NetError::NoRoute { .. })
        ));
        assert!(!sim.link_is_up(link));
    }

    #[test]
    fn scheduled_link_flap_affects_transfer_timing() {
        // 12.5 MB at 100 Mbps takes 1 s; a 2-second outage in the middle
        // (no backup path) stalls the flow... with no route the flow dies,
        // so use a backup topology where the outage halves the rate.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let lat = SimDuration::from_micros(10);
        let fast = b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, h2, mbps(100.0), lat).unwrap();
        b.link(h1, r2, mbps(25.0), lat).unwrap();
        b.link(r2, h2, mbps(25.0), lat).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();
        // Outage of the fast path from t=0.5 s to t=1.5 s.
        sim.schedule_link_state(SimTime::from_millis(500), fast, false).unwrap();
        sim.schedule_link_state(SimTime::from_millis(1500), fast, true).unwrap();
        let f = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        sim.run_until_flows_complete(&[f]).unwrap();
        // 0.5 s at 100 (6.25 MB) + 1.0 s at 25 (3.125 MB) + remaining
        // 3.125 MB at 100 (0.25 s) = 1.75 s.
        assert!((sim.now().as_secs_f64() - 1.75).abs() < 1e-3, "{}", sim.now());
    }

    #[test]
    fn process_can_stop_its_own_flow() {
        struct OnOff {
            src: NodeId,
            dst: NodeId,
            active: Option<FlowHandle>,
            toggles: usize,
        }
        impl TrafficProcess for OnOff {
            fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
                match self.active.take() {
                    None => {
                        self.active =
                            Some(ctx.start_flow(FlowParams::cbr(self.src, self.dst, mbps(50.0))));
                    }
                    Some(h) => ctx.stop_flow(h),
                }
                self.toggles -= 1;
                (self.toggles > 0).then(|| now + SimDuration::from_secs(1))
            }
        }
        let (mut sim, h1, h2, _) = star();
        sim.add_process(
            SimTime::ZERO,
            Box::new(OnOff { src: h1, dst: h2, active: None, toggles: 4 }),
        );
        // on @0, off @1, on @2, off @3 => active for 2 of 4 seconds.
        sim.run_until(SimTime::from_secs(4)).unwrap();
        let link = sim.topology().neighbors(h1)[0].0;
        let octets = sim.iface_out_octets(h1, link);
        assert!((octets - 2.0 * 50e6 / 8.0).abs() < 10.0, "{octets}");
    }

    #[test]
    fn coalesced_link_transitions_rebuild_routing_once() {
        // Five spokes; the flow uses h0->h1. Three other spokes flap down
        // at the same instant: one routing rebuild, three logged
        // transitions, and the flow is untouched.
        let mut b = TopologyBuilder::new();
        let hs: Vec<NodeId> = (0..5).map(|i| b.compute(&format!("h{i}"))).collect();
        let r = b.network("r");
        let links: Vec<_> = hs
            .iter()
            .map(|&h| b.link(h, r, mbps(100.0), SimDuration::from_micros(10)).unwrap())
            .collect();
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();
        let f = sim.start_flow(FlowParams::cbr(hs[0], hs[1], mbps(10.0))).unwrap();
        for &l in &links[2..] {
            sim.schedule_link_state(SimTime::from_secs(1), l, false).unwrap();
        }
        sim.run_until(SimTime::from_secs(2)).unwrap();
        assert_eq!(sim.routing_rebuilds(), 1);
        assert_eq!(sim.take_link_events().len(), 3);
        assert!(sim.flow_is_active(f));
    }

    #[test]
    fn simultaneous_down_up_keeps_flow_alive() {
        // h1's only link goes down *and* comes back up at the same
        // instant. The coalesced batch applies both flips before
        // re-pathing, so the flow never sees a routeless network; both
        // transitions still land in the event log, down first.
        let (mut sim, h1, h2, _) = star();
        let link = sim.topology().neighbors(h1)[0].0;
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        sim.schedule_link_state(SimTime::from_secs(1), link, true).unwrap();
        sim.schedule_link_state(SimTime::from_secs(1), link, false).unwrap();
        sim.run_until(SimTime::from_secs(2)).unwrap();
        assert!(sim.flow_is_active(f));
        let events = sim.take_link_events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].up);
        assert!(events[1].up);
        assert_eq!(sim.routing_rebuilds(), 1);
    }

    #[test]
    fn incremental_matches_full_rates_and_digest() {
        // The acceptance bar for the scoped solver: the same scenario —
        // arrivals, departures, completions, a mid-run link flap — must
        // produce bit-identical rate digests at every checkpoint and an
        // identical event digest at the end, in both solver modes.
        let run = |mode: SolverMode| {
            let (mut sim, h1, h2, h3) = star();
            sim.set_solver_mode(mode);
            sim.enable_audit();
            let link3 = sim.topology().neighbors(h3)[0].0;
            sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
            sim.start_flow(FlowParams::bulk(h3, h2, 6_250_000)).unwrap();
            sim.start_flow(FlowParams::cbr(h2, h1, mbps(30.0))).unwrap();
            sim.schedule_link_state(SimTime::from_millis(400), link3, false).unwrap();
            sim.schedule_link_state(SimTime::from_millis(900), link3, true).unwrap();
            let mut digests = Vec::new();
            for ms in [100u64, 500, 1000, 2500] {
                sim.run_until(SimTime::from_millis(ms)).unwrap();
                digests.push(sim.rates_digest());
            }
            assert!(
                sim.audit_violations().is_empty(),
                "{mode:?}: {:?}",
                sim.audit_violations()
            );
            (digests, sim.event_digest())
        };
        assert_eq!(run(SolverMode::Full), run(SolverMode::Incremental));
    }

    #[test]
    fn solver_mode_selects_recompute_path() {
        let (mut sim, h1, h2, _) = star();
        assert_eq!(sim.solver_mode(), SolverMode::Incremental);
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        let _ = sim.flow_rate(f).unwrap();
        assert!(sim.scoped_recomputes() > 0);
        assert_eq!(sim.full_recomputes(), 0);

        sim.set_solver_mode(SolverMode::Full);
        let f2 = sim.start_flow(FlowParams::cbr(h2, h1, mbps(10.0))).unwrap();
        let _ = sim.flow_rate(f2).unwrap();
        assert!(sim.full_recomputes() > 0);
    }

    #[test]
    fn unaffected_flap_skips_rate_recomputation() {
        // A flap on a link no flow crosses rebuilds routing but leaves
        // every path unchanged, so the rates never go dirty and the
        // solver is not re-run at all.
        let (mut sim, h1, h2, h3) = star();
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        let _ = sim.flow_rate(f).unwrap(); // settle the initial recompute
        let before = sim.scoped_recomputes();
        let l3 = sim.topology().neighbors(h3)[0].0;
        sim.set_link_state(l3, false).unwrap();
        let _ = sim.flow_rate(f).unwrap();
        assert_eq!(sim.scoped_recomputes(), before);
        assert_eq!(sim.routing_rebuilds(), 1);
    }
}
