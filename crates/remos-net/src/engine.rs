//! The fluid flow-level discrete-event simulator.
//!
//! Between events every active flow has a constant rate — the weighted
//! max-min fair allocation over all directed link interfaces and capped
//! switch backplanes. Events are: a bounded flow finishing its volume, a
//! scheduled traffic process firing, or the caller's time horizon. Octet
//! counters (the SNMP agents' data source) advance analytically between
//! events, so simulating 900 testbed-seconds of Airshed costs only as many
//! rate recomputations as there are flow arrivals and departures.

use crate::audit::{AuditViolation, MaxMinAudit};
use crate::digest::EventDigest;
use crate::error::{NetError, Result};
use crate::flow::{FlowParams, FlowRecord, FlowTag};
use crate::maxmin::{self, FlowSpec};
use crate::routing::{Path, Routing};
use crate::time::{SimDuration, SimTime};
use crate::topology::{DirLink, NodeId, Topology};
use crate::units::Bps;
use std::cmp::Reverse;
// Result-affecting maps are BTreeMaps: the rate solver, the completion
// scan, and the event log all iterate them, so ordering must be a
// property of the data, not of a hash seed (audited by remos-audit).
use remos_obs::{Counter, Histogram, Obs};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Cached observability handles for the engine's hot paths. Resolving a
/// metric by name takes a registry lock; caching the handles here means a
/// steady-state recomputation pays exactly one atomic op per update. The
/// struct is rebuilt whenever a new [`Obs`] is installed.
struct EngineMetrics {
    full_recomputes: Counter,
    scoped_recomputes: Counter,
    routing_rebuilds: Counter,
    /// Flows touched per solve (full: all flows; scoped: component closure).
    solve_scope_flows: Histogram,
    /// Link transitions coalesced into one routing rebuild.
    link_batch_size: Histogram,
    /// Wall-clock nanoseconds per solve — only populated when a top-level
    /// caller injects a clock (see `remos_obs::clock`); empty by default.
    solve_latency_nanos: Histogram,
}

impl EngineMetrics {
    fn new(obs: &Obs) -> EngineMetrics {
        EngineMetrics {
            full_recomputes: obs.counter("engine_full_recomputes_total"),
            scoped_recomputes: obs.counter("engine_scoped_recomputes_total"),
            routing_rebuilds: obs.counter("engine_routing_rebuilds_total"),
            solve_scope_flows: obs.histogram("engine_solve_scope_flows"),
            link_batch_size: obs.histogram("engine_link_batch_size"),
            solve_latency_nanos: obs.histogram("engine_solve_latency_nanos"),
        }
    }
}

/// Handle to an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowHandle(pub(crate) u64);

impl FlowHandle {
    /// The flow's simulator-assigned id (ascending in start order; the
    /// id recorded in [`crate::flow::FlowRecord`] and the digests).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Identifies a registered traffic process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcessId(usize);

/// A scheduled traffic process (on-off sources, arrival generators, ...).
///
/// The engine calls [`TrafficProcess::fire`] at each scheduled time; the
/// process manipulates flows through the [`ProcessCtx`] and returns the next
/// time it wants to fire (or `None` to finish).
/// `Send + Sync` because processes live inside the [`Simulator`], which
/// sits behind a reader-writer cell (shard collectors read settled state
/// concurrently); `fire` still requires `&mut self` through the write
/// guard, so `Sync` is only the marker that lets `&Simulator` travel.
pub trait TrafficProcess: Send + Sync {
    /// React to the scheduled instant `now`, returning the next fire time.
    fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime>;
}

/// The restricted engine API handed to firing traffic processes.
///
/// Actions are queued and applied by the engine after the process returns;
/// flow handles are assigned eagerly so a process can remember the flows it
/// started and stop them on a later fire.
pub struct ProcessCtx<'a> {
    actions: &'a mut Vec<ProcessAction>,
    next_id: u64,
}

enum ProcessAction {
    Start(FlowParams, u64),
    Stop(FlowHandle),
    NotifyWhenComplete(Vec<FlowHandle>),
}

impl ProcessCtx<'_> {
    /// Queue a flow start; returns the handle the flow will receive.
    pub fn start_flow(&mut self, params: FlowParams) -> FlowHandle {
        let id = self.next_id;
        self.next_id += 1;
        self.actions.push(ProcessAction::Start(params, id));
        FlowHandle(id)
    }

    /// Queue a flow stop.
    pub fn stop_flow(&mut self, h: FlowHandle) {
        self.actions.push(ProcessAction::Stop(h));
    }

    /// Ask the engine to fire this process again once every listed flow
    /// has finished (completed, been stopped, or been killed by a link
    /// failure). Lets processes implement synchronous communication
    /// phases. The process is kept alive even if `fire` returns `None`.
    pub fn notify_when_complete(&mut self, flows: Vec<FlowHandle>) {
        self.actions.push(ProcessAction::NotifyWhenComplete(flows));
    }
}

struct ActiveFlow {
    params: FlowParams,
    /// Resource indices (dir-links, then backplanes) this flow loads.
    resources: Vec<usize>,
    path: Path,
    rate: Bps,
    remaining: f64, // bytes; f64::INFINITY for persistent flows
    bytes_sent: f64,
    started: SimTime,
    /// Predicted completion given the current rate.
    eta: SimTime,
}

impl ActiveFlow {
    /// Placeholder for a freshly grown slab slot; every field is
    /// overwritten before first use, and a retired slot keeps its path
    /// and resource buffers so the next flow through it allocates nothing.
    fn vacant() -> ActiveFlow {
        ActiveFlow {
            params: FlowParams::greedy(NodeId(0), NodeId(0)),
            resources: Vec::new(),
            path: Path { src: NodeId(0), dst: NodeId(0), hops: Vec::new(), nodes: Vec::new() },
            rate: 0.0,
            remaining: 0.0,
            bytes_sent: 0.0,
            started: SimTime::ZERO,
            eta: SimTime::MAX,
        }
    }
}

/// Which rate-recomputation strategy the engine uses.
///
/// Both modes produce **bit-identical** allocations, event digests, and
/// completion orders — the determinism tests assert it — so the choice is
/// purely a performance knob. See `docs/PERFORMANCE.md` for the invariants
/// that make the equivalence hold.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverMode {
    /// Rebuild the whole flow set and re-solve every component on each
    /// recomputation (the historical behaviour; kept as the oracle the
    /// audit's shadow solve compares against).
    Full,
    /// Re-solve only the connected components of flows transitively
    /// sharing a resource with whatever changed since the last
    /// recomputation; every other flow keeps its frozen rate. The default.
    #[default]
    Incremental,
}

/// What changed since the last rate recomputation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DirtyKind {
    /// Nothing: the cached rates are valid.
    Clean,
    /// Only flows transitively sharing the listed resources may change.
    Touched,
    /// Everything must be recomputed (mode switches).
    All,
}

/// Allocation-free dirty-resource tracker: a generation-marked membership
/// test plus a dense list of touched resource indices. `touch` is
/// O(|resources|) with no heap traffic at steady state — the list and the
/// mark array are reused across recomputations — replacing the `BTreeSet`
/// the engine used to rebuild on every event.
struct DirtyTracker {
    kind: DirtyKind,
    /// `marks[r] == gen` means resource `r` is already in `list`.
    marks: Vec<u64>,
    /// Current generation; bumping it invalidates every mark at once.
    gen: u64,
    /// Touched resource indices since the last reset, deduped via `marks`
    /// but in touch order (the consumer sorts its own copy).
    list: Vec<usize>,
}

impl DirtyTracker {
    fn new(n_resources: usize) -> DirtyTracker {
        DirtyTracker { kind: DirtyKind::Clean, marks: vec![0; n_resources], gen: 1, list: Vec::new() }
    }

    /// Record `resources` as touched since the last recomputation.
    fn touch(&mut self, resources: &[usize]) {
        if self.kind == DirtyKind::All {
            return;
        }
        self.kind = DirtyKind::Touched;
        for &r in resources {
            if self.marks[r] != self.gen {
                self.marks[r] = self.gen;
                self.list.push(r);
            }
        }
    }

    /// Force a full recomputation on the next query.
    fn mark_all(&mut self) {
        self.kind = DirtyKind::All;
    }

    /// Return to clean, invalidating all marks in O(1).
    fn reset(&mut self) {
        self.kind = DirtyKind::Clean;
        self.gen += 1;
        self.list.clear();
    }
}

/// Collect the resource indices (dir-links, then the capped backplanes of
/// interior nodes) a routed path loads, into a reusable buffer.
/// `backplane[node]` is the backplane resource index or `usize::MAX`.
fn resources_into(backplane: &[usize], path: &Path, out: &mut Vec<usize>) {
    out.clear();
    out.extend(path.dirlink_indices());
    for n in path.interior_nodes() {
        let b = backplane[n.index()];
        if b != usize::MAX {
            out.push(b);
        }
    }
}

/// Insert flow `(id, slot)` into the membership list of each resource
/// (sorted by id, deduped; a flow crossing a resource twice is listed
/// once). Carrying the slot alongside the id lets the scoped-solve walk
/// resolve members without an id → slot binary search per occurrence.
fn members_insert(members: &mut [Vec<(u64, u32)>], id: u64, slot: u32, resources: &[usize]) {
    for &r in resources {
        let v = &mut members[r];
        if let Err(pos) = v.binary_search_by_key(&id, |e| e.0) {
            v.insert(pos, (id, slot));
        }
    }
}

/// Remove `id` from the membership list of each resource.
fn members_remove(members: &mut [Vec<(u64, u32)>], id: u64, resources: &[usize]) {
    for &r in resources {
        let v = &mut members[r];
        if let Ok(pos) = v.binary_search_by_key(&id, |e| e.0) {
            v.remove(pos);
        }
    }
}

/// One parallel component solve: the flow rates (in component push order)
/// plus the sparse `(resource, residual)` updates that component produced.
type ComponentSolve = (Vec<f64>, Vec<(usize, f64)>);

/// Install a freshly solved rate on a flow. The ETA is re-derived **only
/// when the rate actually changed** (bitwise): an unchanged rate means the
/// flow's linear trajectory is unchanged, so recomputing the ETA from
/// `now + remaining/rate` would only inject float round-off. Both solver
/// modes share this rule — it is what keeps completion timestamps (and so
/// event digests) bit-identical between them, since the incremental mode
/// never even visits flows outside the affected components.
fn apply_rate(f: &mut ActiveFlow, rate: Bps, now: SimTime) {
    if rate.to_bits() == f.rate.to_bits() {
        return;
    }
    f.rate = rate;
    f.eta = if f.remaining.is_finite() && f.rate > 0.0 {
        now + SimDuration::from_secs_f64(f.remaining * 8.0 / f.rate)
    } else {
        SimTime::MAX
    };
}

/// Per-interface counters; indexed by [`DirLink::index`].
#[derive(Clone, Debug, Default)]
pub struct IfaceCounters {
    /// Exact delivered octets per directed interface.
    pub octets: Vec<f64>,
}

/// A link state transition that occurred in the simulation — the source
/// of SNMP linkDown/linkUp traps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    /// When the transition happened.
    pub t: SimTime,
    /// The affected link.
    pub link: crate::topology::LinkId,
    /// New state.
    pub up: bool,
}

/// The simulator.
///
/// ```
/// use remos_net::{Simulator, TopologyBuilder, mbps, SimDuration, SimTime};
/// use remos_net::flow::FlowParams;
///
/// let mut b = TopologyBuilder::new();
/// let h1 = b.compute("h1");
/// let h2 = b.compute("h2");
/// b.link(h1, h2, mbps(8.0), SimDuration::from_micros(10)).unwrap();
/// let mut sim = Simulator::new(b.build().unwrap()).unwrap();
///
/// // 1 MB at 8 Mbit/s takes exactly 1 second.
/// let f = sim.start_flow(FlowParams::bulk(h1, h2, 1_000_000)).unwrap();
/// let records = sim.run_until_flows_complete(&[f]).unwrap();
/// assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-6);
/// assert!(records[0].completed);
/// ```
pub struct Simulator {
    topo: Arc<Topology>,
    routing: Arc<Routing>,
    now: SimTime,
    /// Slab (arena) of flow state. Active slots are the ones referenced
    /// by `order_slots`; retired slots sit on `free` keeping their path
    /// and resource buffers for the next flow through them.
    slots: Vec<ActiveFlow>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Active flow ids, ascending (ids are handed out monotonically, so a
    /// start pushes at the end and order is maintained for free). This is
    /// the engine's canonical iteration order — it matches the old
    /// `BTreeMap` id order bit-for-bit, which the digests depend on.
    order_ids: Vec<u64>,
    /// Slot index of each flow in `order_ids` (parallel array).
    order_slots: Vec<u32>,
    next_id: u64,
    /// capacities of all resources: `dir_link_count()` interfaces followed
    /// by one entry per capped network node.
    capacities: Vec<f64>,
    /// node index -> backplane resource index (`usize::MAX` if uncapped).
    backplane: Vec<usize>,
    counters: IfaceCounters,
    /// What changed since the last rate recomputation.
    dirty: DirtyTracker,
    /// Recomputation strategy; see [`SolverMode`].
    mode: SolverMode,
    /// Residual capacity per resource, maintained across recomputations
    /// (scoped solves only overwrite the affected components' entries).
    residual: Vec<f64>,
    /// Per-resource list of the active `(flow id, slot)` pairs crossing
    /// it, sorted by id — the adjacency the scoped solver walks to find
    /// affected components.
    members: Vec<Vec<(u64, u32)>>,
    /// Persistent solver scratch (CSR buffers, interning marks) so
    /// steady-state recomputations allocate nothing.
    solver: maxmin::Solver,
    /// Scratch marks for component discovery, cleared after each use.
    res_seen: Vec<bool>,
    /// Scoped-solve scratch: resources in the affected closure.
    comp_res: Vec<usize>,
    /// Scoped-solve scratch: `(flow id, slot)` pairs in the affected
    /// closure.
    comp: Vec<(u64, u32)>,
    /// Scoped-solve scratch: `(flow id, slot)` pairs of all disjoint
    /// sub-components, concatenated; each sub-component sorted ascending.
    subs: Vec<(u64, u32)>,
    /// Scoped-solve scratch: end offset of each sub-component in `subs`.
    sub_ends: Vec<usize>,
    /// Scoped-solve scratch: BFS stack of slot indices.
    fstack: Vec<u32>,
    /// Scoped-solve scratch: per-slot "claimed by closure" marks.
    flow_seen: Vec<bool>,
    /// Completion-scan scratch: ids due to finish this instant.
    due: Vec<u64>,
    /// Statistics: full / scoped solver invocations and routing rebuilds.
    full_recomputes: u64,
    scoped_recomputes: u64,
    routing_rebuilds: u64,
    finished: Vec<FlowRecord>,
    processes: Vec<Option<Box<dyn TrafficProcess>>>,
    schedule: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Per-link operational state.
    link_up: Vec<bool>,
    /// Pending scheduled link transitions.
    link_schedule: BinaryHeap<Reverse<(SimTime, u32, bool)>>,
    /// Log of applied transitions (drained by trap sources).
    link_events: Vec<LinkEvent>,
    /// Completion watches: when all flows of a set are finished, the
    /// process fires.
    watches: Vec<(std::collections::BTreeSet<u64>, usize)>,
    /// Order-sensitive digest of every flow/link event so far.
    digest: EventDigest,
    /// When set, every rate recomputation is checked against the max-min
    /// invariants and violations are collected (always asserted in debug
    /// builds regardless).
    audit: Option<MaxMinAudit>,
    /// Violations collected while auditing (see [`Simulator::enable_audit`]).
    audit_violations: Vec<AuditViolation>,
    /// Observability handle (metrics + simulated-time traces). Every
    /// simulator owns one; [`Simulator::set_obs`] swaps in a shared handle
    /// so the whole stack reports into a single snapshot.
    obs: Obs,
    /// Cached metric handles derived from `obs`.
    obs_metrics: EngineMetrics,
}

impl Simulator {
    /// Build a simulator over a topology. Routing is computed eagerly.
    pub fn new(topo: Topology) -> Result<Simulator> {
        let routing = Routing::new(&topo);
        // Resource vector layout: the stable dir-link prefix (indexed by
        // `DirLink::index`), then one entry per capped backplane in node-id
        // order. Indices never move, so dirty-tracking can key on them.
        let mut capacities = topo.dir_link_capacities();
        let mut backplane = vec![usize::MAX; topo.node_count()];
        for (n, bw) in topo.capped_network_nodes() {
            backplane[n.index()] = capacities.len();
            capacities.push(bw);
        }
        let counters = IfaceCounters { octets: vec![0.0; topo.dir_link_count()] };
        let link_up = vec![true; topo.link_count()];
        let residual = capacities.clone();
        // Member lists get a head start so moderate per-resource load
        // never grows them: without it, every placement that pushes a
        // resource past its historical peak reallocates, a probabilistic
        // tail that keeps steady-state churn from ever becoming
        // allocation-free. (`vec![...; n]` clones would drop the reserved
        // capacity, hence the explicit map.)
        let members = (0..capacities.len()).map(|_| Vec::with_capacity(16)).collect();
        let res_seen = vec![false; capacities.len()];
        let obs = Obs::new();
        let obs_metrics = EngineMetrics::new(&obs);
        let dirty = DirtyTracker::new(capacities.len());
        Ok(Simulator {
            topo: Arc::new(topo),
            routing: Arc::new(routing),
            now: SimTime::ZERO,
            slots: Vec::new(),
            free: Vec::new(),
            order_ids: Vec::new(),
            order_slots: Vec::new(),
            next_id: 0,
            capacities,
            backplane,
            counters,
            dirty,
            mode: SolverMode::default(),
            residual,
            members,
            solver: maxmin::Solver::new(),
            res_seen,
            comp_res: Vec::new(),
            comp: Vec::new(),
            subs: Vec::new(),
            sub_ends: Vec::new(),
            fstack: Vec::new(),
            flow_seen: Vec::new(),
            due: Vec::new(),
            full_recomputes: 0,
            scoped_recomputes: 0,
            routing_rebuilds: 0,
            finished: Vec::new(),
            processes: Vec::new(),
            schedule: BinaryHeap::new(),
            link_up,
            link_schedule: BinaryHeap::new(),
            link_events: Vec::new(),
            watches: Vec::new(),
            digest: EventDigest::new(),
            audit: None,
            audit_violations: Vec::new(),
            obs,
            obs_metrics,
        })
    }

    /// Install a shared observability handle. Metric handles are re-cached
    /// against the new registry; counters restart from the registry's
    /// current values (the engine's own [`Simulator::full_recomputes`]-style
    /// counters are unaffected and keep their lifetime totals).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs_metrics = EngineMetrics::new(&obs);
        self.obs = obs;
    }

    /// The observability handle this simulator reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Turn on the runtime max-min audit: after every rate recomputation
    /// the allocation is checked against the invariants in
    /// [`MaxMinAudit`]; violations accumulate in
    /// [`Simulator::audit_violations`]. (Debug builds assert the same
    /// invariants unconditionally.)
    pub fn enable_audit(&mut self) {
        self.audit = Some(MaxMinAudit::default());
    }

    /// Violations collected since the audit was enabled (empty when the
    /// audit is off or every recomputation was valid).
    pub fn audit_violations(&self) -> &[AuditViolation] {
        &self.audit_violations
    }

    /// Select the rate-recomputation strategy. Switching marks the rates
    /// fully dirty so the next recomputation resynchronises under the new
    /// mode (a no-op in practice: both modes are bit-identical).
    pub fn set_solver_mode(&mut self, mode: SolverMode) {
        if self.mode != mode {
            self.mode = mode;
            if !self.order_ids.is_empty() {
                self.dirty.mark_all();
            }
        }
    }

    /// The active rate-recomputation strategy.
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Number of full (all-component) solver runs so far.
    pub fn full_recomputes(&self) -> u64 {
        self.full_recomputes
    }

    /// Number of scoped (affected-component-only) solver runs so far.
    pub fn scoped_recomputes(&self) -> u64 {
        self.scoped_recomputes
    }

    /// Number of times routing was rebuilt after link transitions. All
    /// transitions due at one instant are coalesced into a single rebuild.
    pub fn routing_rebuilds(&self) -> u64 {
        self.routing_rebuilds
    }

    /// Mode-agnostic digest of the current allocation: every active flow's
    /// id and bit-exact rate, in id order. Two simulators in different
    /// [`SolverMode`]s driven through the same scenario must agree on this
    /// at every instant — the verification hook the equivalence tests use.
    pub fn rates_digest(&mut self) -> u64 {
        self.recompute_rates_if_dirty();
        let mut d = EventDigest::new();
        for (&id, &s) in self.order_ids.iter().zip(&self.order_slots) {
            d.record_rate(id, self.slots[s as usize].rate);
        }
        d.value()
    }

    /// Order-sensitive digest over every flow start, flow finish, and link
    /// transition so far, combined with the current clock and the exact
    /// per-interface octet counters. Two runs of the same scenario with
    /// the same seeds must produce equal digests; see
    /// `docs/DETERMINISM.md`.
    pub fn event_digest(&self) -> u64 {
        let mut d = self.digest;
        d.write_u64(self.now.as_nanos());
        for &o in &self.counters.octets {
            d.write_f64(o);
        }
        d.value()
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Shared handle to the topology.
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topo)
    }

    /// The routing table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of currently active flows.
    pub fn active_flow_count(&self) -> usize {
        self.order_ids.len()
    }

    /// Slot index of an active flow, by binary search on the sorted id
    /// order (the slab's replacement for the old `BTreeMap` lookup).
    #[inline]
    fn slot_of(&self, id: u64) -> Option<usize> {
        self.order_ids.binary_search(&id).ok().map(|pos| self.order_slots[pos] as usize)
    }

    /// Start a flow. Endpoints must be distinct compute nodes with a route.
    pub fn start_flow(&mut self, params: FlowParams) -> Result<FlowHandle> {
        if params.weight <= 0.0 || !params.weight.is_finite() {
            return Err(NetError::Invalid(format!("flow weight {}", params.weight)));
        }
        if let Some(cap) = params.rate_cap {
            if cap <= 0.0 || !cap.is_finite() {
                return Err(NetError::Invalid(format!("rate cap {cap}")));
            }
        }
        if params.src == params.dst {
            return Err(NetError::Invalid("flow src == dst".into()));
        }
        // Claim a slab slot first so the routed path lands directly in the
        // slot's reusable buffers: at steady state a start performs no
        // heap allocation at all.
        let slot_idx = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(ActiveFlow::vacant());
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[slot_idx];
        if let Err(e) = self.routing.path_into(&self.topo, params.src, params.dst, &mut slot.path)
        {
            self.free.push(slot_idx as u32);
            return Err(e);
        }
        resources_into(&self.backplane, &slot.path, &mut slot.resources);
        let (src, dst) = (params.src.0, params.dst.0);
        let id = self.next_id;
        self.next_id += 1;
        slot.rate = 0.0;
        slot.remaining = params.volume.map_or(f64::INFINITY, |v| v as f64);
        slot.bytes_sent = 0.0;
        slot.started = self.now;
        slot.eta = SimTime::MAX;
        slot.params = params;
        members_insert(&mut self.members, id, slot_idx as u32, &slot.resources);
        self.dirty.touch(&slot.resources);
        // Ids are handed out monotonically, so pushing keeps `order_ids`
        // sorted without a search.
        self.order_ids.push(id);
        self.order_slots.push(slot_idx as u32);
        self.digest.record_start(id, src, dst, self.now.as_nanos());
        Ok(FlowHandle(id))
    }

    /// Remove an active flow from the slab, record and log its finish,
    /// and return the record. Allocation-free: the slot (with its path
    /// and resource buffers) is recycled through the free list. Callers
    /// settle completion watches themselves.
    fn retire_flow(&mut self, id: u64, completed: bool) -> Option<FlowRecord> {
        let pos = self.order_ids.binary_search(&id).ok()?;
        let slot_idx = self.order_slots[pos] as usize;
        self.order_ids.remove(pos);
        self.order_slots.remove(pos);
        let f = &self.slots[slot_idx];
        members_remove(&mut self.members, id, &f.resources);
        self.dirty.touch(&f.resources);
        let rec = FlowRecord {
            id,
            src: f.params.src,
            dst: f.params.dst,
            tag: f.params.tag,
            started: f.started,
            finished: self.now,
            bytes: f.bytes_sent,
            completed,
        };
        self.free.push(slot_idx as u32);
        self.digest.record_finish(&rec);
        self.finished.push(rec.clone());
        Some(rec)
    }

    /// Stop a flow immediately, returning its record.
    pub fn stop_flow(&mut self, h: FlowHandle) -> Result<FlowRecord> {
        let rec = self.retire_flow(h.0, false).ok_or(NetError::UnknownFlow(h.0))?;
        self.settle_watches(&[h.0]);
        Ok(rec)
    }

    /// Register a traffic process, firing first at `start`.
    pub fn add_process(&mut self, start: SimTime, p: Box<dyn TrafficProcess>) -> ProcessId {
        let id = self.processes.len();
        self.processes.push(Some(p));
        self.schedule.push(Reverse((start.max(self.now), id)));
        ProcessId(id)
    }

    /// Remove a traffic process (it will not fire again). Flows it started
    /// keep running; stop them separately if needed.
    pub fn remove_process(&mut self, id: ProcessId) {
        if let Some(slot) = self.processes.get_mut(id.0) {
            *slot = None;
        }
    }

    /// Current rate of an active flow, bits/s.
    pub fn flow_rate(&mut self, h: FlowHandle) -> Result<Bps> {
        self.recompute_rates_if_dirty();
        self.slot_of(h.0).map(|s| self.slots[s].rate).ok_or(NetError::UnknownFlow(h.0))
    }

    /// Bytes delivered so far by an active flow.
    pub fn flow_bytes_sent(&self, h: FlowHandle) -> Result<f64> {
        self.slot_of(h.0).map(|s| self.slots[s].bytes_sent).ok_or(NetError::UnknownFlow(h.0))
    }

    /// Whether the handle refers to a still-active flow.
    pub fn flow_is_active(&self, h: FlowHandle) -> bool {
        self.order_ids.binary_search(&h.0).is_ok()
    }

    /// Drain the records of flows finished (completed or stopped) so far.
    pub fn take_finished(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.finished)
    }

    /// Append the finished-flow records to `out` and clear the internal
    /// log, retaining its capacity — the allocation-free alternative to
    /// [`take_finished`](Self::take_finished) for steady-state callers.
    pub fn drain_finished_into(&mut self, out: &mut Vec<FlowRecord>) {
        out.append(&mut self.finished);
    }

    /// Operational state of a link.
    pub fn link_is_up(&self, link: crate::topology::LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// Drain the log of link transitions (SNMP trap source).
    pub fn take_link_events(&mut self) -> Vec<LinkEvent> {
        std::mem::take(&mut self.link_events)
    }

    /// Change a link's state *now*: routing is recomputed, every active
    /// flow is re-pathed onto its new best route (flows left with no route
    /// terminate with `completed = false`), and the transition is logged.
    pub fn set_link_state(&mut self, link: crate::topology::LinkId, up: bool) -> Result<()> {
        self.apply_link_transitions(&[(link, up)])
    }

    /// Apply a batch of link transitions as one event: all flips are
    /// recorded first, then routing is rebuilt **once** and every flow is
    /// re-pathed once against the final state. Coalescing simultaneous
    /// transitions this way means a link that goes down and comes back up
    /// at the same instant never strands the flows crossing it.
    fn apply_link_transitions(&mut self, batch: &[(crate::topology::LinkId, bool)]) -> Result<()> {
        let mut flips = 0u64;
        for &(link, up) in batch {
            self.topo.try_link(link)?;
            if self.link_up[link.index()] == up {
                continue;
            }
            self.link_up[link.index()] = up;
            let ev = LinkEvent { t: self.now, link, up };
            self.digest.record_link(&ev);
            self.link_events.push(ev);
            flips += 1;
        }
        if flips == 0 {
            return Ok(());
        }
        self.routing = Arc::new(Routing::with_link_state(&self.topo, Some(&self.link_up)));
        self.routing_rebuilds += 1;
        self.obs_metrics.routing_rebuilds.inc();
        self.obs_metrics.link_batch_size.observe(flips);
        self.obs.event("engine.routing.rebuild", self.now.as_nanos(), &[("links", flips)]);
        // Re-path every flow in id order (deterministic without a sort,
        // since `order_ids` is kept ascending). Flows whose best path is
        // unchanged are skipped entirely — they stay outside the dirty
        // set, so a faraway flap costs them nothing. This is a rare path;
        // the snapshot and per-flow path allocations are acceptable here.
        let ids: Vec<u64> = self.order_ids.clone();
        for id in ids {
            let Some(s) = self.slot_of(id) else { continue };
            let (src, dst) = (self.slots[s].params.src, self.slots[s].params.dst);
            match self.routing.path(&self.topo, src, dst) {
                Ok(path) => {
                    if self.slots[s].path.hops == path.hops {
                        continue;
                    }
                    let mut resources = Vec::new();
                    resources_into(&self.backplane, &path, &mut resources);
                    let f = &mut self.slots[s];
                    f.path = path;
                    let old = std::mem::replace(&mut f.resources, resources);
                    members_remove(&mut self.members, id, &old);
                    self.dirty.touch(&old);
                    let f = &self.slots[s];
                    members_insert(&mut self.members, id, s as u32, &f.resources);
                    self.dirty.touch(&f.resources);
                }
                Err(_) => {
                    // Disconnected: the connection breaks.
                    if self.retire_flow(id, false).is_some() {
                        self.settle_watches(&[id]);
                    }
                }
            }
        }
        Ok(())
    }

    /// Schedule a link transition at a future instant.
    pub fn schedule_link_state(
        &mut self,
        t: SimTime,
        link: crate::topology::LinkId,
        up: bool,
    ) -> Result<()> {
        self.topo.try_link(link)?;
        self.link_schedule.push(Reverse((t.max(self.now), link.0, up)));
        Ok(())
    }

    fn next_link_change(&self) -> SimTime {
        self.link_schedule.peek().map_or(SimTime::MAX, |Reverse((t, _, _))| *t)
    }

    fn apply_due_link_changes(&mut self) -> Result<()> {
        // Coalesce every transition due at or before `now` into one batch:
        // one routing rebuild and one re-path pass regardless of how many
        // links flip together. Pop order — (time, link, down-before-up) —
        // fixes the digest order of the recorded events.
        let mut batch: Vec<(crate::topology::LinkId, bool)> = Vec::new();
        while let Some(&Reverse((t, link, up))) = self.link_schedule.peek() {
            if t > self.now {
                break;
            }
            self.link_schedule.pop();
            batch.push((crate::topology::LinkId(link), up));
        }
        if batch.is_empty() {
            return Ok(());
        }
        // Validated at insertion; re-propagate rather than panic in case
        // the invariant is ever broken.
        self.apply_link_transitions(&batch)
    }

    /// Exact octets delivered over a directed interface since t=0.
    pub fn dirlink_octets(&self, d: DirLink) -> f64 {
        self.counters.octets[d.index()]
    }

    /// Octets sent *by* `node` onto `link` (the `ifOutOctets` of that
    /// node's interface on the link).
    pub fn iface_out_octets(&self, node: NodeId, link: crate::topology::LinkId) -> f64 {
        let dir = self.topo.link(link).direction_from(node);
        self.dirlink_octets(DirLink { link, dir })
    }

    /// Instantaneous aggregate rate over a directed interface, bits/s.
    pub fn dirlink_rate(&mut self, d: DirLink) -> Bps {
        self.recompute_rates_if_dirty();
        self.order_slots
            .iter()
            .map(|&s| &self.slots[s as usize])
            .filter(|f| f.path.hops.contains(&d))
            .map(|f| f.rate)
            .sum()
    }

    /// Instantaneous aggregate rate of flows with a given tag over a
    /// directed interface (oracle view used by tests and ablations).
    pub fn dirlink_rate_by_tag(&mut self, d: DirLink, tag: FlowTag) -> Bps {
        self.recompute_rates_if_dirty();
        self.order_slots
            .iter()
            .map(|&s| &self.slots[s as usize])
            .filter(|f| f.params.tag == tag && f.path.hops.contains(&d))
            .map(|f| f.rate)
            .sum()
    }

    /// True when no pending flow or link change could alter the solved
    /// rates: [`Simulator::dirlink_rate_settled`] reads are valid.
    pub fn rates_settled(&self) -> bool {
        self.dirty.kind == DirtyKind::Clean
    }

    /// Solve any pending rate changes now, so that shared-read consumers
    /// (shard collectors polling disjoint regions concurrently) can use
    /// [`Simulator::dirlink_rate_settled`] without exclusive access.
    pub fn settle_rates(&mut self) {
        self.recompute_rates_if_dirty();
    }

    /// Instantaneous aggregate rate over a directed interface, bits/s,
    /// without re-solving. Valid only while [`Simulator::rates_settled`]
    /// holds; the sum visits flows in id order, exactly like
    /// [`Simulator::dirlink_rate`], so the two read bit-identical values.
    pub fn dirlink_rate_settled(&self, d: DirLink) -> Bps {
        debug_assert!(self.rates_settled(), "dirlink_rate_settled read on unsettled rates");
        self.order_slots
            .iter()
            .map(|&s| &self.slots[s as usize])
            .filter(|f| f.path.hops.contains(&d))
            .map(|f| f.rate)
            .sum()
    }

    /// Batched [`Simulator::dirlink_rate_settled`]: write the settled
    /// rate of every directed interface in `region` (sorted ascending
    /// indices) into the matching slots of `out`, in one pass over the
    /// flow table — O(flows · hops · log |region|) instead of
    /// O(|region| · flows · hops). This is the region-scoped read a
    /// shard collector issues per poll.
    ///
    /// Bit-identical to the per-link sums: each slot starts from the
    /// empty-sum identity (`-0.0`, matching `Iterator::sum`) and flow
    /// contributions are added in flow-id order — the same order and
    /// grouping the per-link sum uses, so every partial result rounds
    /// identically.
    pub fn dirlink_rates_settled_into(&self, region: &[u32], out: &mut [f64]) {
        debug_assert!(self.rates_settled(), "dirlink_rates_settled_into on unsettled rates");
        debug_assert!(region.windows(2).all(|w| w[0] < w[1]), "region must be sorted/deduped");
        for &i in region {
            out[i as usize] = -0.0;
        }
        for &s in &self.order_slots {
            let f = &self.slots[s as usize];
            for h in &f.path.hops {
                let idx = h.index();
                if region.binary_search(&(idx as u32)).is_ok() {
                    out[idx] += f.rate;
                }
            }
        }
    }

    fn recompute_rates_if_dirty(&mut self) {
        match (self.mode, self.dirty.kind) {
            (_, DirtyKind::Clean) => {}
            (SolverMode::Full, _) | (_, DirtyKind::All) => {
                self.dirty.reset();
                self.recompute_full();
            }
            (SolverMode::Incremental, DirtyKind::Touched) => {
                // Move the touched list out (an alloc-free swap), sort it
                // for a deterministic closure walk, and hand the buffer
                // back afterwards so steady state reuses its capacity.
                let mut touched = std::mem::take(&mut self.dirty.list);
                self.dirty.reset();
                touched.sort_unstable();
                self.recompute_scoped(&touched);
                touched.clear();
                self.dirty.list = touched;
            }
        }
    }

    /// Rebuild the whole problem and solve every component from scratch.
    fn recompute_full(&mut self) {
        self.full_recomputes += 1;
        self.obs_metrics.full_recomputes.inc();
        self.obs_metrics.solve_scope_flows.observe(self.order_ids.len() as u64);
        let span = self.obs.span("engine.solve.full", self.now.as_nanos());
        let t0 = self.obs.clock_nanos();
        // `order_slots` iteration is id order, so the solver sees flows in
        // a deterministic sequence without an explicit sort.
        let specs: Vec<FlowSpec> = self
            .order_slots
            .iter()
            .map(|&s| {
                let f = &self.slots[s as usize];
                FlowSpec {
                    weight: f.params.weight,
                    cap: f.params.rate_cap,
                    resources: f.resources.clone(),
                }
            })
            .collect();
        let alloc = maxmin::solve(&self.capacities, &specs);
        self.residual = alloc.residual;
        let now = self.now;
        for (&s, &rate) in self.order_slots.iter().zip(alloc.rates.iter()) {
            apply_rate(&mut self.slots[s as usize], rate, now);
        }
        if let (Some(t0), Some(t1)) = (t0, self.obs.clock_nanos()) {
            self.obs_metrics.solve_latency_nanos.observe(t1.saturating_sub(t0));
        }
        span.end(self.now.as_nanos(), &[("flows", self.order_ids.len() as u64)]);
        self.check_allocation();
    }

    /// Re-solve only the connected components of flows transitively
    /// sharing a resource with the `touched` set (sorted ascending); all
    /// other flows keep their frozen rates and ETAs, and untouched
    /// resources keep their residuals. Bit-identical to
    /// [`recompute_full`](Self::recompute_full) because the solver fills
    /// each component in isolation anyway, always iterating its flows in
    /// ascending id order.
    ///
    /// Allocation-free at steady state: the closure walk, the partition
    /// into disjoint components, and the per-component fills all run in
    /// persistent scratch buffers. When the closure splits into several
    /// independent components and is large enough to pay for it, the
    /// components are solved in parallel on the shared scoped pool and
    /// merged in component order — deterministic because components are
    /// disjoint in both flows and resources, and bit-identical because
    /// each component's fill arithmetic is unchanged.
    fn recompute_scoped(&mut self, touched: &[usize]) {
        self.scoped_recomputes += 1;
        self.obs_metrics.scoped_recomputes.inc();
        let span = self.obs.span("engine.solve.scoped", self.now.as_nanos());
        let t0 = self.obs.clock_nanos();
        // Closure: every resource and flow reachable from the touched set
        // through the membership lists. `res_seen` marks stay set for the
        // partition pass below, which consumes them.
        self.comp_res.clear();
        self.comp.clear();
        if self.flow_seen.len() < self.slots.len() {
            self.flow_seen.resize(self.slots.len(), false);
        }
        for &r in touched {
            if !self.res_seen[r] {
                self.res_seen[r] = true;
                self.comp_res.push(r);
            }
        }
        let mut head = 0;
        while head < self.comp_res.len() {
            let r = self.comp_res[head];
            head += 1;
            for &(fid, slot) in &self.members[r] {
                let s = slot as usize;
                if self.flow_seen[s] {
                    continue;
                }
                self.flow_seen[s] = true;
                self.comp.push((fid, slot));
                for &r2 in &self.slots[s].resources {
                    if !self.res_seen[r2] {
                        self.res_seen[r2] = true;
                        self.comp_res.push(r2);
                    }
                }
            }
        }
        for i in 0..self.comp_res.len() {
            let r = self.comp_res[i];
            if self.members[r].is_empty() {
                // Vacated resource (its last flow departed): the residual
                // reverts to full capacity, clamped exactly as the full
                // solver clamps its output.
                let mut v = self.capacities[r];
                if v < 0.0 {
                    v = 0.0;
                }
                self.residual[r] = v;
            }
        }
        let scope_flows = self.comp.len();
        self.obs_metrics.solve_scope_flows.observe(scope_flows as u64);
        // The closure may span several *disjoint* components (e.g. a
        // departed flow used to bridge them). Partition it, lowest flow id
        // first, so the arithmetic matches the full solver's canonical
        // per-component fills. Each resource's member list is expanded at
        // most once (its closure `res_seen` mark is consumed here), so the
        // partition is linear in the membership size.
        self.comp.sort_unstable();
        self.subs.clear();
        self.sub_ends.clear();
        for ci in 0..self.comp.len() {
            let (first, s0) = self.comp[ci];
            if !self.flow_seen[s0 as usize] {
                continue; // already claimed by an earlier component
            }
            self.flow_seen[s0 as usize] = false;
            let start = self.subs.len();
            self.subs.push((first, s0));
            self.fstack.clear();
            self.fstack.push(s0);
            while let Some(s) = self.fstack.pop() {
                for ri in 0..self.slots[s as usize].resources.len() {
                    let r = self.slots[s as usize].resources[ri];
                    if !self.res_seen[r] {
                        continue; // this resource was expanded already
                    }
                    self.res_seen[r] = false;
                    for &(other, os) in &self.members[r] {
                        if self.flow_seen[os as usize] {
                            self.flow_seen[os as usize] = false;
                            self.subs.push((other, os));
                            self.fstack.push(os);
                        }
                    }
                }
            }
            self.subs[start..].sort_unstable();
            self.sub_ends.push(self.subs.len());
        }
        debug_assert_eq!(self.subs.len(), self.comp.len(), "flow membership out of sync");
        // Clear the marks of vacated touched resources the partition never
        // reached (every resource with members was consumed above).
        for i in 0..self.comp_res.len() {
            let r = self.comp_res[i];
            self.res_seen[r] = false;
        }
        let now = self.now;
        // Threshold for shipping disjoint components to the worker pool:
        // below this, thread spawn and teardown dwarf the fills. The
        // common steady-state case (one component) always stays serial
        // and allocation-free.
        const PAR_MIN_FLOWS: usize = 128;
        if self.sub_ends.len() >= 2 && scope_flows >= PAR_MIN_FLOWS {
            // Parallel: one fresh solver per component (the persistent
            // scratch solver is single-threaded). `run_indexed` re-slots
            // results by input index, so rates and residuals merge in
            // component order no matter how the OS schedules workers.
            let jobs: Vec<(usize, usize)> = self
                .sub_ends
                .iter()
                .scan(0, |start, &end| {
                    let j = (*start, end);
                    *start = end;
                    Some(j)
                })
                .collect();
            let slots = &self.slots;
            let subs = &self.subs;
            let caps = &self.capacities;
            let results: Vec<ComponentSolve> =
                crate::pool::run_indexed(&jobs, crate::pool::default_workers(jobs.len()), |&(a, b)| {
                    let mut solver = maxmin::Solver::new();
                    solver.begin_component(caps.len());
                    for &(_, s) in &subs[a..b] {
                        let f = &slots[s as usize];
                        solver.push_flow(f.params.weight, f.params.rate_cap, &f.resources, caps);
                    }
                    solver.run_fill();
                    (solver.component_rates().to_vec(), solver.component_residuals().collect())
                });
            for (&(a, _), (rates, resids)) in jobs.iter().zip(&results) {
                for (k, &rate) in rates.iter().enumerate() {
                    let s = self.subs[a + k].1 as usize;
                    apply_rate(&mut self.slots[s], rate, now);
                }
                for &(r, resid) in resids {
                    self.residual[r] = resid;
                }
            }
        } else {
            let mut start = 0;
            for si in 0..self.sub_ends.len() {
                let end = self.sub_ends[si];
                self.solver.begin_component(self.capacities.len());
                for k in start..end {
                    let f = &self.slots[self.subs[k].1 as usize];
                    self.solver.push_flow(
                        f.params.weight,
                        f.params.rate_cap,
                        &f.resources,
                        &self.capacities,
                    );
                }
                self.solver.run_fill();
                for k in start..end {
                    let rate = self.solver.component_rates()[k - start];
                    apply_rate(&mut self.slots[self.subs[k].1 as usize], rate, now);
                }
                for (r, resid) in self.solver.component_residuals() {
                    self.residual[r] = resid;
                }
                start = end;
            }
        }
        if let (Some(t0), Some(t1)) = (t0, self.obs.clock_nanos()) {
            self.obs_metrics.solve_latency_nanos.observe(t1.saturating_sub(t0));
        }
        span.end(self.now.as_nanos(), &[("flows", scope_flows as u64)]);
        self.check_allocation();
    }

    /// Debug/audit hook run after every recomputation. In debug builds the
    /// current allocation (rates + maintained residuals) is asserted
    /// against the max-min invariants; with the audit enabled, violations
    /// are collected instead, and in incremental mode a shadow full solve
    /// cross-checks every rate bit-for-bit (divergence is reported as
    /// [`AuditViolation::SolverDivergence`]).
    fn check_allocation(&mut self) {
        if self.audit.is_none() && !cfg!(debug_assertions) {
            return;
        }
        let specs: Vec<FlowSpec> = self
            .order_slots
            .iter()
            .map(|&s| {
                let f = &self.slots[s as usize];
                FlowSpec {
                    weight: f.params.weight,
                    cap: f.params.rate_cap,
                    resources: f.resources.clone(),
                }
            })
            .collect();
        let alloc = maxmin::Allocation {
            rates: self.order_slots.iter().map(|&s| self.slots[s as usize].rate).collect(),
            residual: self.residual.clone(),
        };
        debug_assert!(
            maxmin::validate(&self.capacities, &specs, &alloc).is_none(),
            "engine produced invalid allocation: {:?}",
            maxmin::validate(&self.capacities, &specs, &alloc)
        );
        if let Some(audit) = self.audit {
            self.audit_violations
                .extend(audit.check(&self.capacities, &specs, &alloc));
            if self.mode == SolverMode::Incremental {
                let full = maxmin::solve(&self.capacities, &specs);
                for ((&id, &s), &want) in
                    self.order_ids.iter().zip(&self.order_slots).zip(full.rates.iter())
                {
                    let got = self.slots[s as usize].rate;
                    if got.to_bits() != want.to_bits() {
                        self.audit_violations.push(AuditViolation::SolverDivergence {
                            flow: id,
                            incremental: got,
                            full: want,
                        });
                    }
                }
            }
        }
    }

    /// Advance counters and flow progress by `dt` at current rates.
    fn advance(&mut self, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let secs = dt.as_secs_f64();
        // Id-order iteration keeps the octet accumulation order (and so
        // the counter bits) identical to the old `BTreeMap` walk.
        for &s in &self.order_slots {
            let f = &mut self.slots[s as usize];
            if f.rate <= 0.0 {
                continue;
            }
            let bytes = f.rate * secs / 8.0;
            f.bytes_sent += bytes;
            if f.remaining.is_finite() {
                f.remaining = (f.remaining - bytes).max(0.0);
            }
            for h in &f.path.hops {
                self.counters.octets[h.index()] += bytes;
            }
        }
        // DES monotonic-clock audit: `now` may only stand still or move
        // forward. Impossible to violate today (unsigned add), but the
        // tripwire survives refactors that change how time is stepped.
        let before = self.now;
        self.now += dt;
        debug_assert!(self.now >= before, "simulation clock moved backwards");
        if let Some(audit) = self.audit {
            if let Some(v) = audit.check_clock(before, self.now) {
                self.audit_violations.push(v);
            }
        }
    }

    fn next_completion(&self) -> SimTime {
        self.order_slots.iter().map(|&s| self.slots[s as usize].eta).min().unwrap_or(SimTime::MAX)
    }

    fn next_process_fire(&self) -> SimTime {
        self.schedule.peek().map_or(SimTime::MAX, |Reverse((t, _))| *t)
    }

    fn complete_due_flows(&mut self) {
        // `order_ids` iteration yields due flows in id order, so records
        // of simultaneous completions land in the `finished` log (and the
        // event digest) in a deterministic order. The scan reuses a
        // persistent scratch list — steady state allocates nothing here.
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        for (&id, &s) in self.order_ids.iter().zip(&self.order_slots) {
            let f = &self.slots[s as usize];
            if f.eta <= self.now || f.remaining <= 1e-6 {
                due.push(id);
            }
        }
        for &id in &due {
            self.retire_flow(id, true);
        }
        self.settle_watches(&due);
        due.clear();
        self.due = due;
    }

    /// Remove finished flow ids from completion watches; empty watches
    /// fire their process immediately.
    fn settle_watches(&mut self, finished: &[u64]) {
        if self.watches.is_empty() || finished.is_empty() {
            return;
        }
        let now = self.now;
        let mut fired = Vec::new();
        self.watches.retain_mut(|(set, pid)| {
            for id in finished {
                set.remove(id);
            }
            if set.is_empty() {
                fired.push(*pid);
                false
            } else {
                true
            }
        });
        for pid in fired {
            self.schedule.push(Reverse((now, pid)));
        }
    }

    fn fire_due_processes(&mut self) {
        while let Some(&Reverse((t, pid))) = self.schedule.peek() {
            if t > self.now {
                break;
            }
            self.schedule.pop();
            let Some(mut proc_) = self.processes[pid].take() else { continue };
            let mut actions = Vec::new();
            let next = {
                let mut ctx = ProcessCtx { actions: &mut actions, next_id: self.next_id };
                proc_.fire(self.now, &mut ctx)
            };
            // Apply queued actions.
            let mut registered_watch = false;
            for a in actions {
                match a {
                    ProcessAction::Start(params, id) => {
                        debug_assert_eq!(id, self.next_id, "reserved flow id out of sync");
                        // Errors from background generators are swallowed by
                        // design (a generator pointed at an unroutable pair
                        // simply produces nothing), but the reserved id must
                        // still be consumed to keep later handles in sync.
                        if self.start_flow(params).is_err() {
                            self.next_id = self.next_id.max(id + 1);
                        }
                    }
                    ProcessAction::Stop(h) => {
                        // A generator stopping an already-finished flow
                        // is routine, not an error; the record it would
                        // return is not wanted here.
                        self.stop_flow(h).ok();
                    }
                    ProcessAction::NotifyWhenComplete(handles) => {
                        registered_watch = true;
                        let set: std::collections::BTreeSet<u64> = handles
                            .iter()
                            .map(|h| h.0)
                            .filter(|id| self.order_ids.binary_search(id).is_ok())
                            .collect();
                        if set.is_empty() {
                            // Everything already finished: fire right away.
                            self.schedule.push(Reverse((self.now, pid)));
                        } else {
                            self.watches.push((set, pid));
                        }
                    }
                }
            }
            if let Some(next_t) = next {
                let next_t = if next_t <= self.now {
                    self.now + SimDuration::from_nanos(1)
                } else {
                    next_t
                };
                self.processes[pid] = Some(proc_);
                self.schedule.push(Reverse((next_t, pid)));
            } else if registered_watch {
                // Kept alive: the completion watch will fire it.
                self.processes[pid] = Some(proc_);
            }
        }
    }

    /// Run the simulation up to `target` (inclusive).
    pub fn run_until(&mut self, target: SimTime) -> Result<()> {
        while self.now < target {
            self.apply_due_link_changes()?;
            self.fire_due_processes();
            self.recompute_rates_if_dirty();
            let t_next = self
                .next_completion()
                .min(self.next_process_fire())
                .min(self.next_link_change())
                .min(target);
            if t_next > self.now {
                let dt = t_next.since(self.now);
                self.advance(dt);
            }
            self.complete_due_flows();
            self.apply_due_link_changes()?;
            self.fire_due_processes();
            if self.now >= target {
                break;
            }
        }
        // Completions exactly at `target`.
        self.recompute_rates_if_dirty();
        self.complete_due_flows();
        Ok(())
    }

    /// Run for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> Result<()> {
        let target = self.now + d;
        self.run_until(target)
    }

    /// Run until every listed flow has finished; returns their records in
    /// the same order. Errors with [`NetError::Stalled`] if the listed
    /// flows can never finish (zero rate and no scheduled process).
    pub fn run_until_flows_complete(&mut self, handles: &[FlowHandle]) -> Result<Vec<FlowRecord>> {
        let pending: Vec<u64> = handles.iter().map(|h| h.0).collect();
        loop {
            if pending.iter().all(|id| self.order_ids.binary_search(id).is_err()) {
                break;
            }
            self.apply_due_link_changes()?;
            self.fire_due_processes();
            if pending.iter().all(|id| self.order_ids.binary_search(id).is_err()) {
                break; // a link failure may have terminated a waited flow
            }
            self.recompute_rates_if_dirty();
            let t_next = self
                .next_completion()
                .min(self.next_process_fire())
                .min(self.next_link_change());
            if t_next == SimTime::MAX {
                return Err(NetError::Stalled);
            }
            let dt = t_next.since(self.now);
            self.advance(dt);
            self.complete_due_flows();
            self.apply_due_link_changes()?;
            self.fire_due_processes();
        }
        // Collect records in request order.
        let mut out = Vec::with_capacity(pending.len());
        for id in pending {
            let rec = self
                .finished
                .iter()
                .rev()
                .find(|r| r.id == id)
                .cloned()
                .ok_or(NetError::UnknownFlow(id))?;
            out.push(rec);
        }
        Ok(out)
    }

    /// Static capacity of a directed interface, bits/s.
    pub fn dirlink_capacity(&self, d: DirLink) -> Bps {
        self.capacities[d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::{mbps, mib};

    /// h1 -- r -- h2 and h3 -- r (star), 100 Mbps links.
    fn star() -> (Simulator, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let r = b.network("r");
        for h in [h1, h2, h3] {
            b.link(h, r, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        }
        (Simulator::new(b.build().unwrap()).unwrap(), h1, h2, h3)
    }

    #[test]
    fn bulk_transfer_timing() {
        let (mut sim, h1, h2, _) = star();
        // 12.5 MB at 100 Mbps = 1.0 s
        let f = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        let recs = sim.run_until_flows_complete(&[f]).unwrap();
        assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-6, "{}", sim.now());
        assert!(recs[0].completed);
        assert!((recs[0].bytes - 12_500_000.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_receiver_link() {
        let (mut sim, h1, h2, h3) = star();
        // Both h1->h2 and h3->h2 converge on h2's downlink: 50 Mbps each.
        let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
        let recs = sim.run_until_flows_complete(&[f1, f2]).unwrap();
        assert!((sim.now().as_secs_f64() - 2.0).abs() < 1e-6, "{}", sim.now());
        assert!(recs.iter().all(|r| r.completed));
    }

    #[test]
    fn early_finisher_releases_bandwidth() {
        let (mut sim, h1, h2, h3) = star();
        // f1 carries half the bytes of f2. Phase 1 (both active): 50 Mbps
        // each; f1 finishes at t=1. Phase 2: f2 alone at 100 Mbps finishes
        // the remaining 6.25 MB in 0.5 s => total 1.5 s.
        let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 6_250_000)).unwrap();
        let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
        sim.run_until_flows_complete(&[f1, f2]).unwrap();
        assert!((sim.now().as_secs_f64() - 1.5).abs() < 1e-6, "{}", sim.now());
    }

    #[test]
    fn cbr_flow_limits_itself() {
        let (mut sim, h1, h2, _) = star();
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        sim.run_for(SimDuration::from_secs(2)).unwrap();
        let sent = sim.flow_bytes_sent(f).unwrap();
        assert!((sent - 2.5e6).abs() < 10.0, "sent {sent}");
    }

    #[test]
    fn counters_advance() {
        let (mut sim, h1, h2, _) = star();
        sim.start_flow(FlowParams::cbr(h1, h2, mbps(80.0))).unwrap();
        sim.run_for(SimDuration::from_secs(1)).unwrap();
        // h1's uplink carries 10 MB.
        let link = sim.topology().neighbors(h1)[0].0;
        let octets = sim.iface_out_octets(h1, link);
        assert!((octets - 1e7).abs() < 10.0, "{octets}");
        // Reverse direction carries nothing.
        let dir = sim.topology().link(link).direction_from(h1).reverse();
        assert_eq!(sim.dirlink_octets(DirLink { link, dir }), 0.0);
    }

    #[test]
    fn stop_flow_returns_record() {
        let (mut sim, h1, h2, _) = star();
        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        sim.run_for(SimDuration::from_secs(1)).unwrap();
        let rec = sim.stop_flow(f).unwrap();
        assert!(!rec.completed);
        assert!((rec.bytes - 12.5e6).abs() < 10.0);
        assert!(!sim.flow_is_active(f));
        assert!(sim.stop_flow(f).is_err());
    }

    #[test]
    fn stalled_detection() {
        let (mut sim, h1, h2, h3) = star();
        // Saturate h2's downlink with a greedy persistent flow... a greedy
        // flow still shares, so instead: a flow with zero possible rate
        // cannot exist here. Use volume flow blocked by nothing => must
        // complete; the stall test needs an actually-stuck flow, which the
        // engine only produces with a zero-capacity path. Simplest: wait on
        // a persistent flow, which never completes.
        let _ = h3;
        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        assert!(matches!(
            sim.run_until_flows_complete(&[f]),
            Err(NetError::Stalled)
        ));
    }

    #[test]
    fn weighted_sharing() {
        let (mut sim, h1, h2, h3) = star();
        let f1 = sim
            .start_flow(FlowParams::greedy(h1, h2).with_weight(3.0))
            .unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h3, h2)).unwrap();
        assert!((sim.flow_rate(f1).unwrap() - mbps(75.0)).abs() < 1.0);
        assert!((sim.flow_rate(f2).unwrap() - mbps(25.0)).abs() < 1.0);
    }

    #[test]
    fn backplane_limits_aggregate() {
        // Fig 1 semantics: a switch with 10 Mbps internal bandwidth caps the
        // sum of traffic through it even over 100 Mbps links.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let h4 = b.compute("h4");
        let sw = b.network_with_internal_bw("sw", mbps(10.0));
        for h in [h1, h2, h3, h4] {
            b.link(h, sw, mbps(100.0), SimDuration::ZERO).unwrap();
        }
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();
        let f1 = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h3, h4)).unwrap();
        let r1 = sim.flow_rate(f1).unwrap();
        let r2 = sim.flow_rate(f2).unwrap();
        assert!((r1 + r2 - mbps(10.0)).abs() < 1.0, "{r1} + {r2}");
        assert!((r1 - r2).abs() < 1.0);
    }

    #[test]
    fn uncapped_backplane_does_not_limit() {
        let (mut sim, h1, h2, h3) = star();
        let f1 = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h2, h3)).unwrap();
        // Disjoint directed paths: both get full 100 Mbps.
        assert!((sim.flow_rate(f1).unwrap() - mbps(100.0)).abs() < 1.0);
        assert!((sim.flow_rate(f2).unwrap() - mbps(100.0)).abs() < 1.0);
    }

    #[test]
    fn full_duplex_independence() {
        let (mut sim, h1, h2, _) = star();
        let f1 = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let f2 = sim.start_flow(FlowParams::greedy(h2, h1)).unwrap();
        assert!((sim.flow_rate(f1).unwrap() - mbps(100.0)).abs() < 1.0);
        assert!((sim.flow_rate(f2).unwrap() - mbps(100.0)).abs() < 1.0);
    }

    #[test]
    fn tag_filtered_rates() {
        let (mut sim, h1, h2, h3) = star();
        sim.start_flow(FlowParams::cbr(h1, h2, mbps(30.0)).with_tag(FlowTag::APP))
            .unwrap();
        sim.start_flow(
            FlowParams::cbr(h3, h2, mbps(20.0)).with_tag(FlowTag::BACKGROUND),
        )
        .unwrap();
        let link = sim.topology().neighbors(h2)[0].0;
        let dir = sim.topology().link(link).direction_from(h2).reverse();
        let d = DirLink { link, dir };
        assert!((sim.dirlink_rate(d) - mbps(50.0)).abs() < 1.0);
        assert!((sim.dirlink_rate_by_tag(d, FlowTag::APP) - mbps(30.0)).abs() < 1.0);
        assert!(
            (sim.dirlink_rate_by_tag(d, FlowTag::BACKGROUND) - mbps(20.0)).abs() < 1.0
        );
        assert_eq!(sim.dirlink_rate_by_tag(d, FlowTag::PROBE), 0.0);
        assert_eq!(sim.dirlink_capacity(d), mbps(100.0));
    }

    #[test]
    fn run_until_is_idempotent_at_target() {
        let (mut sim, h1, h2, _) = star();
        sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        sim.run_until(SimTime::from_secs(5)).unwrap();
        sim.run_until(SimTime::from_secs(5)).unwrap();
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn invalid_flow_params_rejected() {
        let (mut sim, h1, h2, _) = star();
        assert!(sim.start_flow(FlowParams::bulk(h1, h1, 10)).is_err());
        assert!(sim
            .start_flow(FlowParams::greedy(h1, h2).with_weight(0.0))
            .is_err());
        assert!(sim
            .start_flow(FlowParams::greedy(h1, h2).with_rate_cap(-1.0))
            .is_err());
    }

    #[test]
    fn process_fires_and_creates_flows() {
        struct Burst {
            src: NodeId,
            dst: NodeId,
            count: usize,
        }
        impl TrafficProcess for Burst {
            fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
                ctx.start_flow(FlowParams::bulk(self.src, self.dst, mib(1)));
                self.count -= 1;
                if self.count > 0 {
                    Some(now + SimDuration::from_secs(1))
                } else {
                    None
                }
            }
        }
        let (mut sim, h1, h2, _) = star();
        sim.add_process(
            SimTime::from_secs(1),
            Box::new(Burst { src: h1, dst: h2, count: 3 }),
        );
        sim.run_until(SimTime::from_secs(10)).unwrap();
        let finished = sim.take_finished();
        assert_eq!(finished.len(), 3);
        assert!(finished.iter().all(|r| r.completed));
    }

    #[test]
    fn identical_runs_produce_identical_digests() {
        let run = || {
            let (mut sim, h1, h2, h3) = star();
            sim.enable_audit();
            let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
            let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
            sim.run_until_flows_complete(&[f1, f2]).unwrap();
            assert!(sim.audit_violations().is_empty(), "{:?}", sim.audit_violations());
            sim.event_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn simultaneous_completions_finish_in_id_order() {
        // Two identical flows complete at the same instant; their records
        // must land in the finished log in id order every run (this was
        // hash-map dependent before the BTreeMap migration).
        let (mut sim, h1, h2, h3) = star();
        let f1 = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        let f2 = sim.start_flow(FlowParams::bulk(h3, h2, 12_500_000)).unwrap();
        sim.run_until_flows_complete(&[f1, f2]).unwrap();
        let finished = sim.take_finished();
        let ids: Vec<u64> = finished.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(finished[0].finished, finished[1].finished);
    }

    #[test]
    fn audit_runs_clean_across_link_flaps() {
        let (mut sim, h1, h2, h3) = star();
        sim.enable_audit();
        let link = sim.topology().neighbors(h3)[0].0;
        sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        sim.schedule_link_state(SimTime::from_millis(200), link, false).unwrap();
        sim.schedule_link_state(SimTime::from_millis(700), link, true).unwrap();
        sim.run_until(SimTime::from_secs(1)).unwrap();
        assert!(sim.audit_violations().is_empty(), "{:?}", sim.audit_violations());
    }

    #[test]
    fn link_failure_reroutes_flow() {
        // h1 - r1 - h2 primary, h1 - r2 - r3 - h2 backup (longer).
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let r3 = b.network("r3");
        let lat = SimDuration::from_micros(10);
        let primary = b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, h2, mbps(100.0), lat).unwrap();
        b.link(h1, r2, mbps(50.0), lat).unwrap();
        b.link(r2, r3, mbps(50.0), lat).unwrap();
        b.link(r3, h2, mbps(50.0), lat).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();

        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        assert!((sim.flow_rate(f).unwrap() - mbps(100.0)).abs() < 1.0);

        sim.set_link_state(primary, false).unwrap();
        // Rerouted onto the 50 Mbps backup, bytes preserved.
        assert!(sim.flow_is_active(f));
        assert!((sim.flow_rate(f).unwrap() - mbps(50.0)).abs() < 1.0);
        let events = sim.take_link_events();
        assert_eq!(events.len(), 1);
        assert!(!events[0].up);

        // Restoring the link moves the flow back to the best path.
        sim.set_link_state(primary, true).unwrap();
        assert!((sim.flow_rate(f).unwrap() - mbps(100.0)).abs() < 1.0);
        assert!(sim.take_link_events().iter().any(|e| e.up));
    }

    #[test]
    fn link_failure_without_backup_kills_flow() {
        let (mut sim, h1, h2, _) = star();
        let link = sim.topology().neighbors(h1)[0].0;
        let f = sim.start_flow(FlowParams::bulk(h1, h2, mib(100))).unwrap();
        sim.run_for(SimDuration::from_millis(100)).unwrap();
        sim.set_link_state(link, false).unwrap();
        assert!(!sim.flow_is_active(f));
        let rec = sim
            .take_finished()
            .into_iter()
            .find(|r| r.id == 0)
            .unwrap();
        assert!(!rec.completed);
        assert!(rec.bytes > 0.0);
        // New flows over the dead link are rejected.
        assert!(matches!(
            sim.start_flow(FlowParams::greedy(h1, h2)),
            Err(NetError::NoRoute { .. })
        ));
        assert!(!sim.link_is_up(link));
    }

    #[test]
    fn scheduled_link_flap_affects_transfer_timing() {
        // 12.5 MB at 100 Mbps takes 1 s; a 2-second outage in the middle
        // (no backup path) stalls the flow... with no route the flow dies,
        // so use a backup topology where the outage halves the rate.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let lat = SimDuration::from_micros(10);
        let fast = b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, h2, mbps(100.0), lat).unwrap();
        b.link(h1, r2, mbps(25.0), lat).unwrap();
        b.link(r2, h2, mbps(25.0), lat).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();
        // Outage of the fast path from t=0.5 s to t=1.5 s.
        sim.schedule_link_state(SimTime::from_millis(500), fast, false).unwrap();
        sim.schedule_link_state(SimTime::from_millis(1500), fast, true).unwrap();
        let f = sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
        sim.run_until_flows_complete(&[f]).unwrap();
        // 0.5 s at 100 (6.25 MB) + 1.0 s at 25 (3.125 MB) + remaining
        // 3.125 MB at 100 (0.25 s) = 1.75 s.
        assert!((sim.now().as_secs_f64() - 1.75).abs() < 1e-3, "{}", sim.now());
    }

    #[test]
    fn process_can_stop_its_own_flow() {
        struct OnOff {
            src: NodeId,
            dst: NodeId,
            active: Option<FlowHandle>,
            toggles: usize,
        }
        impl TrafficProcess for OnOff {
            fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
                match self.active.take() {
                    None => {
                        self.active =
                            Some(ctx.start_flow(FlowParams::cbr(self.src, self.dst, mbps(50.0))));
                    }
                    Some(h) => ctx.stop_flow(h),
                }
                self.toggles -= 1;
                (self.toggles > 0).then(|| now + SimDuration::from_secs(1))
            }
        }
        let (mut sim, h1, h2, _) = star();
        sim.add_process(
            SimTime::ZERO,
            Box::new(OnOff { src: h1, dst: h2, active: None, toggles: 4 }),
        );
        // on @0, off @1, on @2, off @3 => active for 2 of 4 seconds.
        sim.run_until(SimTime::from_secs(4)).unwrap();
        let link = sim.topology().neighbors(h1)[0].0;
        let octets = sim.iface_out_octets(h1, link);
        assert!((octets - 2.0 * 50e6 / 8.0).abs() < 10.0, "{octets}");
    }

    #[test]
    fn coalesced_link_transitions_rebuild_routing_once() {
        // Five spokes; the flow uses h0->h1. Three other spokes flap down
        // at the same instant: one routing rebuild, three logged
        // transitions, and the flow is untouched.
        let mut b = TopologyBuilder::new();
        let hs: Vec<NodeId> = (0..5).map(|i| b.compute(&format!("h{i}"))).collect();
        let r = b.network("r");
        let links: Vec<_> = hs
            .iter()
            .map(|&h| b.link(h, r, mbps(100.0), SimDuration::from_micros(10)).unwrap())
            .collect();
        let mut sim = Simulator::new(b.build().unwrap()).unwrap();
        let f = sim.start_flow(FlowParams::cbr(hs[0], hs[1], mbps(10.0))).unwrap();
        for &l in &links[2..] {
            sim.schedule_link_state(SimTime::from_secs(1), l, false).unwrap();
        }
        sim.run_until(SimTime::from_secs(2)).unwrap();
        assert_eq!(sim.routing_rebuilds(), 1);
        assert_eq!(sim.take_link_events().len(), 3);
        assert!(sim.flow_is_active(f));
    }

    #[test]
    fn simultaneous_down_up_keeps_flow_alive() {
        // h1's only link goes down *and* comes back up at the same
        // instant. The coalesced batch applies both flips before
        // re-pathing, so the flow never sees a routeless network; both
        // transitions still land in the event log, down first.
        let (mut sim, h1, h2, _) = star();
        let link = sim.topology().neighbors(h1)[0].0;
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        sim.schedule_link_state(SimTime::from_secs(1), link, true).unwrap();
        sim.schedule_link_state(SimTime::from_secs(1), link, false).unwrap();
        sim.run_until(SimTime::from_secs(2)).unwrap();
        assert!(sim.flow_is_active(f));
        let events = sim.take_link_events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].up);
        assert!(events[1].up);
        assert_eq!(sim.routing_rebuilds(), 1);
    }

    #[test]
    fn incremental_matches_full_rates_and_digest() {
        // The acceptance bar for the scoped solver: the same scenario —
        // arrivals, departures, completions, a mid-run link flap — must
        // produce bit-identical rate digests at every checkpoint and an
        // identical event digest at the end, in both solver modes.
        let run = |mode: SolverMode| {
            let (mut sim, h1, h2, h3) = star();
            sim.set_solver_mode(mode);
            sim.enable_audit();
            let link3 = sim.topology().neighbors(h3)[0].0;
            sim.start_flow(FlowParams::bulk(h1, h2, 12_500_000)).unwrap();
            sim.start_flow(FlowParams::bulk(h3, h2, 6_250_000)).unwrap();
            sim.start_flow(FlowParams::cbr(h2, h1, mbps(30.0))).unwrap();
            sim.schedule_link_state(SimTime::from_millis(400), link3, false).unwrap();
            sim.schedule_link_state(SimTime::from_millis(900), link3, true).unwrap();
            let mut digests = Vec::new();
            for ms in [100u64, 500, 1000, 2500] {
                sim.run_until(SimTime::from_millis(ms)).unwrap();
                digests.push(sim.rates_digest());
            }
            assert!(
                sim.audit_violations().is_empty(),
                "{mode:?}: {:?}",
                sim.audit_violations()
            );
            (digests, sim.event_digest())
        };
        assert_eq!(run(SolverMode::Full), run(SolverMode::Incremental));
    }

    #[test]
    fn batched_region_rates_match_per_link_sums() {
        // The batched read must be bit-identical to the per-link settled
        // sums (and those to the exclusive-access reads) over every
        // directed interface, with mixed flow kinds sharing links.
        let (mut sim, h1, h2, h3) = star();
        sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        sim.start_flow(FlowParams::cbr(h3, h2, mbps(30.0))).unwrap();
        sim.start_flow(FlowParams::greedy(h2, h1)).unwrap();
        sim.run_for(SimDuration::from_millis(100)).unwrap();
        sim.settle_rates();
        let n = sim.topology().dir_link_count();
        let region: Vec<u32> = (0..n as u32).collect();
        let mut batched = vec![1.0f64; n]; // poisoned: every slot must be rewritten
        sim.dirlink_rates_settled_into(&region, &mut batched);
        for (i, &b) in batched.iter().enumerate() {
            let d = DirLink::from_index(i);
            assert_eq!(b.to_bits(), sim.dirlink_rate_settled(d).to_bits(), "index {i}");
            assert_eq!(b.to_bits(), sim.dirlink_rate(d).to_bits(), "index {i}");
        }
        // A partial region only touches its own slots.
        let some: Vec<u32> = (0..n as u32).filter(|i| i % 2 == 0).collect();
        let mut partial = vec![-1.0f64; n];
        sim.dirlink_rates_settled_into(&some, &mut partial);
        for i in 0..n {
            if i % 2 == 0 {
                assert_eq!(partial[i].to_bits(), batched[i].to_bits(), "index {i}");
            } else {
                assert_eq!(partial[i], -1.0, "index {i} written outside region");
            }
        }
    }

    #[test]
    fn solver_mode_selects_recompute_path() {
        let (mut sim, h1, h2, _) = star();
        assert_eq!(sim.solver_mode(), SolverMode::Incremental);
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        let _ = sim.flow_rate(f).unwrap();
        assert!(sim.scoped_recomputes() > 0);
        assert_eq!(sim.full_recomputes(), 0);

        sim.set_solver_mode(SolverMode::Full);
        let f2 = sim.start_flow(FlowParams::cbr(h2, h1, mbps(10.0))).unwrap();
        let _ = sim.flow_rate(f2).unwrap();
        assert!(sim.full_recomputes() > 0);
    }

    #[test]
    fn unaffected_flap_skips_rate_recomputation() {
        // A flap on a link no flow crosses rebuilds routing but leaves
        // every path unchanged, so the rates never go dirty and the
        // solver is not re-run at all.
        let (mut sim, h1, h2, h3) = star();
        let f = sim.start_flow(FlowParams::cbr(h1, h2, mbps(10.0))).unwrap();
        let _ = sim.flow_rate(f).unwrap(); // settle the initial recompute
        let before = sim.scoped_recomputes();
        let l3 = sim.topology().neighbors(h3)[0].0;
        sim.set_link_state(l3, false).unwrap();
        let _ = sim.flow_rate(f).unwrap();
        assert_eq!(sim.scoped_recomputes(), before);
        assert_eq!(sim.routing_rebuilds(), 1);
    }
}
