//! Error type for the network simulator.

use crate::topology::{LinkId, NodeId};
use std::fmt;

/// Errors raised by topology construction, routing, and the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A node id does not exist in the topology.
    UnknownNode(NodeId),
    /// A link id does not exist in the topology.
    UnknownLink(LinkId),
    /// A node name was not found.
    UnknownName(String),
    /// Two nodes have no path between them.
    NoRoute { src: NodeId, dst: NodeId },
    /// A flow endpoint is not a compute node (only hosts send/receive, §4.3).
    NotComputeNode(NodeId),
    /// A flow handle refers to a flow that is not active.
    UnknownFlow(u64),
    /// Invalid parameter (negative capacity, zero weight, ...).
    Invalid(String),
    /// Duplicate node name in a builder.
    DuplicateName(String),
    /// The simulation cannot make progress (e.g. waiting on flows that
    /// receive zero bandwidth with no scheduled event to change that).
    Stalled,
    /// An internal invariant was broken (corrupt routing table, ...).
    /// Reaching this is a bug; it is surfaced as an error rather than a
    /// panic so callers degrade instead of aborting.
    Internal(String),
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NetError>;

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            NetError::UnknownLink(l) => write!(f, "unknown link {l:?}"),
            NetError::UnknownName(s) => write!(f, "unknown node name {s:?}"),
            NetError::NoRoute { src, dst } => {
                write!(f, "no route from {src:?} to {dst:?}")
            }
            NetError::NotComputeNode(n) => {
                write!(f, "node {n:?} is a network node; only compute nodes send or receive")
            }
            NetError::UnknownFlow(id) => write!(f, "flow {id} is not active"),
            NetError::Invalid(msg) => write!(f, "invalid parameter: {msg}"),
            NetError::DuplicateName(s) => write!(f, "duplicate node name {s:?}"),
            NetError::Stalled => write!(f, "simulation stalled: no event can make progress"),
            NetError::Internal(msg) => write!(f, "internal invariant broken: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}
