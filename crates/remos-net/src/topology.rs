//! Network topology: compute nodes, network nodes, and duplex links.
//!
//! Mirrors the paper's model (§2, §4.3): a networked system consists of
//! compute nodes (hosts), network nodes (routers and switches), and
//! communication links. Applications run only on compute nodes; network
//! nodes only forward. Links are full-duplex point-to-point (the testbed
//! uses 100 Mbps and 10 Mbps point-to-point Ethernet segments), so each
//! physical link contributes two independent capacity resources, one per
//! direction. A network node may additionally carry an *internal bandwidth*
//! cap (Fig 1: "if nodes A and B have internal bandwidths of 10 Mbps, then
//! these two network nodes are the bottleneck").

use crate::error::{NetError, Result};
use crate::time::SimDuration;
use crate::units::Bps;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a node within one [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a duplex link within one [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl NodeId {
    /// Index into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Index into per-link vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is (the paper's host/switch distinction).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// A host: runs applications, sends and receives messages.
    Compute,
    /// A router or switch: forwards only.
    Network,
}

/// Traffic direction over a duplex link, relative to its endpoint order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// From endpoint `a` to endpoint `b`.
    AtoB,
    /// From endpoint `b` to endpoint `a`.
    BtoA,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::AtoB => Direction::BtoA,
            Direction::BtoA => Direction::AtoB,
        }
    }

    /// 0 for `AtoB`, 1 for `BtoA`; used to index per-direction arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::AtoB => 0,
            Direction::BtoA => 1,
        }
    }
}

/// One directed half of a duplex link — the unit of capacity in the
/// simulator and the unit reported by SNMP interface counters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DirLink {
    /// The underlying duplex link.
    pub link: LinkId,
    /// Which direction of it.
    pub dir: Direction,
}

impl DirLink {
    /// Dense index: `2 * link + dir`, for indexing per-direction tables.
    #[inline]
    pub fn index(self) -> usize {
        self.link.index() * 2 + self.dir.index()
    }

    /// Inverse of [`DirLink::index`].
    #[inline]
    pub fn from_index(i: usize) -> DirLink {
        DirLink {
            link: LinkId((i / 2) as u32),
            dir: if i.is_multiple_of(2) { Direction::AtoB } else { Direction::BtoA },
        }
    }
}

/// Node attributes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable unique name (e.g. `"m-4"`, `"timberline"`).
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
    /// Internal (backplane) bandwidth cap for network nodes, in bits/s.
    /// `None` means the node never limits aggregate throughput.
    pub internal_bw: Option<Bps>,
    /// Relative compute speed in floating-point operations per second.
    /// Only meaningful for compute nodes; used by the Fx runtime substrate.
    pub compute_flops: f64,
    /// Physical memory in bytes (the paper notes Remos includes a simple
    /// interface to computation and memory resources, §2).
    pub memory_bytes: u64,
}

/// Duplex link attributes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity of each direction, in bits/s.
    pub capacity: Bps,
    /// One-way propagation/forwarding latency.
    pub latency: SimDuration,
}

impl Link {
    /// The endpoint a packet leaves from when travelling in `dir`.
    #[inline]
    pub fn tail(&self, dir: Direction) -> NodeId {
        match dir {
            Direction::AtoB => self.a,
            Direction::BtoA => self.b,
        }
    }

    /// The endpoint a packet arrives at when travelling in `dir`.
    #[inline]
    pub fn head(&self, dir: Direction) -> NodeId {
        match dir {
            Direction::AtoB => self.b,
            Direction::BtoA => self.a,
        }
    }

    /// Given one endpoint, return the other. Panics if `n` is not an endpoint.
    #[inline]
    pub fn opposite(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b, "node not an endpoint of this link");
            self.a
        }
    }

    /// Direction of travel when leaving `from` over this link.
    #[inline]
    pub fn direction_from(&self, from: NodeId) -> Direction {
        if from == self.a {
            Direction::AtoB
        } else {
            debug_assert_eq!(from, self.b, "node not an endpoint of this link");
            Direction::BtoA
        }
    }
}

/// An immutable network topology.
///
/// Construct with [`TopologyBuilder`]. All simulator state (routing, flows,
/// counters) is derived from this structure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// CSR adjacency offsets, length `node_count + 1`: node `n`'s incident
    /// `(link, neighbor)` pairs live at `adj[adj_off[n]..adj_off[n+1]]`.
    adj_off: Vec<u32>,
    /// Concatenated `(link, neighbor)` pairs for all nodes, in link order
    /// within each node (one flat arena instead of a boxed list per node).
    adj: Vec<(LinkId, NodeId)>,
    names: BTreeMap<String, NodeId>,
}

impl Topology {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of duplex links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of directed interfaces (`2 * link_count`).
    #[inline]
    pub fn dir_link_count(&self) -> usize {
        self.links.len() * 2
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Node attributes. Panics on an id from another topology.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link attributes. Panics on an id from another topology.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Checked node lookup.
    pub fn try_node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    /// Checked link lookup.
    pub fn try_link(&self, id: LinkId) -> Result<&Link> {
        self.links.get(id.index()).ok_or(NetError::UnknownLink(id))
    }

    /// Resolve a node by name.
    pub fn lookup(&self, name: &str) -> Result<NodeId> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| NetError::UnknownName(name.to_string()))
    }

    /// `(link, neighbor)` pairs incident to `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(LinkId, NodeId)] {
        let i = n.index();
        &self.adj[self.adj_off[i] as usize..self.adj_off[i + 1] as usize]
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        let i = n.index();
        (self.adj_off[i + 1] - self.adj_off[i]) as usize
    }

    /// All compute-node ids, in id order.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node(n).kind == NodeKind::Compute)
            .collect()
    }

    /// All network-node ids, in id order.
    pub fn network_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node(n).kind == NodeKind::Network)
            .collect()
    }

    /// Per-direction link capacities indexed by [`DirLink::index`]: entry
    /// `2*l + d` is the capacity of link `l` in direction `d`. This is the
    /// leading, stable prefix of the simulator's resource vector — indices
    /// never move while the topology is alive, which is what lets the
    /// incremental solver key dirty-tracking on resource indices.
    pub fn dir_link_capacities(&self) -> Vec<Bps> {
        let mut caps = Vec::with_capacity(self.dir_link_count());
        for l in &self.links {
            caps.push(l.capacity); // AtoB
            caps.push(l.capacity); // BtoA
        }
        caps
    }

    /// Network nodes with a capped backplane, in node-id order, paired
    /// with the cap. The simulator appends one capacity resource per entry
    /// after the dir-link prefix, in exactly this order, so backplane
    /// resource indices are stable for the lifetime of the topology too.
    pub fn capped_network_nodes(&self) -> impl Iterator<Item = (NodeId, Bps)> + '_ {
        self.node_ids().filter_map(|n| {
            let node = self.node(n);
            match (node.kind, node.internal_bw) {
                (NodeKind::Network, Some(bw)) => Some((n, bw)),
                _ => None,
            }
        })
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(_, next) in self.neighbors(n) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == self.nodes.len()
    }
}

/// Incremental constructor for [`Topology`].
///
/// ```
/// use remos_net::{TopologyBuilder, NodeKind, mbps, SimDuration};
///
/// let mut b = TopologyBuilder::new();
/// let h1 = b.compute("h1");
/// let h2 = b.compute("h2");
/// let sw = b.network("sw");
/// b.link(h1, sw, mbps(100.0), SimDuration::from_micros(50)).unwrap();
/// b.link(h2, sw, mbps(100.0), SimDuration::from_micros(50)).unwrap();
/// let topo = b.build().unwrap();
/// assert_eq!(topo.node_count(), 3);
/// assert!(topo.is_connected());
/// ```
#[derive(Default, Debug)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    names: BTreeMap<String, NodeId>,
    errors: Vec<NetError>,
}

/// Default host speed: 50 Mflop/s, calibrated so that the FFT and Airshed
/// models land near the paper's 1998-era DEC Alpha execution times.
pub const DEFAULT_COMPUTE_FLOPS: f64 = 50e6;

/// Default host memory: 256 MiB, typical for the paper's era.
pub const DEFAULT_MEMORY_BYTES: u64 = 256 * 1024 * 1024;

impl TopologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if self.names.insert(name.to_string(), id).is_some() {
            self.errors.push(NetError::DuplicateName(name.to_string()));
        }
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            internal_bw: None,
            compute_flops: DEFAULT_COMPUTE_FLOPS,
            memory_bytes: DEFAULT_MEMORY_BYTES,
        });
        id
    }

    /// Add a compute node (host) with default resources.
    pub fn compute(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Compute)
    }

    /// Add a compute node with an explicit speed (flops/s).
    pub fn compute_with_speed(&mut self, name: &str, flops: f64) -> NodeId {
        let id = self.add_node(name, NodeKind::Compute);
        self.nodes[id.index()].compute_flops = flops;
        id
    }

    /// Add a network node (router/switch).
    pub fn network(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Network)
    }

    /// Add a network node whose backplane caps aggregate throughput
    /// (Fig 1's "internal bandwidth").
    pub fn network_with_internal_bw(&mut self, name: &str, internal_bw: Bps) -> NodeId {
        let id = self.add_node(name, NodeKind::Network);
        self.nodes[id.index()].internal_bw = Some(internal_bw);
        id
    }

    /// Add a full-duplex link. `capacity` applies per direction.
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bps,
        latency: SimDuration,
    ) -> Result<LinkId> {
        if a.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(a));
        }
        if b.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(b));
        }
        if a == b {
            return Err(NetError::Invalid("self-loop link".into()));
        }
        if capacity <= 0.0 || !capacity.is_finite() {
            return Err(NetError::Invalid(format!("link capacity {capacity}")));
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a, b, capacity, latency });
        Ok(id)
    }

    /// Finish, validating names and building adjacency.
    pub fn build(self) -> Result<Topology> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        // Two-pass CSR build: count degrees, prefix-sum, scatter in link
        // order (matching the per-node push order of the old boxed lists).
        let n = self.nodes.len();
        let mut adj_off = vec![0u32; n + 1];
        for l in &self.links {
            adj_off[l.a.index() + 1] += 1;
            adj_off[l.b.index() + 1] += 1;
        }
        for i in 0..n {
            adj_off[i + 1] += adj_off[i];
        }
        let mut cur: Vec<u32> = adj_off[..n].to_vec();
        let mut adj = vec![(LinkId(0), NodeId(0)); self.links.len() * 2];
        for (i, l) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            adj[cur[l.a.index()] as usize] = (id, l.b);
            cur[l.a.index()] += 1;
            adj[cur[l.b.index()] as usize] = (id, l.a);
            cur[l.b.index()] += 1;
        }
        Ok(Topology { nodes: self.nodes, links: self.links, adj_off, adj, names: self.names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::mbps;

    fn star3() -> Topology {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let sw = b.network("sw");
        for h in [h1, h2, h3] {
            b.link(h, sw, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_constructs_star() {
        let t = star3();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.dir_link_count(), 6);
        assert_eq!(t.compute_nodes().len(), 3);
        assert_eq!(t.network_nodes().len(), 1);
        assert!(t.is_connected());
        let sw = t.lookup("sw").unwrap();
        assert_eq!(t.degree(sw), 3);
    }

    #[test]
    fn name_lookup() {
        let t = star3();
        assert_eq!(t.lookup("h2").unwrap(), NodeId(1));
        assert!(matches!(t.lookup("nope"), Err(NetError::UnknownName(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new();
        b.compute("x");
        b.compute("x");
        assert!(matches!(b.build(), Err(NetError::DuplicateName(_))));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new();
        let h = b.compute("h");
        assert!(b.link(h, h, mbps(10.0), SimDuration::ZERO).is_err());
    }

    #[test]
    fn bad_capacity_rejected() {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        assert!(b.link(h1, h2, 0.0, SimDuration::ZERO).is_err());
        assert!(b.link(h1, h2, -5.0, SimDuration::ZERO).is_err());
        assert!(b.link(h1, h2, f64::NAN, SimDuration::ZERO).is_err());
    }

    #[test]
    fn link_endpoint_helpers() {
        let t = star3();
        let l = t.link(LinkId(0));
        assert_eq!(l.tail(Direction::AtoB), l.a);
        assert_eq!(l.head(Direction::AtoB), l.b);
        assert_eq!(l.opposite(l.a), l.b);
        assert_eq!(l.direction_from(l.b), Direction::BtoA);
        assert_eq!(l.direction_from(l.a).reverse(), Direction::BtoA);
    }

    #[test]
    fn dirlink_index_roundtrip() {
        for i in 0..10 {
            assert_eq!(DirLink::from_index(i).index(), i);
        }
    }

    #[test]
    fn disconnected_detected() {
        let mut b = TopologyBuilder::new();
        b.compute("a");
        b.compute("b");
        let t = b.build().unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn internal_bw_recorded() {
        let mut b = TopologyBuilder::new();
        let sw = b.network_with_internal_bw("sw", mbps(10.0));
        let t = {
            let h = b.compute("h");
            b.link(h, sw, mbps(100.0), SimDuration::ZERO).unwrap();
            b.build().unwrap()
        };
        assert_eq!(t.node(sw).internal_bw, Some(mbps(10.0)));
    }
}
