//! Flow descriptors and lifecycle records.
//!
//! A *flow* is an application-level connection between a pair of compute
//! nodes (§4.2). The engine supports three demand shapes, which together
//! cover the paper's spectrum from fixed-rate audio to unconstrained bulk
//! transfers:
//!
//! * **bounded volume** — a bulk transfer of `volume` bytes that completes
//!   and disappears (the unit of the Fx runtime's synchronous phases);
//! * **persistent greedy** — runs until stopped, absorbing its max-min
//!   share (the paper's *independent* flows, TCP-like background load);
//! * **rate-capped** — either of the above additionally limited to
//!   `rate_cap` bits/s (the paper's *fixed* flows, CBR sources).

use crate::time::SimTime;
use crate::topology::NodeId;
use crate::units::Bps;
use serde::{Deserialize, Serialize};

/// Application-defined classification label carried by a flow.
///
/// The engine does not interpret tags; they let experiments separate
/// application traffic from background traffic when reading utilization —
/// which is exactly what plain Remos *cannot* do ("Remos does not
/// distinguish between different types or sources of traffic", §8.3), so
/// tags are only used by tests, oracles, and the self-traffic ablation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FlowTag(pub u32);

impl FlowTag {
    /// Default tag for application traffic.
    pub const APP: FlowTag = FlowTag(0);
    /// Tag for synthetic background traffic.
    pub const BACKGROUND: FlowTag = FlowTag(1);
    /// Tag for collector probe traffic.
    pub const PROBE: FlowTag = FlowTag(2);
}

impl Default for FlowTag {
    fn default() -> Self {
        FlowTag::APP
    }
}

/// Parameters for starting a flow.
#[derive(Clone, Debug)]
pub struct FlowParams {
    /// Sending compute node.
    pub src: NodeId,
    /// Receiving compute node.
    pub dst: NodeId,
    /// Max-min weight (> 0); see [`crate::maxmin`].
    pub weight: f64,
    /// Optional rate cap in bits/s.
    pub rate_cap: Option<Bps>,
    /// Bytes to transfer; `None` = persistent until stopped.
    pub volume: Option<u64>,
    /// Classification label.
    pub tag: FlowTag,
}

impl FlowParams {
    /// A bulk transfer of `volume` bytes with no rate cap.
    pub fn bulk(src: NodeId, dst: NodeId, volume: u64) -> Self {
        FlowParams { src, dst, weight: 1.0, rate_cap: None, volume: Some(volume), tag: FlowTag::APP }
    }

    /// A persistent greedy flow (runs until stopped).
    pub fn greedy(src: NodeId, dst: NodeId) -> Self {
        FlowParams { src, dst, weight: 1.0, rate_cap: None, volume: None, tag: FlowTag::APP }
    }

    /// A persistent constant-bit-rate flow.
    pub fn cbr(src: NodeId, dst: NodeId, rate: Bps) -> Self {
        FlowParams { src, dst, weight: 1.0, rate_cap: Some(rate), volume: None, tag: FlowTag::APP }
    }

    /// Builder-style tag override.
    pub fn with_tag(mut self, tag: FlowTag) -> Self {
        self.tag = tag;
        self
    }

    /// Builder-style weight override.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Builder-style rate-cap override.
    pub fn with_rate_cap(mut self, cap: Bps) -> Self {
        self.rate_cap = Some(cap);
        self
    }
}

/// Final record of a finished (completed or stopped) flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowRecord {
    /// Engine-assigned id.
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Classification label.
    pub tag: FlowTag,
    /// When the flow started.
    pub started: SimTime,
    /// When it completed or was stopped.
    pub finished: SimTime,
    /// Bytes actually delivered.
    pub bytes: f64,
    /// True if a bounded flow delivered its whole volume.
    pub completed: bool,
}

impl FlowRecord {
    /// Mean throughput over the flow's lifetime, bits/s.
    pub fn mean_rate(&self) -> Bps {
        let secs = self.finished.since(self.started).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes * 8.0 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = NodeId(0);
        let b = NodeId(1);
        let f = FlowParams::bulk(a, b, 1000);
        assert_eq!(f.volume, Some(1000));
        assert!(f.rate_cap.is_none());
        let g = FlowParams::greedy(a, b).with_weight(2.0).with_tag(FlowTag::BACKGROUND);
        assert_eq!(g.weight, 2.0);
        assert_eq!(g.tag, FlowTag::BACKGROUND);
        assert!(g.volume.is_none());
        let c = FlowParams::cbr(a, b, 1e6);
        assert_eq!(c.rate_cap, Some(1e6));
    }

    #[test]
    fn record_mean_rate() {
        let rec = FlowRecord {
            id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            tag: FlowTag::APP,
            started: SimTime::from_secs(1),
            finished: SimTime::from_secs(3),
            bytes: 1_000_000.0,
            completed: true,
        };
        assert!((rec.mean_rate() - 4e6).abs() < 1.0);
    }
}
