//! Order-sensitive event-log digests for determinism checks.
//!
//! Two simulation runs with the same topology, seeds, and schedules must
//! produce byte-identical event sequences; [`EventDigest`] folds every
//! event into a 64-bit FNV-1a hash so a test can compare whole runs with
//! one equality check and CI can print a single hex fingerprint per
//! scenario (see `docs/DETERMINISM.md`).
//!
//! FNV-1a is used because it is tiny, dependency-free, and — unlike
//! `DefaultHasher` — explicitly stable across Rust releases, platforms,
//! and processes. It is *not* collision-resistant; this is a regression
//! tripwire, not an integrity mechanism.

use crate::engine::LinkEvent;
use crate::flow::FlowRecord;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental, order-sensitive 64-bit event-log digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventDigest(u64);

impl Default for EventDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl EventDigest {
    /// A fresh digest (FNV-1a offset basis).
    pub fn new() -> EventDigest {
        EventDigest(FNV_OFFSET)
    }

    /// Current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Fold raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold an `f64` by bit pattern — exact, not approximate, so even a
    /// 1-ulp drift between runs changes the digest.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Fold a flow-start event.
    pub fn record_start(&mut self, id: u64, src: u32, dst: u32, at_nanos: u64) {
        self.write_u64(0x01);
        self.write_u64(id);
        self.write_u64(u64::from(src));
        self.write_u64(u64::from(dst));
        self.write_u64(at_nanos);
    }

    /// Fold a flow-finish record (completion, stop, or kill).
    pub fn record_finish(&mut self, rec: &FlowRecord) {
        self.write_u64(0x02);
        self.write_u64(rec.id);
        self.write_u64(u64::from(rec.src.0));
        self.write_u64(u64::from(rec.dst.0));
        self.write_u64(rec.started.as_nanos());
        self.write_u64(rec.finished.as_nanos());
        self.write_f64(rec.bytes);
        self.write_u64(u64::from(rec.completed));
    }

    /// Fold a link state transition.
    pub fn record_link(&mut self, ev: &LinkEvent) {
        self.write_u64(0x03);
        self.write_u64(ev.t.as_nanos());
        self.write_u64(u64::from(ev.link.0));
        self.write_u64(u64::from(ev.up));
    }

    /// Fold one flow's bit-exact allocated rate. Used by the engine's
    /// mode-agnostic allocation digest: hashing `(id, rate)` pairs in id
    /// order lets the equivalence tests compare the full and incremental
    /// solvers' outputs with a single value per instant.
    pub fn record_rate(&mut self, id: u64, rate: f64) {
        self.write_u64(0x04);
        self.write_u64(id);
        self.write_f64(rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digests_are_equal() {
        assert_eq!(EventDigest::new(), EventDigest::new());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of "a" is a published test vector.
        let mut d = EventDigest::new();
        d.write_bytes(b"a");
        assert_eq!(d.value(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_sensitive() {
        let mut a = EventDigest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = EventDigest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a, b);
    }

    #[test]
    fn f64_bit_exact() {
        let mut a = EventDigest::new();
        a.write_f64(0.1 + 0.2);
        let mut b = EventDigest::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 in binary64; the digest must see the difference.
        assert_ne!(a, b);
        // Negative zero and zero differ by bit pattern, deliberately.
        let mut c = EventDigest::new();
        c.write_f64(0.0);
        let mut d = EventDigest::new();
        d.write_f64(-0.0);
        assert_ne!(c, d);
    }
}
