//! Batch what-if engine: fluid max-min flow-completion-time estimation.
//!
//! The query side of the stack answers "what is the network doing now?";
//! this module answers the admission/placement question network-aware
//! applications ask before acting: *what would happen if I launched these
//! flows?* Given hypothetical flows `(size_bytes, arrival, src, dst)`,
//! [`WhatIfEngine::estimate`] replays a fluid max-min schedule against a
//! frozen topology snapshot — a discrete event loop over arrivals and
//! completions in which every step re-solves only the affected components
//! through the incremental [`maxmin::Solver`] on a scratch flow arena,
//! never touching live engine state.
//!
//! The replay is **bit-identical** to running the same flow set through a
//! full [`Simulator`] (the ground truth [`replay_ground_truth`] builds):
//! rates come from the same solver, ETAs are re-derived only when a rate
//! changes bitwise, remaining bytes integrate in the same order with the
//! same arithmetic, and completions use the same `eta <= now ||
//! remaining <= 1e-6` rule scanned in id order. What the kernel *omits*
//! is everything an estimate does not need: per-interface octet counters,
//! SNMP-visible state, traffic processes, link schedules, and completion
//! watches — which is where its speedup over the ground-truth replay
//! comes from. The [`fct_digest`](WhatIfReport::fct_digest) (FNV-1a over
//! per-flow start/finish nanos in input order) is the machine-independent
//! proof of that equivalence, gated by `BENCH_whatif.json` and the
//! `whatif_equivalence` proptests.

use crate::digest::EventDigest;
use crate::engine::{ProcessCtx, Simulator, SolverMode, TrafficProcess};
use crate::error::{NetError, Result};
use crate::flow::FlowParams;
use crate::maxmin::{self, FlowSpec};
use crate::routing::{Path, Routing};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::units::Bps;
use std::sync::Arc;

/// One hypothetical flow: a bulk transfer of `size_bytes` from `src` to
/// `dst`, arriving at `arrival`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WhatIfFlow {
    /// Sending host (must be a compute node).
    pub src: NodeId,
    /// Receiving host (must be a compute node, distinct from `src`).
    pub dst: NodeId,
    /// Transfer volume in bytes.
    pub size_bytes: u64,
    /// Arrival instant on the replay clock.
    pub arrival: SimTime,
}

/// Estimated fate of one hypothetical flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowEstimate {
    /// When the flow started (its arrival instant).
    pub started: SimTime,
    /// When it finished — or the horizon, if it was cut off.
    pub finished: SimTime,
    /// False when the replay horizon expired before completion.
    pub completed: bool,
    /// FCT divided by the ideal FCT (the transfer alone on its path,
    /// running at the path's bottleneck capacity). `1.0` means the flow
    /// never shared its bottleneck.
    pub slowdown: f64,
    /// Resource index (directed interface, or a capped backplane past the
    /// dir-link prefix) with the least effective capacity on the path.
    pub bottleneck: usize,
    /// Effective capacity of that bottleneck resource, bits/s.
    pub bottleneck_capacity: Bps,
}

impl FlowEstimate {
    /// Flow completion time.
    pub fn fct(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }
}

/// The answer to a what-if batch: per-flow estimates in **input order**
/// plus replay statistics and the determinism digest.
#[derive(Clone, Debug)]
pub struct WhatIfReport {
    /// One estimate per input flow, in input order.
    pub estimates: Vec<FlowEstimate>,
    /// FNV-1a digest over `(index, src, dst, size, started, finished,
    /// completed)` per flow in input order. Two replays of the same flow
    /// set over the same snapshot must agree bit-for-bit — including a
    /// ground-truth [`Simulator`] replay in either [`SolverMode`].
    pub fct_digest: u64,
    /// Discrete event-loop iterations the replay took.
    pub replay_steps: u64,
    /// Rate recomputations (scoped or full) the replay performed.
    pub solves: u64,
}

/// Resource-vector layout shared with the engine: the dir-link prefix
/// (indexed by `DirLink::index`), then one entry per capped backplane in
/// node-id order. `backplane[node]` maps to the resource index or
/// `usize::MAX`.
fn resource_layout(topo: &Topology) -> (Vec<f64>, Vec<usize>) {
    let mut capacities = topo.dir_link_capacities();
    let mut backplane = vec![usize::MAX; topo.node_count()];
    for (n, bw) in topo.capped_network_nodes() {
        backplane[n.index()] = capacities.len();
        capacities.push(bw);
    }
    (capacities, backplane)
}

/// Collect the resource indices a routed path loads (mirror of the
/// engine's layout: dir-links, then capped backplanes of interior nodes).
fn resources_into(backplane: &[usize], path: &Path, out: &mut Vec<usize>) {
    out.clear();
    out.extend(path.dirlink_indices());
    for n in path.interior_nodes() {
        let b = backplane[n.index()];
        if b != usize::MAX {
            out.push(b);
        }
    }
}

/// Install a solved rate; the ETA is re-derived **only when the rate
/// changed bitwise** — the rule that keeps completion timestamps
/// identical between solver modes and between this kernel and the engine.
fn apply_rate(f: &mut ScratchFlow, rate: f64, now: SimTime) {
    if rate.to_bits() == f.rate.to_bits() {
        return;
    }
    f.rate = rate;
    f.eta = if f.remaining.is_finite() && f.rate > 0.0 {
        now + SimDuration::from_secs_f64(f.remaining * 8.0 / f.rate)
    } else {
        SimTime::MAX
    };
}

/// Insert flow `(id, slot)` into each resource's membership list (sorted
/// by id, deduped).
fn members_insert(members: &mut [Vec<(u64, u32)>], id: u64, slot: u32, resources: &[usize]) {
    for &r in resources {
        let v = &mut members[r];
        if let Err(pos) = v.binary_search_by_key(&id, |e| e.0) {
            v.insert(pos, (id, slot));
        }
    }
}

/// Remove `id` from each resource's membership list.
fn members_remove(members: &mut [Vec<(u64, u32)>], id: u64, resources: &[usize]) {
    for &r in resources {
        let v = &mut members[r];
        if let Ok(pos) = v.binary_search_by_key(&id, |e| e.0) {
            v.remove(pos);
        }
    }
}

/// Per-flow scratch state in the replay arena. Slot index == replay id.
#[derive(Clone)]
struct ScratchFlow {
    resources: Vec<usize>,
    path: Path,
    /// Replay id (arrival rank), assigned when the flow starts.
    id: u64,
    rate: f64,
    remaining: f64,
    started: SimTime,
    eta: SimTime,
}

impl ScratchFlow {
    fn vacant() -> ScratchFlow {
        ScratchFlow {
            resources: Vec::new(),
            path: Path { src: NodeId(0), dst: NodeId(0), hops: Vec::new(), nodes: Vec::new() },
            id: 0,
            rate: 0.0,
            remaining: 0.0,
            started: SimTime::ZERO,
            eta: SimTime::MAX,
        }
    }
}

/// The reusable what-if replay kernel over one frozen topology snapshot.
///
/// Construction routes nothing; paths are resolved per flow from the
/// shared [`Routing`] (all-pairs product, typically the modeler's cached
/// plan). All per-run state lives in arenas that are reused across
/// [`estimate`](WhatIfEngine::estimate) calls, so batch callers pay the
/// allocation cost once.
pub struct WhatIfEngine {
    topo: Arc<Topology>,
    routing: Arc<Routing>,
    mode: SolverMode,
    /// Raw snapshot capacities (dir-links + capped backplanes).
    base_capacities: Vec<f64>,
    /// Effective capacities for the current run (base minus background).
    capacities: Vec<f64>,
    backplane: Vec<usize>,
    // --- per-run arenas, reused across estimates ---
    flows: Vec<ScratchFlow>,
    /// Active replay ids, ascending (ids are assigned in arrival order,
    /// so starts push and completions binary-search-remove).
    order: Vec<u32>,
    members: Vec<Vec<(u64, u32)>>,
    residual: Vec<f64>,
    solver: maxmin::Solver,
    // Dirty tracking (generation-marked, mirror of the engine's).
    dirty: bool,
    dirty_marks: Vec<u64>,
    dirty_gen: u64,
    dirty_list: Vec<usize>,
    // Scoped-solve scratch.
    res_seen: Vec<bool>,
    flow_seen: Vec<bool>,
    comp_res: Vec<usize>,
    comp: Vec<(u64, u32)>,
    subs: Vec<(u64, u32)>,
    sub_ends: Vec<usize>,
    fstack: Vec<u32>,
    due: Vec<u64>,
    /// Input indices sorted by `(arrival, input index)` — the replay id
    /// assignment order.
    sorted: Vec<u32>,
}

impl WhatIfEngine {
    /// Build a kernel over a topology snapshot and its all-pairs routing.
    pub fn new(topo: Arc<Topology>, routing: Arc<Routing>) -> WhatIfEngine {
        let (capacities, backplane) = resource_layout(&topo);
        let n_res = capacities.len();
        WhatIfEngine {
            topo,
            routing,
            mode: SolverMode::default(),
            base_capacities: capacities.clone(),
            capacities,
            backplane,
            flows: Vec::new(),
            order: Vec::new(),
            members: (0..n_res).map(|_| Vec::with_capacity(16)).collect(),
            residual: Vec::new(),
            solver: maxmin::Solver::new(),
            dirty: false,
            dirty_marks: vec![0; n_res],
            dirty_gen: 1,
            dirty_list: Vec::new(),
            res_seen: vec![false; n_res],
            flow_seen: Vec::new(),
            comp_res: Vec::new(),
            comp: Vec::new(),
            subs: Vec::new(),
            sub_ends: Vec::new(),
            fstack: Vec::new(),
            due: Vec::new(),
            sorted: Vec::new(),
        }
    }

    /// Build a kernel from a bare topology, routing it internally.
    pub fn from_topology(topo: Topology) -> WhatIfEngine {
        let routing = Routing::new(&topo);
        WhatIfEngine::new(Arc::new(topo), Arc::new(routing))
    }

    /// Select the rate-recomputation strategy (both are bit-identical;
    /// `Incremental` is the fast path).
    pub fn set_mode(&mut self, mode: SolverMode) {
        self.mode = mode;
    }

    /// The active rate-recomputation strategy.
    pub fn mode(&self) -> SolverMode {
        self.mode
    }

    /// The frozen topology the kernel replays against.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Estimate completion times for a batch of hypothetical flows on the
    /// idle snapshot (no background load, no horizon).
    pub fn estimate(&mut self, flows: &[WhatIfFlow]) -> Result<WhatIfReport> {
        self.estimate_with(flows, None, None)
    }

    /// Estimate with options: `background` is per-directed-interface
    /// utilization (bits/s, indexed by `DirLink::index`) subtracted from
    /// the snapshot's link capacities (clamped at zero); `horizon` cuts
    /// the replay off at an absolute instant, reporting still-running
    /// flows with `completed = false`.
    ///
    /// Errors on an unroutable or degenerate flow, and with
    /// [`NetError::Stalled`] when zero-capacity resources starve a flow
    /// forever and no horizon bounds the replay.
    pub fn estimate_with(
        &mut self,
        flows: &[WhatIfFlow],
        background: Option<&[Bps]>,
        horizon: Option<SimTime>,
    ) -> Result<WhatIfReport> {
        assert!(flows.len() <= u32::MAX as usize, "what-if batch too large");
        // Effective capacities for this run.
        let n_dir = self.topo.dir_link_count();
        self.capacities.clear();
        self.capacities.extend_from_slice(&self.base_capacities);
        if let Some(util) = background {
            for (i, c) in self.capacities.iter_mut().enumerate().take(n_dir) {
                let u = util.get(i).copied().unwrap_or(0.0);
                *c = (*c - u).max(0.0);
            }
        }

        // Validate and route every flow up front, and pre-compute its
        // path bottleneck on the effective capacities.
        self.flows.resize_with(flows.len(), ScratchFlow::vacant);
        let mut bottleneck = Vec::with_capacity(flows.len());
        for (i, w) in flows.iter().enumerate() {
            if w.src == w.dst {
                return Err(NetError::Invalid(format!("what-if flow {i}: src == dst")));
            }
            let f = &mut self.flows[i];
            self.routing.path_into(&self.topo, w.src, w.dst, &mut f.path)?;
            resources_into(&self.backplane, &f.path, &mut f.resources);
            let (mut bn, mut bn_cap) = (usize::MAX, f64::INFINITY);
            for &r in &f.resources {
                if self.capacities[r] < bn_cap {
                    bn_cap = self.capacities[r];
                    bn = r;
                }
            }
            bottleneck.push((bn, bn_cap));
            f.rate = 0.0;
            f.remaining = w.size_bytes as f64;
            f.started = w.arrival;
            f.eta = SimTime::MAX;
        }

        // Replay ids follow (arrival, input index) order — exactly the
        // order a ground-truth arrival process starts them in.
        self.sorted.clear();
        self.sorted.extend(0..flows.len() as u32);
        let arrivals = flows;
        self.sorted.sort_by_key(|&i| (arrivals[i as usize].arrival, i));

        // Reset the arenas.
        self.order.clear();
        for m in &mut self.members {
            m.clear();
        }
        self.residual.clear();
        self.residual.extend_from_slice(&self.capacities);
        self.dirty = false;
        self.dirty_gen += 1;
        self.dirty_list.clear();
        if self.flow_seen.len() < flows.len() {
            self.flow_seen.resize(flows.len(), false);
        }

        let mut finished: Vec<(SimTime, bool)> = vec![(SimTime::MAX, false); flows.len()];
        let mut now = SimTime::ZERO;
        let mut next_arrival = 0usize;
        let mut replay_steps = 0u64;
        let mut solves = 0u64;

        loop {
            // Start every arrival due at `now`, in replay-id order.
            while next_arrival < self.sorted.len() {
                let input = self.sorted[next_arrival] as usize;
                if arrivals[input].arrival > now {
                    break;
                }
                let id = next_arrival as u64;
                let slot = input as u32;
                let f = &mut self.flows[input];
                f.id = id;
                f.started = now;
                members_insert(&mut self.members, id, slot, &f.resources);
                self.touch_resources(input);
                self.order.push(slot);
                next_arrival += 1;
            }
            if self.order.is_empty() && next_arrival == self.sorted.len() {
                break;
            }
            if let Some(h) = horizon {
                if now >= h {
                    break;
                }
            }
            if self.dirty {
                solves += 1;
                self.recompute(now);
            }
            let mut t_next = self.next_completion();
            if next_arrival < self.sorted.len() {
                t_next = t_next.min(arrivals[self.sorted[next_arrival] as usize].arrival);
            }
            if let Some(h) = horizon {
                t_next = t_next.min(h);
            }
            if t_next == SimTime::MAX {
                return Err(NetError::Stalled);
            }
            self.advance(t_next.since(now));
            now = t_next;
            self.complete_due(now, &mut finished);
            replay_steps += 1;
        }

        // Horizon leftovers: active flows (and flows that never arrived)
        // are reported as incomplete at the cut-off.
        for pos in 0..self.order.len() {
            let input = self.order[pos] as usize;
            finished[input] = (now.max(self.flows[input].started), false);
        }
        self.order.clear();
        for input in self.sorted[next_arrival..].iter().map(|&i| i as usize) {
            finished[input] = (arrivals[input].arrival, false);
        }
        // Membership lists of cut-off flows must not leak into the next
        // estimate.
        for m in &mut self.members {
            m.clear();
        }

        let mut estimates = Vec::with_capacity(flows.len());
        for (i, w) in flows.iter().enumerate() {
            let (finish, completed) = finished[i];
            let started = if w.arrival <= finish { w.arrival } else { finish };
            let fct_secs = finish.saturating_since(started).as_secs_f64();
            let (bn, bn_cap) = bottleneck[i];
            let ideal_secs =
                if bn_cap > 0.0 { w.size_bytes as f64 * 8.0 / bn_cap } else { f64::INFINITY };
            let slowdown = if !completed {
                f64::INFINITY
            } else if ideal_secs > 0.0 {
                fct_secs / ideal_secs
            } else {
                1.0
            };
            estimates.push(FlowEstimate {
                started,
                finished: finish,
                completed,
                slowdown,
                bottleneck: bn,
                bottleneck_capacity: bn_cap,
            });
        }
        let fct_digest = fct_digest(flows, &estimates);
        Ok(WhatIfReport { estimates, fct_digest, replay_steps, solves })
    }

    /// Mark a flow's resources dirty (generation-marked dedup, touch
    /// order preserved; the recompute sorts its own copy).
    fn touch_resources(&mut self, input: usize) {
        self.dirty = true;
        for &r in &self.flows[input].resources {
            if self.dirty_marks[r] != self.dirty_gen {
                self.dirty_marks[r] = self.dirty_gen;
                self.dirty_list.push(r);
            }
        }
    }

    fn next_completion(&self) -> SimTime {
        self.order.iter().map(|&s| self.flows[s as usize].eta).min().unwrap_or(SimTime::MAX)
    }

    /// Integrate remaining bytes over `dt` at current rates, in id order,
    /// with the engine's exact arithmetic (`bytes = rate * secs / 8.0`,
    /// clamped subtraction per step).
    fn advance(&mut self, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let secs = dt.as_secs_f64();
        for &s in &self.order {
            let f = &mut self.flows[s as usize];
            if f.rate <= 0.0 {
                continue;
            }
            let bytes = f.rate * secs / 8.0;
            f.remaining = (f.remaining - bytes).max(0.0);
        }
    }

    /// Retire every flow due at `now` (`eta <= now || remaining <= 1e-6`),
    /// scanning and completing in id order.
    fn complete_due(&mut self, now: SimTime, finished: &mut [(SimTime, bool)]) {
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        for (pos, &s) in self.order.iter().enumerate() {
            let f = &self.flows[s as usize];
            if f.eta <= now || f.remaining <= 1e-6 {
                due.push(((pos as u64) << 32) | u64::from(s));
            }
        }
        // Positions shift as we remove; walk back-to-front on positions
        // (completion *order* is id order only for bookkeeping in
        // `finished`, which is index-addressed, so order does not matter).
        for &packed in due.iter().rev() {
            let pos = (packed >> 32) as usize;
            let slot = (packed & 0xffff_ffff) as u32;
            let input = slot as usize;
            self.order.remove(pos);
            let id = self.flows[input].id;
            members_remove(&mut self.members, id, &self.flows[input].resources);
            self.touch_resources(input);
            finished[input] = (now, true);
        }
        due.clear();
        self.due = due;
    }

    /// Recompute rates for the dirty scope, mirroring the engine:
    /// full-mode rebuilds everything; incremental mode re-solves only the
    /// components transitively sharing a resource with the touched set.
    fn recompute(&mut self, now: SimTime) {
        self.dirty = false;
        self.dirty_gen += 1;
        let mut touched = std::mem::take(&mut self.dirty_list);
        match self.mode {
            SolverMode::Full => {
                touched.clear();
                self.dirty_list = touched;
                self.recompute_full(now);
            }
            SolverMode::Incremental => {
                touched.sort_unstable();
                self.recompute_scoped(&touched, now);
                touched.clear();
                self.dirty_list = touched;
            }
        }
    }

    fn recompute_full(&mut self, now: SimTime) {
        let specs: Vec<FlowSpec> = self
            .order
            .iter()
            .map(|&s| {
                let f = &self.flows[s as usize];
                FlowSpec { weight: 1.0, cap: None, resources: f.resources.clone() }
            })
            .collect();
        let alloc = maxmin::solve(&self.capacities, &specs);
        self.residual = alloc.residual;
        for (&s, &rate) in self.order.iter().zip(alloc.rates.iter()) {
            apply_rate(&mut self.flows[s as usize], rate, now);
        }
    }

    fn recompute_scoped(&mut self, touched: &[usize], now: SimTime) {
        // Closure walk from the touched resources through the membership
        // lists; `res_seen` marks stay set for the partition pass below.
        self.comp_res.clear();
        self.comp.clear();
        for &r in touched {
            if !self.res_seen[r] {
                self.res_seen[r] = true;
                self.comp_res.push(r);
            }
        }
        let mut head = 0;
        while head < self.comp_res.len() {
            let r = self.comp_res[head];
            head += 1;
            for &(fid, slot) in &self.members[r] {
                let s = slot as usize;
                if self.flow_seen[s] {
                    continue;
                }
                self.flow_seen[s] = true;
                self.comp.push((fid, slot));
                for &r2 in &self.flows[s].resources {
                    if !self.res_seen[r2] {
                        self.res_seen[r2] = true;
                        self.comp_res.push(r2);
                    }
                }
            }
        }
        for i in 0..self.comp_res.len() {
            let r = self.comp_res[i];
            if self.members[r].is_empty() {
                // Vacated resource: residual reverts to full capacity,
                // clamped exactly as the full solver clamps its output.
                let mut v = self.capacities[r];
                if v < 0.0 {
                    v = 0.0;
                }
                self.residual[r] = v;
            }
        }
        // Partition the closure into disjoint components, lowest flow id
        // first, matching the full solver's canonical per-component fills.
        self.comp.sort_unstable();
        self.subs.clear();
        self.sub_ends.clear();
        for ci in 0..self.comp.len() {
            let (first, s0) = self.comp[ci];
            if !self.flow_seen[s0 as usize] {
                continue;
            }
            self.flow_seen[s0 as usize] = false;
            let start = self.subs.len();
            self.subs.push((first, s0));
            self.fstack.clear();
            self.fstack.push(s0);
            while let Some(s) = self.fstack.pop() {
                for ri in 0..self.flows[s as usize].resources.len() {
                    let r = self.flows[s as usize].resources[ri];
                    if !self.res_seen[r] {
                        continue;
                    }
                    self.res_seen[r] = false;
                    for &(other, os) in &self.members[r] {
                        if self.flow_seen[os as usize] {
                            self.flow_seen[os as usize] = false;
                            self.subs.push((other, os));
                            self.fstack.push(os);
                        }
                    }
                }
            }
            self.subs[start..].sort_unstable();
            self.sub_ends.push(self.subs.len());
        }
        debug_assert_eq!(self.subs.len(), self.comp.len(), "what-if membership out of sync");
        for i in 0..self.comp_res.len() {
            let r = self.comp_res[i];
            self.res_seen[r] = false;
        }
        // Serial per-component fills: flows pushed in ascending id order,
        // exactly the engine's (bit-identical) arithmetic.
        let mut start = 0;
        for si in 0..self.sub_ends.len() {
            let end = self.sub_ends[si];
            self.solver.begin_component(self.capacities.len());
            for k in start..end {
                let f = &self.flows[self.subs[k].1 as usize];
                self.solver.push_flow(1.0, None, &f.resources, &self.capacities);
            }
            self.solver.run_fill();
            for k in start..end {
                let rate = self.solver.component_rates()[k - start];
                apply_rate(&mut self.flows[self.subs[k].1 as usize], rate, now);
            }
            for (r, resid) in self.solver.component_residuals() {
                self.residual[r] = resid;
            }
            start = end;
        }
    }
}

/// FNV-1a digest over per-flow outcomes in input order. Both the what-if
/// kernel and the ground-truth replay fold through this one function, so
/// digest equality means every start/finish nanosecond matches.
pub fn fct_digest(flows: &[WhatIfFlow], estimates: &[FlowEstimate]) -> u64 {
    let mut d = EventDigest::new();
    for (i, (w, e)) in flows.iter().zip(estimates.iter()).enumerate() {
        d.write_u64(i as u64);
        d.write_u64(u64::from(w.src.0));
        d.write_u64(u64::from(w.dst.0));
        d.write_u64(w.size_bytes);
        d.write_u64(e.started.as_nanos());
        d.write_u64(e.finished.as_nanos());
        d.write_u64(u64::from(e.completed));
    }
    d.value()
}

/// The arrival schedule as a [`TrafficProcess`]: starts each bulk flow at
/// its arrival instant, in `(arrival, input index)` order — the same
/// order the what-if kernel assigns replay ids in.
struct ArrivalProcess {
    /// `(arrival, params)` sorted by arrival (stable in input order).
    entries: Vec<(SimTime, FlowParams)>,
    next: usize,
}

impl TrafficProcess for ArrivalProcess {
    fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        while self.next < self.entries.len() && self.entries[self.next].0 <= now {
            let params = self.entries[self.next].1.clone();
            ctx.start_flow(params);
            self.next += 1;
        }
        self.entries.get(self.next).map(|&(t, _)| t)
    }
}

/// Ground-truth replay: run the same hypothetical flow set through a full
/// [`Simulator`] over `topo` (bulk flows scheduled by a traffic process)
/// and report it in the same shape as [`WhatIfEngine::estimate`]. The
/// digests must match bit-for-bit in either [`SolverMode`] — this is the
/// oracle the what-if kernel is benchmarked and proptested against.
/// `replay_steps` is reported as the simulator's solve count.
pub fn replay_ground_truth(
    topo: Topology,
    flows: &[WhatIfFlow],
    mode: SolverMode,
) -> Result<WhatIfReport> {
    let (capacities, backplane) = resource_layout(&topo);
    let routing = Routing::new(&topo);
    // Validate and pre-compute bottlenecks exactly like the kernel, so
    // both sides reject the same inputs and report the same ideals.
    let mut bottleneck = Vec::with_capacity(flows.len());
    let mut path = Path { src: NodeId(0), dst: NodeId(0), hops: Vec::new(), nodes: Vec::new() };
    let mut resources = Vec::new();
    for (i, w) in flows.iter().enumerate() {
        if w.src == w.dst {
            return Err(NetError::Invalid(format!("what-if flow {i}: src == dst")));
        }
        routing.path_into(&topo, w.src, w.dst, &mut path)?;
        resources_into(&backplane, &path, &mut resources);
        let (mut bn, mut bn_cap) = (usize::MAX, f64::INFINITY);
        for &r in &resources {
            if capacities[r] < bn_cap {
                bn_cap = capacities[r];
                bn = r;
            }
        }
        bottleneck.push((bn, bn_cap));
    }

    let mut order: Vec<u32> = (0..flows.len() as u32).collect();
    order.sort_by_key(|&i| (flows[i as usize].arrival, i));
    let entries: Vec<(SimTime, FlowParams)> = order
        .iter()
        .map(|&i| {
            let w = &flows[i as usize];
            (w.arrival, FlowParams::bulk(w.src, w.dst, w.size_bytes))
        })
        .collect();

    let mut sim = Simulator::new(topo)?;
    sim.set_solver_mode(mode);
    if let Some(&(first, _)) = entries.first() {
        sim.add_process(first, Box::new(ArrivalProcess { entries, next: 0 }));
        // Drive to completion: with every flow a finite bulk transfer the
        // event loop runs dry, the final advance jumps to the target, and
        // the loop exits.
        sim.run_until(SimTime::MAX)?;
    }

    // Engine flow ids are handed out monotonically from zero on a fresh
    // simulator, so record id k is the k-th started flow = `order[k]`.
    let mut finished: Vec<(SimTime, SimTime, bool)> =
        vec![(SimTime::ZERO, SimTime::MAX, false); flows.len()];
    let records = sim.take_finished();
    if records.len() != flows.len() {
        return Err(NetError::Stalled);
    }
    for rec in records {
        let input = order
            .get(rec.id as usize)
            .map(|&i| i as usize)
            .ok_or(NetError::UnknownFlow(rec.id))?;
        finished[input] = (rec.started, rec.finished, rec.completed);
    }

    let mut estimates = Vec::with_capacity(flows.len());
    for (i, w) in flows.iter().enumerate() {
        let (started, finish, completed) = finished[i];
        let fct_secs = finish.saturating_since(started).as_secs_f64();
        let (bn, bn_cap) = bottleneck[i];
        let ideal_secs =
            if bn_cap > 0.0 { w.size_bytes as f64 * 8.0 / bn_cap } else { f64::INFINITY };
        let slowdown = if !completed {
            f64::INFINITY
        } else if ideal_secs > 0.0 {
            fct_secs / ideal_secs
        } else {
            1.0
        };
        estimates.push(FlowEstimate {
            started,
            finished: finish,
            completed,
            slowdown,
            bottleneck: bn,
            bottleneck_capacity: bn_cap,
        });
    }
    let digest = fct_digest(flows, &estimates);
    Ok(WhatIfReport {
        estimates,
        fct_digest: digest,
        replay_steps: sim.full_recomputes() + sim.scoped_recomputes(),
        solves: sim.full_recomputes() + sim.scoped_recomputes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::mbps;

    /// h1..h3 -- r star, 100 Mbps links.
    fn star() -> Topology {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let r = b.network("r");
        for h in [h1, h2, h3] {
            b.link(h, r, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        }
        b.build().unwrap()
    }

    fn star_flows() -> Vec<WhatIfFlow> {
        // h1->h2 and h3->h2 share h2's ingress; staggered arrivals.
        let h1 = NodeId(0);
        let h2 = NodeId(1);
        let h3 = NodeId(2);
        vec![
            WhatIfFlow { src: h1, dst: h2, size_bytes: 12_500_000, arrival: SimTime::ZERO },
            WhatIfFlow {
                src: h3,
                dst: h2,
                size_bytes: 6_250_000,
                arrival: SimTime::from_millis(200),
            },
            WhatIfFlow {
                src: h2,
                dst: h1,
                size_bytes: 1_250_000,
                arrival: SimTime::from_millis(200),
            },
        ]
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        let mut eng = WhatIfEngine::from_topology(star());
        let flows = vec![WhatIfFlow {
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 12_500_000, // 12.5 MB at 100 Mbps = 1.0 s
            arrival: SimTime::ZERO,
        }];
        let rep = eng.estimate(&flows).unwrap();
        let e = &rep.estimates[0];
        assert!(e.completed);
        assert!((e.fct().as_secs_f64() - 1.0).abs() < 1e-6, "{:?}", e.fct());
        assert!((e.slowdown - 1.0).abs() < 1e-6, "{}", e.slowdown);
        assert_eq!(e.bottleneck_capacity, mbps(100.0));
    }

    #[test]
    fn matches_ground_truth_in_both_modes() {
        let flows = star_flows();
        let truth_full =
            replay_ground_truth(star(), &flows, SolverMode::Full).unwrap();
        let truth_inc =
            replay_ground_truth(star(), &flows, SolverMode::Incremental).unwrap();
        assert_eq!(truth_full.fct_digest, truth_inc.fct_digest);
        for mode in [SolverMode::Full, SolverMode::Incremental] {
            let mut eng = WhatIfEngine::from_topology(star());
            eng.set_mode(mode);
            let rep = eng.estimate(&flows).unwrap();
            assert_eq!(
                rep.fct_digest, truth_full.fct_digest,
                "what-if {mode:?} diverged from ground truth"
            );
            for (a, b) in rep.estimates.iter().zip(truth_full.estimates.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn contention_slows_the_shared_flow() {
        let mut eng = WhatIfEngine::from_topology(star());
        let rep = eng.estimate(&star_flows()).unwrap();
        // Flow 0 runs alone for 200 ms, then shares h2's ingress with
        // flow 1: its slowdown must exceed 1, and every flow completes.
        assert!(rep.estimates.iter().all(|e| e.completed));
        assert!(rep.estimates[0].slowdown > 1.2, "{}", rep.estimates[0].slowdown);
        // Flow 2 runs on an uncontended reverse path at line rate.
        assert!((rep.estimates[2].slowdown - 1.0).abs() < 1e-6);
        assert!(rep.replay_steps >= 4);
        assert!(rep.solves >= 3);
    }

    #[test]
    fn engine_reuse_is_bit_stable() {
        let mut eng = WhatIfEngine::from_topology(star());
        let flows = star_flows();
        let a = eng.estimate(&flows).unwrap();
        let b = eng.estimate(&flows).unwrap();
        assert_eq!(a.fct_digest, b.fct_digest);
    }

    #[test]
    fn background_load_shrinks_capacity() {
        let mut eng = WhatIfEngine::from_topology(star());
        let flows = vec![WhatIfFlow {
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 12_500_000,
            arrival: SimTime::ZERO,
        }];
        // 50 Mbps of background on every interface halves the rate.
        let util = vec![mbps(50.0); eng.topology().dir_link_count()];
        let rep = eng.estimate_with(&flows, Some(&util), None).unwrap();
        assert!((rep.estimates[0].fct().as_secs_f64() - 2.0).abs() < 1e-6);
        // And the idle run is unaffected afterwards (capacities restored).
        let idle = eng.estimate(&flows).unwrap();
        assert!((idle.estimates[0].fct().as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn horizon_cuts_off_unfinished_flows() {
        let mut eng = WhatIfEngine::from_topology(star());
        let flows = star_flows();
        let rep = eng
            .estimate_with(&flows, None, Some(SimTime::from_millis(100)))
            .unwrap();
        assert!(!rep.estimates[0].completed);
        assert_eq!(rep.estimates[0].finished, SimTime::from_millis(100));
        // Flows arriving after the horizon never start.
        assert!(!rep.estimates[1].completed);
        assert_eq!(rep.estimates[1].finished, flows[1].arrival);
        // A later full run on the same engine is unaffected by leftovers.
        let full = eng.estimate(&flows).unwrap();
        assert!(full.estimates.iter().all(|e| e.completed));
    }

    #[test]
    fn degenerate_flows_are_rejected() {
        let mut eng = WhatIfEngine::from_topology(star());
        let bad = vec![WhatIfFlow {
            src: NodeId(0),
            dst: NodeId(0),
            size_bytes: 1,
            arrival: SimTime::ZERO,
        }];
        assert!(eng.estimate(&bad).is_err());
        // Routers are not valid endpoints.
        let router = vec![WhatIfFlow {
            src: NodeId(0),
            dst: NodeId(3),
            size_bytes: 1,
            arrival: SimTime::ZERO,
        }];
        assert!(eng.estimate(&router).is_err());
    }

    #[test]
    fn empty_batch_is_trivially_ok() {
        let mut eng = WhatIfEngine::from_topology(star());
        let rep = eng.estimate(&[]).unwrap();
        assert!(rep.estimates.is_empty());
        assert_eq!(rep.replay_steps, 0);
    }

    #[test]
    fn simultaneous_arrivals_keep_input_order() {
        // Two identical flows arriving at the same instant must tie-break
        // by input index — digest equality with ground truth proves the
        // id assignment matches the engine's start order.
        let h1 = NodeId(0);
        let h2 = NodeId(1);
        let h3 = NodeId(2);
        let flows = vec![
            WhatIfFlow { src: h3, dst: h2, size_bytes: 2_000_000, arrival: SimTime::ZERO },
            WhatIfFlow { src: h1, dst: h2, size_bytes: 2_000_000, arrival: SimTime::ZERO },
        ];
        let truth = replay_ground_truth(star(), &flows, SolverMode::Incremental).unwrap();
        let mut eng = WhatIfEngine::from_topology(star());
        let rep = eng.estimate(&flows).unwrap();
        assert_eq!(rep.fct_digest, truth.fct_digest);
    }
}
