//! SNMP-style interface counter views.
//!
//! Real routers export 32-bit octet counters (`ifInOctets`/`ifOutOctets`,
//! MIB-II); at 100 Mbps a Counter32 wraps every ~343 seconds, so any
//! collector polling a long-running testbed (the paper's Airshed runs for
//! 900+ seconds) must handle wrap-around. This module converts the engine's
//! exact `f64` octet totals into wrapped `Counter32` readings, and provides
//! the inverse delta computation used by collectors.

/// Modulus of an SNMP Counter32.
pub const COUNTER32_MODULUS: u64 = 1 << 32;

/// Truncate an exact octet total to a Counter32 reading.
#[inline]
pub fn to_counter32(exact_octets: f64) -> u32 {
    debug_assert!(exact_octets >= 0.0);
    // f64 loses integer precision above 2^53 octets (~9 PB); the experiments
    // move far less, and wrap math only needs the low 32 bits.
    ((exact_octets as u64) % COUNTER32_MODULUS) as u32
}

/// Octets counted between two Counter32 readings, assuming at most one wrap.
///
/// This is the standard SNMP delta rule: if the counter appears to have
/// decreased, it wrapped once. More than one wrap per polling interval is
/// undetectable (the classic argument for polling faster than
/// `2^32 / line-rate`).
#[inline]
pub fn counter32_delta(earlier: u32, later: u32) -> u64 {
    if later >= earlier {
        (later - earlier) as u64
    } else {
        COUNTER32_MODULUS - earlier as u64 + later as u64
    }
}

/// Estimate a utilization rate (bits/s) from two counter readings `dt`
/// seconds apart. Returns 0 for a non-positive interval.
#[inline]
pub fn rate_from_readings(earlier: u32, later: u32, dt_secs: f64) -> f64 {
    if dt_secs <= 0.0 {
        return 0.0;
    }
    counter32_delta(earlier, later) as f64 * 8.0 / dt_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation() {
        assert_eq!(to_counter32(0.0), 0);
        assert_eq!(to_counter32(100.0), 100);
        assert_eq!(to_counter32((COUNTER32_MODULUS + 5) as f64), 5);
    }

    #[test]
    fn delta_no_wrap() {
        assert_eq!(counter32_delta(100, 250), 150);
        assert_eq!(counter32_delta(0, 0), 0);
    }

    #[test]
    fn delta_with_wrap() {
        // Counter went 4294967290 -> 10: delta = 16.
        assert_eq!(counter32_delta(u32::MAX - 5, 10), 16);
    }

    #[test]
    fn rate_estimation() {
        // 12.5 MB in 1 s = 100 Mbit/s.
        let rate = rate_from_readings(0, 12_500_000, 1.0);
        assert!((rate - 100e6).abs() < 1.0);
        assert_eq!(rate_from_readings(0, 10, 0.0), 0.0);
    }

    #[test]
    fn rate_across_wrap_matches_truth() {
        // 100 Mbps for 400 s wraps once.
        let total = 100e6 / 8.0 * 400.0; // 5e9 octets
        let c0 = to_counter32(0.0);
        let c1 = to_counter32(total);
        // Poll interval 400 s is too long to disambiguate the wrap fully:
        // delta sees total mod 2^32.
        let seen = counter32_delta(c0, c1);
        assert_eq!(seen, (total as u64) % COUNTER32_MODULUS);
        // Polling every 100 s (1.25e9 octets, < 2^32) reads true rates.
        let a = to_counter32(total);
        let b = to_counter32(total + 1.25e9);
        assert!((rate_from_readings(a, b, 100.0) - 100e6).abs() < 1.0);
    }
}
