//! Background traffic generators.
//!
//! The paper's dynamic-environment experiments use "a synthetic program
//! that generates communication traffic between nodes m-6 and m-8" (§8.2).
//! These generators reproduce that and richer load shapes:
//!
//! * [`CbrTraffic`] — a constant-bit-rate flow for a time window;
//! * [`GreedyTraffic`] — `n` parallel greedy flows (an aggressive bulk
//!   application; with `n` parallel flows a competing application flow's
//!   max-min share of a shared link drops to `1/(n+1)`);
//! * [`OnOffTraffic`] — exponential on/off bursts (bursty cross-traffic);
//! * [`PoissonTransfers`] — Poisson arrivals of bounded transfers with a
//!   chosen mean size (web-like background load).
//!
//! All generators are [`TrafficProcess`]es: register them with
//! [`Simulator::add_process`](crate::engine::Simulator::add_process).

use crate::engine::{FlowHandle, ProcessCtx, TrafficProcess};
use crate::flow::{FlowParams, FlowTag};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use crate::units::Bps;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single CBR flow from `start` until `stop`.
pub struct CbrTraffic {
    src: NodeId,
    dst: NodeId,
    rate: Bps,
    stop: Option<SimTime>,
    state: CbrState,
}

enum CbrState {
    Pending,
    Running(FlowHandle),
    Done,
}

impl CbrTraffic {
    /// CBR of `rate` bits/s; `stop = None` runs forever.
    pub fn new(src: NodeId, dst: NodeId, rate: Bps, stop: Option<SimTime>) -> Self {
        CbrTraffic { src, dst, rate, stop, state: CbrState::Pending }
    }
}

impl TrafficProcess for CbrTraffic {
    fn fire(&mut self, _now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        match std::mem::replace(&mut self.state, CbrState::Done) {
            CbrState::Pending => {
                let h = ctx.start_flow(
                    FlowParams::cbr(self.src, self.dst, self.rate).with_tag(FlowTag::BACKGROUND),
                );
                self.state = CbrState::Running(h);
                self.stop
            }
            CbrState::Running(h) => {
                ctx.stop_flow(h);
                None
            }
            CbrState::Done => None,
        }
    }
}

/// `n` parallel greedy flows between one pair, from `start` until `stop`.
///
/// This is the shape used for the paper's Table 2 external traffic: several
/// aggressive bulk streams that leave a competing application flow only a
/// `1/(n+1)` max-min share of any shared link.
pub struct GreedyTraffic {
    src: NodeId,
    dst: NodeId,
    n: usize,
    stop: Option<SimTime>,
    running: Vec<FlowHandle>,
    started: bool,
}

impl GreedyTraffic {
    /// `n` parallel greedy flows; `stop = None` runs forever.
    pub fn new(src: NodeId, dst: NodeId, n: usize, stop: Option<SimTime>) -> Self {
        GreedyTraffic { src, dst, n, stop, running: Vec::new(), started: false }
    }
}

impl TrafficProcess for GreedyTraffic {
    fn fire(&mut self, _now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        if !self.started {
            self.started = true;
            for _ in 0..self.n {
                self.running.push(ctx.start_flow(
                    FlowParams::greedy(self.src, self.dst).with_tag(FlowTag::BACKGROUND),
                ));
            }
            self.stop
        } else {
            for h in self.running.drain(..) {
                ctx.stop_flow(h);
            }
            None
        }
    }
}

/// Exponential on/off bursts of a greedy flow.
///
/// During an *on* period a greedy flow runs; during *off* the link is idle.
/// Mean on/off durations are exponentially distributed, seeded for
/// reproducibility.
pub struct OnOffTraffic {
    src: NodeId,
    dst: NodeId,
    mean_on: SimDuration,
    mean_off: SimDuration,
    stop: Option<SimTime>,
    rng: StdRng,
    active: Option<FlowHandle>,
}

impl OnOffTraffic {
    /// New on/off source; starts in the *off* state.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        mean_on: SimDuration,
        mean_off: SimDuration,
        stop: Option<SimTime>,
        seed: u64,
    ) -> Self {
        OnOffTraffic {
            src,
            dst,
            mean_on,
            mean_off,
            stop,
            rng: StdRng::seed_from_u64(seed),
            active: None,
        }
    }

    fn exp_sample(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-CDF exponential with the given mean.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
}

impl TrafficProcess for OnOffTraffic {
    fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        if let Some(stop) = self.stop {
            if now >= stop {
                if let Some(h) = self.active.take() {
                    ctx.stop_flow(h);
                }
                return None;
            }
        }
        let next = match self.active.take() {
            None => {
                self.active = Some(ctx.start_flow(
                    FlowParams::greedy(self.src, self.dst).with_tag(FlowTag::BACKGROUND),
                ));
                now + self.exp_sample(self.mean_on)
            }
            Some(h) => {
                ctx.stop_flow(h);
                now + self.exp_sample(self.mean_off)
            }
        };
        Some(match self.stop {
            Some(stop) => next.min(stop),
            None => next,
        })
    }
}

/// Poisson arrivals of bounded bulk transfers with exponentially
/// distributed sizes (web-like background load).
pub struct PoissonTransfers {
    src: NodeId,
    dst: NodeId,
    /// Mean inter-arrival gap.
    mean_gap: SimDuration,
    /// Mean transfer size, bytes.
    mean_bytes: f64,
    stop: Option<SimTime>,
    rng: StdRng,
}

impl PoissonTransfers {
    /// New arrival process, seeded for reproducibility.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        mean_gap: SimDuration,
        mean_bytes: f64,
        stop: Option<SimTime>,
        seed: u64,
    ) -> Self {
        PoissonTransfers { src, dst, mean_gap, mean_bytes, stop, rng: StdRng::seed_from_u64(seed) }
    }
}

impl TrafficProcess for PoissonTransfers {
    fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        if let Some(stop) = self.stop {
            if now >= stop {
                return None;
            }
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let bytes = (-self.mean_bytes * u.ln()).max(1.0) as u64;
        ctx.start_flow(
            FlowParams::bulk(self.src, self.dst, bytes).with_tag(FlowTag::BACKGROUND),
        );
        let v: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = SimDuration::from_secs_f64(-self.mean_gap.as_secs_f64() * v.ln());
        Some(now + gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::topology::TopologyBuilder;
    use crate::units::mbps;

    fn pair() -> (Simulator, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r = b.network("r");
        b.link(h1, r, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        b.link(r, h2, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        (Simulator::new(b.build().unwrap()).unwrap(), h1, h2)
    }

    #[test]
    fn cbr_window_delivers_expected_volume() {
        let (mut sim, h1, h2) = pair();
        sim.add_process(
            SimTime::from_secs(1),
            Box::new(CbrTraffic::new(h1, h2, mbps(40.0), Some(SimTime::from_secs(3)))),
        );
        sim.run_until(SimTime::from_secs(5)).unwrap();
        let link = sim.topology().neighbors(h1)[0].0;
        let octets = sim.iface_out_octets(h1, link);
        // 40 Mbit/s for 2 s = 10 MB.
        assert!((octets - 1e7).abs() < 10.0, "{octets}");
        assert_eq!(sim.active_flow_count(), 0);
    }

    #[test]
    fn greedy_traffic_fills_link() {
        let (mut sim, h1, h2) = pair();
        sim.add_process(
            SimTime::ZERO,
            Box::new(GreedyTraffic::new(h1, h2, 4, Some(SimTime::from_secs(2)))),
        );
        sim.run_until(SimTime::from_secs(1)).unwrap();
        assert_eq!(sim.active_flow_count(), 4);
        let link = sim.topology().neighbors(h1)[0].0;
        let dir = sim.topology().link(link).direction_from(h1);
        let rate = sim.dirlink_rate(crate::topology::DirLink { link, dir });
        assert!((rate - mbps(100.0)).abs() < 1.0, "{rate}");
        sim.run_until(SimTime::from_secs(3)).unwrap();
        assert_eq!(sim.active_flow_count(), 0);
    }

    #[test]
    fn greedy_traffic_squeezes_app_flow() {
        let (mut sim, h1, h2) = pair();
        sim.add_process(SimTime::ZERO, Box::new(GreedyTraffic::new(h1, h2, 4, None)));
        sim.run_until(SimTime::from_millis(1)).unwrap();
        let f = sim.start_flow(FlowParams::greedy(h1, h2)).unwrap();
        let r = sim.flow_rate(f).unwrap();
        assert!((r - mbps(20.0)).abs() < 1.0, "app share {r}");
    }

    #[test]
    fn onoff_produces_partial_load() {
        let (mut sim, h1, h2) = pair();
        sim.add_process(
            SimTime::ZERO,
            Box::new(OnOffTraffic::new(
                h1,
                h2,
                SimDuration::from_secs(1),
                SimDuration::from_secs(1),
                Some(SimTime::from_secs(60)),
                42,
            )),
        );
        sim.run_until(SimTime::from_secs(60)).unwrap();
        let link = sim.topology().neighbors(h1)[0].0;
        let octets = sim.iface_out_octets(h1, link);
        let full = 100e6 / 8.0 * 60.0;
        // Roughly half duty cycle: between 20% and 80% of a full-rate minute.
        assert!(octets > 0.2 * full && octets < 0.8 * full, "{octets}");
        assert_eq!(sim.active_flow_count(), 0, "stopped at the window end");
    }

    #[test]
    fn onoff_deterministic_with_same_seed() {
        let run = |seed| {
            let (mut sim, h1, h2) = pair();
            sim.add_process(
                SimTime::ZERO,
                Box::new(OnOffTraffic::new(
                    h1,
                    h2,
                    SimDuration::from_millis(500),
                    SimDuration::from_millis(500),
                    Some(SimTime::from_secs(20)),
                    seed,
                )),
            );
            sim.run_until(SimTime::from_secs(20)).unwrap();
            let link = sim.topology().neighbors(h1)[0].0;
            sim.iface_out_octets(h1, link)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn poisson_transfers_complete() {
        let (mut sim, h1, h2) = pair();
        sim.add_process(
            SimTime::ZERO,
            Box::new(PoissonTransfers::new(
                h1,
                h2,
                SimDuration::from_millis(200),
                100_000.0,
                Some(SimTime::from_secs(10)),
                1,
            )),
        );
        sim.run_until(SimTime::from_secs(30)).unwrap();
        let finished = sim.take_finished();
        assert!(finished.len() > 20, "only {} transfers", finished.len());
        assert!(finished.iter().all(|r| r.completed));
        assert!(finished.iter().all(|r| r.tag == FlowTag::BACKGROUND));
    }
}
