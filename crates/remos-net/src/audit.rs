//! Runtime invariant audit for the max-min fluid solver.
//!
//! [`MaxMinAudit`] re-derives, from first principles, the properties the
//! paper's sharing model promises (§4.2) and checks a solver output
//! against them after every rate recomputation:
//!
//! * **feasibility** — per-resource load never exceeds capacity (within a
//!   relative epsilon), and no rate is negative or above its cap;
//! * **max-min** — every finite flow is either at its cap or crosses a
//!   saturated resource, and flows bottlenecked *only* at one saturated
//!   resource share it equally by weight;
//! * **conservation** — the reported residual of each resource equals
//!   capacity minus load.
//!
//! Violations are typed ([`AuditViolation`]) so tests can assert on the
//! precise failure mode; [`maxmin::validate`](crate::maxmin::validate)
//! renders the first one as a string for debug assertions.

use crate::maxmin::{Allocation, FlowSpec, EPS};
use crate::time::SimTime;
use std::fmt;

/// A single violated invariant, with enough context to debug it.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditViolation {
    /// A constrained flow was assigned an infinite rate.
    InfiniteConstrained {
        /// Flow index in the checked allocation.
        flow: usize,
    },
    /// A flow was assigned a negative rate.
    NegativeRate {
        /// Flow index.
        flow: usize,
        /// The offending rate (bits/s).
        rate: f64,
    },
    /// A flow's rate exceeds its declared cap.
    CapExceeded {
        /// Flow index.
        flow: usize,
        /// Assigned rate (bits/s).
        rate: f64,
        /// Declared cap (bits/s).
        cap: f64,
    },
    /// A resource carries more load than its capacity.
    Overload {
        /// Resource index.
        resource: usize,
        /// Aggregate load (bits/s).
        load: f64,
        /// Capacity (bits/s).
        capacity: f64,
    },
    /// A finite flow is neither at its cap nor crossing any saturated
    /// resource — bandwidth was left on the table.
    NotBottlenecked {
        /// Flow index.
        flow: usize,
        /// Assigned rate (bits/s).
        rate: f64,
    },
    /// Two flows bottlenecked only at this resource have unequal
    /// weight-normalised shares — the allocation is not max-min fair.
    UnequalShares {
        /// Resource index.
        resource: usize,
        /// Smallest normalised share among the flows bottlenecked here.
        min: f64,
        /// Largest normalised share among the flows bottlenecked here.
        max: f64,
    },
    /// The allocation's reported residual disagrees with capacity − load.
    ResidualMismatch {
        /// Resource index.
        resource: usize,
        /// Residual the solver reported (bits/s).
        reported: f64,
        /// Residual implied by the rates (bits/s).
        expected: f64,
    },
    /// The discrete-event clock moved backwards.
    ClockRegression {
        /// Time before the regression.
        from: SimTime,
        /// The earlier time the clock attempted to move to.
        to: SimTime,
    },
    /// The incremental solver's rate for a flow disagrees bit-for-bit with
    /// a shadow full solve of the same problem — the scoping invariant
    /// (see docs/PERFORMANCE.md) was broken.
    SolverDivergence {
        /// Engine flow id.
        flow: u64,
        /// Rate the incremental solver kept or computed (bits/s).
        incremental: f64,
        /// Rate the shadow full solve produced (bits/s).
        full: f64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::InfiniteConstrained { flow } => {
                write!(f, "flow {flow} infinite but constrained")
            }
            AuditViolation::NegativeRate { flow, rate } => {
                write!(f, "flow {flow} negative rate {rate}")
            }
            AuditViolation::CapExceeded { flow, rate, cap } => {
                write!(f, "flow {flow} rate {rate} exceeds cap {cap}")
            }
            AuditViolation::Overload { resource, load, capacity } => {
                write!(f, "resource {resource} overloaded: {load} > {capacity}")
            }
            AuditViolation::NotBottlenecked { flow, rate } => {
                write!(f, "flow {flow} neither capped nor bottlenecked (rate {rate})")
            }
            AuditViolation::UnequalShares { resource, min, max } => {
                write!(f, "resource {resource}: unequal normalised shares {min} vs {max}")
            }
            AuditViolation::ResidualMismatch { resource, reported, expected } => {
                write!(
                    f,
                    "resource {resource}: residual {reported} reported, {expected} expected"
                )
            }
            AuditViolation::ClockRegression { from, to } => {
                write!(f, "simulation clock moved backwards: {from} -> {to}")
            }
            AuditViolation::SolverDivergence { flow, incremental, full } => {
                write!(
                    f,
                    "flow {flow}: incremental rate {incremental} diverges from full solve {full}"
                )
            }
        }
    }
}

/// Invariant checker for max-min allocations.
///
/// The relative tolerances default to the ones the solver itself
/// guarantees; widen them when auditing allocations that passed through
/// lossy round-trips (serialisation, unit conversion).
#[derive(Clone, Copy, Debug)]
pub struct MaxMinAudit {
    /// Relative slack for feasibility / saturation checks.
    pub rel_tol: f64,
    /// Absolute slack added on top (covers zero-capacity resources).
    pub abs_tol: f64,
}

impl Default for MaxMinAudit {
    fn default() -> Self {
        MaxMinAudit { rel_tol: 1e-6, abs_tol: EPS }
    }
}

impl MaxMinAudit {
    /// Check every invariant; returns all violations found (empty when the
    /// allocation is a valid weighted max-min fair solution).
    pub fn check(
        &self,
        capacities: &[f64],
        flows: &[FlowSpec],
        alloc: &Allocation,
    ) -> Vec<AuditViolation> {
        let mut out = Vec::new();
        let n_res = capacities.len();
        let mut load = vec![0.0_f64; n_res];

        for (i, f) in flows.iter().enumerate() {
            let r = alloc.rates[i];
            if r.is_infinite() {
                if !f.resources.is_empty() || f.cap.is_some() {
                    out.push(AuditViolation::InfiniteConstrained { flow: i });
                }
                continue;
            }
            if r < -self.abs_tol {
                out.push(AuditViolation::NegativeRate { flow: i, rate: r });
            }
            if let Some(cap) = f.cap {
                if r > cap * (1.0 + self.abs_tol) + self.abs_tol {
                    out.push(AuditViolation::CapExceeded { flow: i, rate: r, cap });
                }
            }
            for &res in &f.resources {
                load[res] += r;
            }
        }

        // Feasibility.
        for res in 0..n_res {
            if load[res] > capacities[res] * (1.0 + self.rel_tol) + self.abs_tol {
                out.push(AuditViolation::Overload {
                    resource: res,
                    load: load[res],
                    capacity: capacities[res],
                });
            }
        }

        // Bottleneck saturation: every finite flow is capped or crosses a
        // saturated resource.
        for (i, f) in flows.iter().enumerate() {
            let r = alloc.rates[i];
            if r.is_infinite() {
                continue;
            }
            let at_cap = f.cap.is_some_and(|c| r >= c - c.abs().max(1.0) * self.rel_tol);
            let bottlenecked = f
                .resources
                .iter()
                .any(|&res| load[res] >= capacities[res] * (1.0 - self.rel_tol) - self.abs_tol);
            if !at_cap && !bottlenecked {
                out.push(AuditViolation::NotBottlenecked { flow: i, rate: r });
            }
        }

        // Max-min: on every saturated resource, uncapped flows bottlenecked
        // *only* here must share equally by weight.
        for res in 0..n_res {
            if load[res] < capacities[res] * (1.0 - self.rel_tol) {
                continue;
            }
            let mut here: Vec<f64> = Vec::new(); // normalised rates
            for (i, f) in flows.iter().enumerate() {
                if !f.resources.contains(&res) {
                    continue;
                }
                let r = alloc.rates[i];
                let at_cap = f.cap.is_some_and(|c| r >= c - c.abs().max(1.0) * self.rel_tol);
                let elsewhere = f.resources.iter().any(|&o| {
                    o != res
                        && load[o] >= capacities[o] * (1.0 - self.rel_tol) - self.abs_tol
                });
                if !at_cap && !elsewhere {
                    here.push(r / f.weight);
                }
            }
            if here.len() >= 2 {
                let max = here.iter().copied().fold(f64::MIN, f64::max);
                let min = here.iter().copied().fold(f64::MAX, f64::min);
                if max - min > max.abs().max(1.0) * self.rel_tol {
                    out.push(AuditViolation::UnequalShares { resource: res, min, max });
                }
            }
        }

        // Conservation: reported residual == capacity − load. The solver
        // clamps small negative dust to zero, so the expected value is
        // clamped the same way.
        for res in 0..n_res {
            if load[res].is_infinite() {
                continue;
            }
            let expected = (capacities[res] - load[res]).max(0.0);
            let reported = alloc.residual[res];
            let tol = capacities[res].abs().max(1.0) * self.rel_tol + self.abs_tol;
            if (reported - expected).abs() > tol {
                out.push(AuditViolation::ResidualMismatch { resource: res, reported, expected });
            }
        }

        out
    }

    /// Check that the event clock never moves backwards.
    pub fn check_clock(&self, from: SimTime, to: SimTime) -> Option<AuditViolation> {
        if to < from {
            Some(AuditViolation::ClockRegression { from, to })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmin::solve;
    use crate::units::mbps;

    fn audit() -> MaxMinAudit {
        MaxMinAudit::default()
    }

    #[test]
    fn correct_allocation_passes() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0]); 4];
        let a = solve(&caps, &flows);
        assert!(audit().check(&caps, &flows, &a).is_empty());
    }

    #[test]
    fn infeasible_allocation_reports_overload() {
        let caps = [mbps(10.0)];
        let flows = vec![FlowSpec::greedy(vec![0]); 2];
        let a = Allocation { rates: vec![mbps(8.0), mbps(8.0)], residual: vec![0.0] };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter().any(|v| matches!(v, AuditViolation::Overload { resource: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn underused_allocation_reports_not_bottlenecked() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0])];
        let a = Allocation { rates: vec![mbps(10.0)], residual: vec![mbps(90.0)] };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter()
                .any(|v| matches!(v, AuditViolation::NotBottlenecked { flow: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn non_maxmin_allocation_reports_unequal_shares() {
        // Saturated link split 75/25 between equal-weight flows.
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0]); 2];
        let a = Allocation {
            rates: vec![mbps(75.0), mbps(25.0)],
            residual: vec![0.0],
        };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter()
                .any(|v| matches!(v, AuditViolation::UnequalShares { resource: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn cap_violation_reported() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::capped(vec![0], mbps(10.0))];
        let a = Allocation { rates: vec![mbps(20.0)], residual: vec![mbps(80.0)] };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter().any(|v| matches!(v, AuditViolation::CapExceeded { flow: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn negative_rate_reported() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0]), FlowSpec::greedy(vec![0])];
        let a = Allocation {
            rates: vec![mbps(-5.0), mbps(100.0)],
            residual: vec![mbps(5.0)],
        };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter().any(|v| matches!(v, AuditViolation::NegativeRate { flow: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn residual_mismatch_reported() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::capped(vec![0], mbps(30.0))];
        let a = Allocation { rates: vec![mbps(30.0)], residual: vec![mbps(10.0)] };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter()
                .any(|v| matches!(v, AuditViolation::ResidualMismatch { resource: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn constrained_infinite_rate_reported() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0])];
        let a = Allocation { rates: vec![f64::INFINITY], residual: vec![0.0] };
        let v = audit().check(&caps, &flows, &a);
        assert!(
            v.iter()
                .any(|v| matches!(v, AuditViolation::InfiniteConstrained { flow: 0 })),
            "{v:?}"
        );
    }

    #[test]
    fn clock_regression_detected() {
        let a = audit();
        assert!(a
            .check_clock(SimTime::from_secs(2), SimTime::from_secs(1))
            .is_some());
        assert!(a
            .check_clock(SimTime::from_secs(1), SimTime::from_secs(1))
            .is_none());
        assert!(a
            .check_clock(SimTime::from_secs(1), SimTime::from_secs(2))
            .is_none());
    }

    #[test]
    fn violations_render_readably() {
        let v = AuditViolation::Overload { resource: 3, load: 2.0, capacity: 1.0 };
        assert_eq!(v.to_string(), "resource 3 overloaded: 2 > 1");
        let v = AuditViolation::SolverDivergence { flow: 7, incremental: 2.0, full: 1.0 };
        assert_eq!(
            v.to_string(),
            "flow 7: incremental rate 2 diverges from full solve 1"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random problem: up to 8 resources, up to 12 flows (mirrors the
        /// solver's own property-test generator).
        fn arb_problem() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>)> {
            let caps = prop::collection::vec(1.0e6..1.0e9f64, 1..8);
            caps.prop_flat_map(|caps| {
                let n = caps.len();
                let flow = (
                    0.1..10.0f64,
                    prop::option::of(1.0e5..2.0e9f64),
                    prop::collection::btree_set(0..n, 1..=n.min(4)),
                )
                    .prop_map(|(weight, cap, res)| FlowSpec {
                        weight,
                        cap,
                        resources: res.into_iter().collect(),
                    });
                (Just(caps), prop::collection::vec(flow, 1..12))
            })
        }

        proptest! {
            #[test]
            fn solver_output_always_passes_audit((caps, flows) in arb_problem()) {
                let a = solve(&caps, &flows);
                let v = MaxMinAudit::default().check(&caps, &flows, &a);
                prop_assert!(v.is_empty(), "{v:?}");
            }

            #[test]
            fn audit_catches_injected_overload((caps, flows) in arb_problem()) {
                // Perturb a valid allocation: doubling the largest finite
                // rate must trip at least one invariant (overload, cap
                // exceeded, unequal shares, or residual mismatch).
                let mut a = solve(&caps, &flows);
                let victim = a
                    .rates
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.is_finite() && **r > 0.0)
                    .max_by(|x, y| x.1.total_cmp(y.1))
                    .map(|(i, _)| i);
                if let Some(i) = victim {
                    a.rates[i] *= 2.0;
                    let v = MaxMinAudit::default().check(&caps, &flows, &a);
                    prop_assert!(!v.is_empty(), "doubling rate {i} went unnoticed");
                }
            }
        }
    }
}
