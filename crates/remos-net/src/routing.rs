//! Shortest-path routing.
//!
//! Routes are computed per source with a Dijkstra variant that minimises
//! `(hop count, total latency, tie-break by node id)` — the testbed's
//! behaviour, where "latency between any pair of nodes is virtually the
//! same" and hop count dominates. Compute nodes never forward traffic
//! (§4.3: network nodes are responsible for forwarding), so interior path
//! nodes must be network nodes.
//!
//! The routing table is deterministic, which keeps whole-simulation runs
//! reproducible.

use crate::error::{NetError, Result};
use crate::topology::{DirLink, LinkId, NodeId, NodeKind, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A routed path between two compute nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    /// Source compute node.
    pub src: NodeId,
    /// Destination compute node.
    pub dst: NodeId,
    /// The directed interfaces traversed, in order.
    pub hops: Vec<DirLink>,
    /// Every node visited, starting with `src` and ending with `dst`.
    pub nodes: Vec<NodeId>,
}

impl Path {
    /// Number of links traversed.
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Total one-way latency along the path.
    pub fn latency(&self, topo: &Topology) -> crate::time::SimDuration {
        let mut total = crate::time::SimDuration::ZERO;
        for h in &self.hops {
            total += topo.link(h.link).latency;
        }
        total
    }

    /// The static bottleneck capacity (minimum link capacity on the path).
    pub fn capacity(&self, topo: &Topology) -> f64 {
        self.hops
            .iter()
            .map(|h| topo.link(h.link).capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Stable resource indices of the directed interfaces traversed, in
    /// hop order (see [`DirLink::index`]). These index the leading prefix
    /// of the simulator's capacity vector.
    pub fn dirlink_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.hops.iter().map(|h| h.index())
    }

    /// Interior (forwarding) nodes of the path — every node except the two
    /// endpoints. These are the nodes whose backplanes, when capped,
    /// contribute extra capacity resources.
    pub fn interior_nodes(&self) -> &[NodeId] {
        match self.nodes.len() {
            0..=2 => &[],
            n => &self.nodes[1..n - 1],
        }
    }
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    hops: u32,
    latency_ns: u64,
    node: NodeId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest cost pops first.
        (other.hops, other.latency_ns, other.node)
            .cmp(&(self.hops, self.latency_ns, self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Sentinel in the flat predecessor table: no predecessor link.
const NO_PREV: u32 = u32::MAX;

/// All-sources routing table over one topology.
///
/// Stored as two flat arrays indexed `src * n + node` (no per-source boxed
/// rows): one cache-friendly predecessor table (`u32::MAX` = none) and one
/// reachability bitmap. The per-source Dijkstra scratch (dist, done, heap)
/// is reused across sources during construction.
#[derive(Clone, Debug)]
pub struct Routing {
    /// Node count (row stride of the flat tables).
    n: usize,
    /// `prev[src * n + node]` = id of the link taken to reach `node` from
    /// its predecessor on the best path from `src`; [`NO_PREV`] if none.
    prev: Vec<u32>,
    /// `reachable[src * n + node]`.
    reachable: Vec<bool>,
}

impl Routing {
    /// Compute routes for every source node, all links up.
    pub fn new(topo: &Topology) -> Routing {
        Self::with_link_state(topo, None)
    }

    /// Compute routes honoring link state: `up[l]` false means link `l`
    /// is down and carries no routes. `None` means everything is up.
    pub fn with_link_state(topo: &Topology, up: Option<&[bool]>) -> Routing {
        if let Some(up) = up {
            debug_assert_eq!(up.len(), topo.link_count());
        }
        let n = topo.node_count();
        let mut table = Routing {
            n,
            prev: vec![NO_PREV; n * n],
            reachable: vec![false; n * n],
        };
        let mut dist = vec![(u32::MAX, u64::MAX); n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();
        for src in topo.node_ids() {
            table.single_source(topo, src, up, &mut dist, &mut done, &mut heap);
        }
        table
    }

    fn single_source(
        &mut self,
        topo: &Topology,
        src: NodeId,
        up: Option<&[bool]>,
        dist: &mut [(u32, u64)],
        done: &mut [bool],
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        let row = src.index() * self.n;
        let prev = &mut self.prev[row..row + self.n];
        dist.fill((u32::MAX, u64::MAX));
        done.fill(false);
        heap.clear();
        dist[src.index()] = (0, 0);
        heap.push(HeapEntry { hops: 0, latency_ns: 0, node: src });

        while let Some(HeapEntry { hops, latency_ns, node }) = heap.pop() {
            if done[node.index()] {
                continue;
            }
            done[node.index()] = true;
            // Hosts terminate paths: only the source host and network nodes
            // may forward.
            if node != src && topo.node(node).kind == NodeKind::Compute {
                continue;
            }
            for &(link, next) in topo.neighbors(node) {
                if done[next.index()] {
                    continue;
                }
                if let Some(up) = up {
                    if !up[link.index()] {
                        continue;
                    }
                }
                let l = topo.link(link);
                let cand = (hops + 1, latency_ns + l.latency.as_nanos());
                if cand < dist[next.index()] {
                    dist[next.index()] = cand;
                    prev[next.index()] = link.index() as u32;
                    heap.push(HeapEntry { hops: cand.0, latency_ns: cand.1, node: next });
                }
            }
        }
        for (i, &(h, _)) in dist.iter().enumerate() {
            self.reachable[row + i] = h != u32::MAX;
        }
    }

    #[inline]
    fn prev_link(&self, src: NodeId, node: NodeId) -> Option<LinkId> {
        match self.prev[src.index() * self.n + node.index()] {
            NO_PREV => None,
            raw => Some(LinkId(raw)),
        }
    }

    /// True if `dst` is reachable from `src` (respecting the no-forwarding
    /// rule for hosts).
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.reachable[src.index() * self.n + dst.index()]
    }

    /// First hop out of `src` toward `dst`: `(link, next node)`. `None`
    /// when unreachable or `src == dst`. Works for *any* source node
    /// (including routers) — the data behind `ipRouteTable` entries.
    pub fn next_hop(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<(LinkId, NodeId)> {
        if src == dst || !self.reachable(src, dst) {
            return None;
        }
        let mut cur = dst;
        loop {
            let link = self.prev_link(src, cur)?;
            let from = topo.link(link).opposite(cur);
            if from == src {
                return Some((link, cur));
            }
            cur = from;
        }
    }

    /// The routed path from `src` to `dst`.
    ///
    /// Both endpoints must be compute nodes; errors with
    /// [`NetError::NoRoute`] if disconnected.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Result<Path> {
        let mut path = Path { src, dst, hops: Vec::new(), nodes: Vec::new() };
        self.path_into(topo, src, dst, &mut path)?;
        Ok(path)
    }

    /// Write the routed path from `src` to `dst` into `out`, reusing its
    /// hop and node buffers (the allocation-free variant of
    /// [`path`](Self::path) the engine's steady-state flow admission uses).
    /// On error `out` is left cleared.
    pub fn path_into(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        out: &mut Path,
    ) -> Result<()> {
        out.src = src;
        out.dst = dst;
        out.hops.clear();
        out.nodes.clear();
        topo.try_node(src)?;
        topo.try_node(dst)?;
        if topo.node(src).kind != NodeKind::Compute {
            return Err(NetError::NotComputeNode(src));
        }
        if topo.node(dst).kind != NodeKind::Compute {
            return Err(NetError::NotComputeNode(dst));
        }
        if src == dst {
            out.nodes.push(src);
            return Ok(());
        }
        if !self.reachable(src, dst) {
            return Err(NetError::NoRoute { src, dst });
        }
        // Walk predecessors dst -> src, then reverse in place.
        out.nodes.push(dst);
        let mut cur = dst;
        while cur != src {
            let link = self.prev_link(src, cur)
                .ok_or_else(|| NetError::Internal(format!("routing table corrupt at {cur:?}")))?;
            let l = topo.link(link);
            let from = l.opposite(cur);
            out.hops.push(DirLink { link, dir: l.direction_from(from) });
            out.nodes.push(from);
            cur = from;
        }
        out.hops.reverse();
        out.nodes.reverse();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::TopologyBuilder;
    use crate::units::mbps;

    /// Line: h1 - r1 - r2 - h2, plus a slow shortcut h1 - r2.
    fn line_with_shortcut() -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let lat = SimDuration::from_micros(100);
        b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, r2, mbps(100.0), lat).unwrap();
        b.link(r2, h2, mbps(100.0), lat).unwrap();
        (b.build().unwrap(), h1, h2)
    }

    #[test]
    fn shortest_path_line() {
        let (t, h1, h2) = line_with_shortcut();
        let r = Routing::new(&t);
        let p = r.path(&t, h1, h2).unwrap();
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.nodes[0], h1);
        assert_eq!(*p.nodes.last().unwrap(), h2);
        assert_eq!(p.latency(&t), SimDuration::from_micros(300));
        assert_eq!(p.capacity(&t), mbps(100.0));
    }

    #[test]
    fn trivial_path() {
        let (t, h1, _) = line_with_shortcut();
        let r = Routing::new(&t);
        let p = r.path(&t, h1, h1).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.nodes, vec![h1]);
    }

    #[test]
    fn hosts_do_not_forward() {
        // h1 - h2 - h3 chain: h1 cannot reach h3 through host h2.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        b.link(h1, h2, mbps(100.0), SimDuration::ZERO).unwrap();
        b.link(h2, h3, mbps(100.0), SimDuration::ZERO).unwrap();
        let t = b.build().unwrap();
        let r = Routing::new(&t);
        assert!(r.path(&t, h1, h2).is_ok());
        assert!(matches!(
            r.path(&t, h1, h3),
            Err(NetError::NoRoute { .. })
        ));
    }

    #[test]
    fn network_endpoint_rejected() {
        let (t, h1, _) = line_with_shortcut();
        let r = Routing::new(&t);
        let r1 = t.lookup("r1").unwrap();
        assert!(matches!(
            r.path(&t, h1, r1),
            Err(NetError::NotComputeNode(_))
        ));
    }

    #[test]
    fn prefers_fewer_hops_over_latency() {
        // Two routes h1->h2: via r1 (2 hops, high latency) or via r2-r3
        // (3 hops, tiny latency). Hop count wins.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let r3 = b.network("r3");
        let slow = SimDuration::from_millis(10);
        let fast = SimDuration::from_nanos(1);
        b.link(h1, r1, mbps(100.0), slow).unwrap();
        b.link(r1, h2, mbps(100.0), slow).unwrap();
        b.link(h1, r2, mbps(100.0), fast).unwrap();
        b.link(r2, r3, mbps(100.0), fast).unwrap();
        b.link(r3, h2, mbps(100.0), fast).unwrap();
        let t = b.build().unwrap();
        let routing = Routing::new(&t);
        let p = routing.path(&t, h1, h2).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert!(p.nodes.contains(&r1));
    }

    #[test]
    fn prefers_lower_latency_at_equal_hops() {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let fast = b.network("fast");
        let slow = b.network("slow");
        b.link(h1, slow, mbps(100.0), SimDuration::from_millis(5)).unwrap();
        b.link(slow, h2, mbps(100.0), SimDuration::from_millis(5)).unwrap();
        b.link(h1, fast, mbps(100.0), SimDuration::from_micros(1)).unwrap();
        b.link(fast, h2, mbps(100.0), SimDuration::from_micros(1)).unwrap();
        let t = b.build().unwrap();
        let routing = Routing::new(&t);
        let p = routing.path(&t, h1, h2).unwrap();
        assert!(p.nodes.contains(&fast));
        assert!(!p.nodes.contains(&slow));
    }

    #[test]
    fn next_hop_from_any_node() {
        let (t, h1, h2) = line_with_shortcut();
        let r = Routing::new(&t);
        let r1 = t.lookup("r1").unwrap();
        let r2 = t.lookup("r2").unwrap();
        // From the host: first hop is its access link toward r1.
        let (_, next) = r.next_hop(&t, h1, h2).unwrap();
        assert_eq!(next, r1);
        // From a router: toward h2 via r2.
        let (_, next) = r.next_hop(&t, r1, h2).unwrap();
        assert_eq!(next, r2);
        // Direct neighbor.
        let (_, next) = r.next_hop(&t, r2, h2).unwrap();
        assert_eq!(next, h2);
        // Degenerate cases.
        assert!(r.next_hop(&t, h1, h1).is_none());
    }

    #[test]
    fn path_direction_consistency() {
        let (t, h1, h2) = line_with_shortcut();
        let r = Routing::new(&t);
        let p = r.path(&t, h1, h2).unwrap();
        // Each hop must leave the node we are currently at.
        let mut at = h1;
        for hop in &p.hops {
            let l = t.link(hop.link);
            assert_eq!(l.tail(hop.dir), at);
            at = l.head(hop.dir);
        }
        assert_eq!(at, h2);
    }

    #[test]
    fn link_state_reroutes_and_disconnects() {
        // h1 - r1 - h2 with a backup path h1 - r2 - r3 - h2.
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let r3 = b.network("r3");
        let lat = SimDuration::from_micros(10);
        let l_a = b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, h2, mbps(100.0), lat).unwrap();
        b.link(h1, r2, mbps(100.0), lat).unwrap();
        b.link(r2, r3, mbps(100.0), lat).unwrap();
        b.link(r3, h2, mbps(100.0), lat).unwrap();
        let t = b.build().unwrap();

        let mut up = vec![true; t.link_count()];
        let all_up = Routing::with_link_state(&t, Some(&up));
        assert_eq!(all_up.path(&t, h1, h2).unwrap().hop_count(), 2);

        // Primary access link down: the 3-hop backup is used.
        up[l_a.index()] = false;
        let degraded = Routing::with_link_state(&t, Some(&up));
        let p = degraded.path(&t, h1, h2).unwrap();
        assert_eq!(p.hop_count(), 3);
        assert!(p.nodes.contains(&r2));

        // Backup down too: disconnected.
        up[2] = false; // h1 - r2
        let cut = Routing::with_link_state(&t, Some(&up));
        assert!(matches!(cut.path(&t, h1, h2), Err(NetError::NoRoute { .. })));
    }

    #[test]
    fn reverse_path_mirrors_forward() {
        let (t, h1, h2) = line_with_shortcut();
        let r = Routing::new(&t);
        let fwd = r.path(&t, h1, h2).unwrap();
        let rev = r.path(&t, h2, h1).unwrap();
        assert_eq!(fwd.hop_count(), rev.hop_count());
        let mut rn = rev.nodes.clone();
        rn.reverse();
        assert_eq!(fwd.nodes, rn);
    }
}
