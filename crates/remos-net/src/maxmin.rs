//! Weighted max-min fair bandwidth allocation.
//!
//! This is the sharing model the paper adopts (§4.2): "In general Remos
//! will assume that, all else being equal, the bottleneck link bandwidth
//! will be shared equally by all flows (not being bottlenecked elsewhere)",
//! i.e. the max-min fair share policy of Jaffe \[14\], the basis of ATM ABR
//! flow control \[16\].
//!
//! The solver is the classic *progressive filling* (water-filling)
//! algorithm generalised with per-flow weights (for the paper's *variable*
//! flows, whose "bandwidths … will share available bandwidth
//! proportionally") and per-flow rate caps (for *fixed* flows and
//! application-limited sources):
//!
//! 1. All flows' rates rise together, each at speed proportional to its
//!    weight.
//! 2. When a resource saturates, every flow crossing it freezes.
//! 3. When a flow reaches its cap, it freezes.
//! 4. Repeat with the remaining flows until all are frozen.
//!
//! "Resources" are abstract capacities: the engine maps every directed link
//! interface and every capped switch backplane to one resource, so Fig 1's
//! internal-bandwidth semantics fall out naturally.

/// A flow to be allocated.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Relative weight (> 0). Variable flows with requested bandwidths
    /// 3, 4.5, 9 Mbps are expressed as weights 3 : 4.5 : 9 (§4.2 example).
    pub weight: f64,
    /// Optional absolute rate cap in bits/s (fixed flows, CBR sources).
    pub cap: Option<f64>,
    /// Indices of the resources this flow crosses. An empty path means the
    /// flow is limited only by its cap (or unbounded).
    pub resources: Vec<usize>,
}

impl FlowSpec {
    /// Unweighted, uncapped flow over the given resources.
    pub fn greedy(resources: Vec<usize>) -> Self {
        FlowSpec { weight: 1.0, cap: None, resources }
    }

    /// Unweighted flow with a rate cap.
    pub fn capped(resources: Vec<usize>, cap: f64) -> Self {
        FlowSpec { weight: 1.0, cap: Some(cap), resources }
    }
}

/// Outcome of an allocation.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Rate assigned to each flow, same order as the input.
    pub rates: Vec<f64>,
    /// Remaining capacity of each resource after allocation.
    pub residual: Vec<f64>,
}

/// Relative tolerance used when checking saturation / feasibility.
pub const EPS: f64 = 1e-9;

/// Solve the weighted max-min fair allocation problem.
///
/// `capacities[r]` is the capacity of resource `r` in bits/s; flows index
/// into this slice. Panics (debug assertions) on non-positive weights or
/// out-of-range resource indices; release builds treat bad indices as a
/// logic error via indexing panics.
pub fn solve(capacities: &[f64], flows: &[FlowSpec]) -> Allocation {
    let mut rates = vec![0.0_f64; flows.len()];
    let mut residual: Vec<f64> = capacities.to_vec();
    if flows.is_empty() {
        return Allocation { rates, residual };
    }
    for f in flows {
        debug_assert!(f.weight > 0.0, "flow weight must be positive");
    }

    // Sum of weights of active flows on each resource.
    let mut weight_on: Vec<f64> = vec![0.0; capacities.len()];
    let mut active: Vec<bool> = vec![true; flows.len()];
    let mut n_active = flows.len();
    for f in flows {
        for &r in &f.resources {
            weight_on[r] += f.weight;
        }
    }
    // Uncapped flows that cross no resource would rise forever; treat as
    // unconstrained and leave them at infinity.
    for (i, f) in flows.iter().enumerate() {
        if f.resources.is_empty() && f.cap.is_none() {
            rates[i] = f64::INFINITY;
            active[i] = false;
            n_active -= 1;
        }
    }

    // `level` is the common normalised fill level: every active flow i has
    // rate = weight_i * level.
    let mut level = 0.0_f64;
    while n_active > 0 {
        // Largest increment before some resource saturates.
        let mut max_dlevel = f64::INFINITY;
        for (r, &w) in weight_on.iter().enumerate() {
            if w > EPS {
                max_dlevel = max_dlevel.min(residual[r] / w);
            }
        }
        // ... or some active flow reaches its cap.
        for (i, f) in flows.iter().enumerate() {
            if active[i] {
                if let Some(cap) = f.cap {
                    max_dlevel = max_dlevel.min((cap - rates[i]) / f.weight);
                }
            }
        }
        if !max_dlevel.is_finite() {
            // No resource constrains the remaining flows and none has a cap:
            // they are unbounded.
            for (i, _) in flows.iter().enumerate() {
                if active[i] {
                    rates[i] = f64::INFINITY;
                    active[i] = false;
                }
            }
            break;
        }
        let dlevel = max_dlevel.max(0.0);
        level += dlevel;

        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if active[i] {
                rates[i] += f.weight * dlevel;
                for &r in &f.resources {
                    residual[r] -= f.weight * dlevel;
                }
            }
        }
        let _ = level;

        // Freeze flows at their cap or on saturated resources.
        for (i, f) in flows.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let capped = f.cap.is_some_and(|c| rates[i] >= c - c.abs().max(1.0) * EPS);
            let saturated = f.resources.iter().any(|&r| {
                residual[r] <= capacities[r].abs().max(1.0) * EPS
            });
            if capped || saturated {
                active[i] = false;
                n_active -= 1;
                for &r in &f.resources {
                    weight_on[r] -= f.weight;
                }
            }
        }
    }

    // Clamp numerical dust.
    for r in residual.iter_mut() {
        if *r < 0.0 {
            *r = 0.0;
        }
    }
    Allocation { rates, residual }
}

/// Check the max-min invariants of an allocation; returns a human-readable
/// violation description, or `None` if the allocation is valid. Used by
/// property tests and debug assertions in the engine.
///
/// This is a thin wrapper over [`MaxMinAudit`](crate::audit::MaxMinAudit),
/// which performs the full typed check (feasibility, bottleneck
/// saturation, equal weighted shares, residual conservation); the first
/// violation is rendered as a string.
pub fn validate(capacities: &[f64], flows: &[FlowSpec], alloc: &Allocation) -> Option<String> {
    crate::audit::MaxMinAudit::default()
        .check(capacities, flows, alloc)
        .first()
        .map(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::mbps;

    fn assert_valid(caps: &[f64], flows: &[FlowSpec], alloc: &Allocation) {
        if let Some(msg) = validate(caps, flows, alloc) {
            panic!("invalid allocation: {msg}\nrates={:?}", alloc.rates);
        }
    }

    #[test]
    fn single_flow_gets_full_link() {
        let caps = [mbps(100.0)];
        let flows = [FlowSpec::greedy(vec![0])];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(100.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn equal_split_on_shared_bottleneck() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0]); 4];
        let a = solve(&caps, &flows);
        for r in &a.rates {
            assert!((r - mbps(25.0)).abs() < 1.0);
        }
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn paper_variable_flow_example() {
        // §4.2: "three flows may have bandwidth requirements of 3, 4.5, and
        // 9 Mbps relative to each other; the result … may be that the flows
        // will get 1, 1.5 and 3 Mbps respectively" — i.e. a 5.5 Mbps
        // bottleneck shared proportionally.
        let caps = [mbps(5.5)];
        let flows = vec![
            FlowSpec { weight: 3.0, cap: None, resources: vec![0] },
            FlowSpec { weight: 4.5, cap: None, resources: vec![0] },
            FlowSpec { weight: 9.0, cap: None, resources: vec![0] },
        ];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(1.0)).abs() < 1.0, "{:?}", a.rates);
        assert!((a.rates[1] - mbps(1.5)).abs() < 1.0);
        assert!((a.rates[2] - mbps(3.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn capped_flow_releases_bandwidth() {
        // Two flows on a 100 Mbps link, one capped at 10: the other gets 90.
        let caps = [mbps(100.0)];
        let flows = vec![
            FlowSpec::capped(vec![0], mbps(10.0)),
            FlowSpec::greedy(vec![0]),
        ];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(10.0)).abs() < 1.0);
        assert!((a.rates[1] - mbps(90.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn classic_three_link_parking_lot() {
        // Flow 0 crosses links 0,1,2; flows 1,2,3 each cross one link.
        // Max-min: everyone gets 50 on 100 Mbps links.
        let caps = [mbps(100.0); 3];
        let flows = vec![
            FlowSpec::greedy(vec![0, 1, 2]),
            FlowSpec::greedy(vec![0]),
            FlowSpec::greedy(vec![1]),
            FlowSpec::greedy(vec![2]),
        ];
        let a = solve(&caps, &flows);
        for r in &a.rates {
            assert!((r - mbps(50.0)).abs() < 1.0, "{:?}", a.rates);
        }
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn bottleneck_elsewhere_frees_share() {
        // Link 0: 10 Mbps, link 1: 100 Mbps. Flow A crosses both; flow B
        // crosses link 1 only. A is limited to 10 by link 0; B picks up 90.
        let caps = [mbps(10.0), mbps(100.0)];
        let flows = vec![
            FlowSpec::greedy(vec![0, 1]),
            FlowSpec::greedy(vec![1]),
        ];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(10.0)).abs() < 1.0);
        assert!((a.rates[1] - mbps(90.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let caps: [f64; 0] = [];
        let flows = [FlowSpec::greedy(vec![])];
        let a = solve(&caps, &flows);
        assert!(a.rates[0].is_infinite());
    }

    #[test]
    fn capped_pathless_flow_gets_cap() {
        let caps: [f64; 0] = [];
        let flows = [FlowSpec::capped(vec![], mbps(3.0))];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(3.0)).abs() < 1.0);
    }

    #[test]
    fn no_flows() {
        let caps = [mbps(100.0)];
        let a = solve(&caps, &[]);
        assert!(a.rates.is_empty());
        assert_eq!(a.residual[0], mbps(100.0));
    }

    #[test]
    fn zero_capacity_resource() {
        let caps = [0.0];
        let flows = [FlowSpec::greedy(vec![0])];
        let a = solve(&caps, &flows);
        assert!(a.rates[0].abs() < EPS);
    }

    #[test]
    fn repeated_resource_in_path_counts_twice() {
        // A flow that enters and leaves the same backplane: listing the
        // resource twice halves its share of that resource.
        let caps = [mbps(100.0)];
        let flows = [FlowSpec::greedy(vec![0, 0])];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(50.0)).abs() < 1.0);
    }

    #[test]
    fn residual_reported() {
        let caps = [mbps(100.0)];
        let flows = [FlowSpec::capped(vec![0], mbps(30.0))];
        let a = solve(&caps, &flows);
        assert!((a.residual[0] - mbps(70.0)).abs() < 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random problem: up to 8 resources, up to 12 flows.
        fn arb_problem() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>)> {
            let caps = prop::collection::vec(1.0e6..1.0e9f64, 1..8);
            caps.prop_flat_map(|caps| {
                let n = caps.len();
                let flow = (
                    0.1..10.0f64,
                    prop::option::of(1.0e5..2.0e9f64),
                    prop::collection::btree_set(0..n, 1..=n.min(4)),
                )
                    .prop_map(|(weight, cap, res)| FlowSpec {
                        weight,
                        cap,
                        resources: res.into_iter().collect(),
                    });
                (Just(caps), prop::collection::vec(flow, 1..12))
            })
        }

        proptest! {
            #[test]
            fn solver_output_is_valid((caps, flows) in arb_problem()) {
                let a = solve(&caps, &flows);
                prop_assert!(validate(&caps, &flows, &a).is_none(),
                    "{:?}", validate(&caps, &flows, &a));
            }

            #[test]
            fn allocation_is_homogeneous((caps, flows) in arb_problem()) {
                // Scaling every capacity *and* every cap by k scales the
                // whole allocation by k. (Note: scaling capacities alone is
                // NOT monotone for capped flows — freezing order changes —
                // which is why the stronger property is not asserted.)
                let k = 3.0;
                let a1 = solve(&caps, &flows);
                let caps2: Vec<f64> = caps.iter().map(|c| c * k).collect();
                let flows2: Vec<FlowSpec> = flows
                    .iter()
                    .map(|f| FlowSpec {
                        weight: f.weight,
                        cap: f.cap.map(|c| c * k),
                        resources: f.resources.clone(),
                    })
                    .collect();
                let a2 = solve(&caps2, &flows2);
                for (r1, r2) in a1.rates.iter().zip(&a2.rates) {
                    prop_assert!((r2 - k * r1).abs() <= (k * r1).abs().max(1.0) * 1e-6,
                        "not homogeneous: {r1} vs {r2}");
                }
            }

            #[test]
            fn removal_monotone_on_single_bottleneck(
                cap in 1.0e6..1.0e9f64,
                n in 2usize..10,
            ) {
                // On a single shared resource, removing an unweighted,
                // uncapped competitor weakly increases every remaining rate.
                // (This is FALSE for general multi-link networks — removing
                // a flow on link L can grow a multi-link flow on L that then
                // squeezes a third flow elsewhere — so the property is only
                // asserted in the single-bottleneck setting where it is a
                // theorem.)
                let caps = [cap];
                let flows = vec![FlowSpec::greedy(vec![0]); n];
                let a_all = solve(&caps, &flows);
                let a_red = solve(&caps, &flows[1..]);
                for (i, r) in a_red.rates.iter().enumerate() {
                    let before = a_all.rates[i + 1];
                    prop_assert!(*r >= before - before.abs().max(1.0) * 1e-6);
                }
            }

            #[test]
            fn solver_is_deterministic((caps, flows) in arb_problem()) {
                let a1 = solve(&caps, &flows);
                let a2 = solve(&caps, &flows);
                prop_assert_eq!(a1.rates, a2.rates);
                prop_assert_eq!(a1.residual, a2.residual);
            }
        }
    }
}
