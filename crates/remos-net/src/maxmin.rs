//! Weighted max-min fair bandwidth allocation.
//!
//! This is the sharing model the paper adopts (§4.2): "In general Remos
//! will assume that, all else being equal, the bottleneck link bandwidth
//! will be shared equally by all flows (not being bottlenecked elsewhere)",
//! i.e. the max-min fair share policy of Jaffe \[14\], the basis of ATM ABR
//! flow control \[16\].
//!
//! The solver is the classic *progressive filling* (water-filling)
//! algorithm generalised with per-flow weights (for the paper's *variable*
//! flows, whose "bandwidths … will share available bandwidth
//! proportionally") and per-flow rate caps (for *fixed* flows and
//! application-limited sources):
//!
//! 1. All flows' rates rise together, each at speed proportional to its
//!    weight.
//! 2. When a resource saturates, every flow crossing it freezes.
//! 3. When a flow reaches its cap, it freezes.
//! 4. Repeat with the remaining flows until all are frozen.
//!
//! "Resources" are abstract capacities: the engine maps every directed link
//! interface and every capped switch backplane to one resource, so Fig 1's
//! internal-bandwidth semantics fall out naturally.
//!
//! ## Component decomposition and incremental solving
//!
//! The max-min problem decomposes exactly over the *connected components*
//! of the flow/resource sharing graph: two flows interact only if they
//! transitively share a resource, so filling each component in isolation
//! yields the same allocation as filling the whole problem at once. The
//! solver exploits this in two ways:
//!
//! * [`solve`] (and [`Solver::solve_refs`]) fills each component
//!   independently, always iterating a component's flows in ascending
//!   input order. Because the arithmetic performed on a component depends
//!   only on that component's flows and resources, the result for a
//!   component is **bit-identical** no matter which other components exist.
//! * [`solve_scoped`] re-solves only the components reachable from a set
//!   of *touched* resources, copying every other flow's rate and every
//!   other resource's residual verbatim from a previous allocation. As
//!   long as the untouched components are genuinely unchanged, the result
//!   is bit-identical to a full [`solve`] — the property the engine's
//!   incremental mode and the determinism digests rely on, and which the
//!   property tests below pin down with [`f64::to_bits`].
//!
//! [`Solver`] owns reusable scratch buffers (CSR resource lists, interning
//! marks, active-flow worklists) so steady-state re-solves allocate
//! nothing; the engine keeps one `Solver` alive for the whole simulation.

/// A flow to be allocated.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Relative weight (> 0). Variable flows with requested bandwidths
    /// 3, 4.5, 9 Mbps are expressed as weights 3 : 4.5 : 9 (§4.2 example).
    pub weight: f64,
    /// Optional absolute rate cap in bits/s (fixed flows, CBR sources).
    pub cap: Option<f64>,
    /// Indices of the resources this flow crosses. An empty path means the
    /// flow is limited only by its cap (or unbounded).
    pub resources: Vec<usize>,
}

impl FlowSpec {
    /// Unweighted, uncapped flow over the given resources.
    pub fn greedy(resources: Vec<usize>) -> Self {
        FlowSpec { weight: 1.0, cap: None, resources }
    }

    /// Unweighted flow with a rate cap.
    pub fn capped(resources: Vec<usize>, cap: f64) -> Self {
        FlowSpec { weight: 1.0, cap: Some(cap), resources }
    }

    /// Borrowed view of this flow, for allocation-free callers.
    pub fn as_ref(&self) -> FlowRef<'_> {
        FlowRef { weight: self.weight, cap: self.cap, resources: &self.resources }
    }
}

/// Borrowed view of one flow. The incremental engine and the modeler keep
/// flows in their own long-lived structures; `FlowRef` lets them hand the
/// solver a window onto those without cloning each resource list per solve.
#[derive(Clone, Copy, Debug)]
pub struct FlowRef<'a> {
    /// Relative weight (> 0).
    pub weight: f64,
    /// Optional absolute rate cap in bits/s.
    pub cap: Option<f64>,
    /// Indices of the resources this flow crosses.
    pub resources: &'a [usize],
}

/// Outcome of an allocation.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Rate assigned to each flow, same order as the input.
    pub rates: Vec<f64>,
    /// Remaining capacity of each resource after allocation.
    pub residual: Vec<f64>,
}

/// Relative tolerance used when checking saturation / feasibility.
pub const EPS: f64 = 1e-9;

/// Solve the weighted max-min fair allocation problem.
///
/// `capacities[r]` is the capacity of resource `r` in bits/s; flows index
/// into this slice. Panics (debug assertions) on non-positive weights or
/// out-of-range resource indices; release builds treat bad indices as a
/// logic error via indexing panics.
pub fn solve(capacities: &[f64], flows: &[FlowSpec]) -> Allocation {
    let refs: Vec<FlowRef<'_>> = flows.iter().map(FlowSpec::as_ref).collect();
    Solver::new().solve_refs(capacities, &refs)
}

/// Re-solve only the part of the problem reachable from `touched` resources,
/// carrying every other rate and residual over from `prev` verbatim.
///
/// `prev` must be an allocation of a problem that differs from
/// `(capacities, flows)` only inside the components reachable from
/// `touched`: every flow whose weight, cap, or resource list changed (and
/// the old resources of any rerouted or removed flow) must be covered by
/// `touched`, and `prev.rates` must already be aligned with `flows` (the
/// caller inserts a placeholder for a new flow and drops the entry of a
/// removed one). Pathless flows are always recomputed — they are not
/// reachable through any resource. Under those conditions the result is
/// bit-identical to `solve(capacities, flows)`; the property tests assert
/// this with `to_bits`.
///
/// This entry point rebuilds the resource-membership index from scratch
/// (O(total path length)), so it is the *reference* incremental solver used
/// by tests and one-shot callers; the engine maintains its membership
/// incrementally and drives [`Solver`] directly on the affected component.
pub fn solve_scoped(
    capacities: &[f64],
    flows: &[FlowSpec],
    touched: &[usize],
    prev: &Allocation,
) -> Allocation {
    let refs: Vec<FlowRef<'_>> = flows.iter().map(FlowSpec::as_ref).collect();
    Solver::new().solve_scoped_refs(capacities, &refs, touched, prev)
}

/// Reusable water-filling solver.
///
/// Holds every scratch buffer the fill loop needs (CSR flow→resource lists,
/// resource interning marks, active worklists), so repeated solves against
/// the same `Solver` stop allocating once the buffers have grown to the
/// working-set size. The low-level component API
/// ([`begin_component`](Solver::begin_component) /
/// [`push_flow`](Solver::push_flow) / [`run_fill`](Solver::run_fill)) is
/// what the engine's incremental path drives; [`solve_refs`](Solver::solve_refs)
/// and [`solve_scoped_refs`](Solver::solve_scoped_refs) are the batch
/// entry points layered on top of it.
#[derive(Debug, Default)]
pub struct Solver {
    // --- current component (local index space) ---
    /// Per-flow weight.
    weights: Vec<f64>,
    /// Per-flow cap; `f64::INFINITY` encodes "uncapped".
    caps: Vec<f64>,
    /// CSR offsets into `ridx`, length `flows + 1`.
    roff: Vec<usize>,
    /// Concatenated local resource indices of every flow's path.
    ridx: Vec<usize>,
    /// Global resource id of each local resource, in first-touch order.
    lres: Vec<usize>,
    /// Capacity of each local resource.
    lcap: Vec<f64>,
    /// Residual capacity of each local resource (output).
    lresid: Vec<f64>,
    /// Allocated rate of each local flow (output).
    lrates: Vec<f64>,
    // --- fill scratch ---
    weight_on: Vec<f64>,
    is_active: Vec<bool>,
    active: Vec<usize>,
    capped: Vec<usize>,
    /// CSR offsets into `mmemb`, length `lres + 1`: local resource → flows.
    moff: Vec<usize>,
    /// Concatenated local flow indices crossing each local resource,
    /// ascending within each resource.
    mmemb: Vec<usize>,
    /// Cursor scratch for building `mmemb`.
    mcur: Vec<usize>,
    /// Per-local-resource saturation threshold, precomputed once per fill
    /// (`|cap|.max(1.0) * EPS` — the exact expression the per-round scan
    /// used to evaluate inline, so the comparison bits are unchanged).
    sthr: Vec<f64>,
    /// Local resources that crossed their saturation threshold this round.
    newly_sat: Vec<usize>,
    /// Per-local-resource count of still-active flows crossing it.
    rcount: Vec<u32>,
    /// Local resources with at least one active flow (`rcount > 0`),
    /// pruned as flows freeze. Only these can change residual or weight,
    /// so the per-round min/saturation scans are restricted to them.
    live: Vec<usize>,
    /// Flows to freeze this round, sorted ascending before processing so
    /// the `weight_on` subtraction order matches the historical
    /// all-active-flows `retain` scan bit for bit.
    freeze: Vec<usize>,
    // --- resource interning (global index space) ---
    res_mark: Vec<u64>,
    res_local: Vec<usize>,
    generation: u64,
}

impl Solver {
    /// Fresh solver with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new component. `n_resources` is the size of the *global*
    /// capacity vector (used to size the interning marks).
    pub fn begin_component(&mut self, n_resources: usize) {
        self.generation += 1;
        if self.res_mark.len() < n_resources {
            self.res_mark.resize(n_resources, 0);
            self.res_local.resize(n_resources, 0);
        }
        self.weights.clear();
        self.caps.clear();
        self.roff.clear();
        self.roff.push(0);
        self.ridx.clear();
        self.lres.clear();
        self.lcap.clear();
        self.lresid.clear();
        self.lrates.clear();
    }

    /// Add one flow to the current component. Callers must push a
    /// component's flows in **ascending global order** — the fill's
    /// floating-point accumulation order (and hence bit-exact
    /// reproducibility between full and scoped solves) depends on it.
    pub fn push_flow(
        &mut self,
        weight: f64,
        cap: Option<f64>,
        resources: &[usize],
        capacities: &[f64],
    ) {
        debug_assert!(weight > 0.0, "flow weight must be positive");
        self.weights.push(weight);
        self.caps.push(cap.unwrap_or(f64::INFINITY));
        for &r in resources {
            debug_assert!(r < capacities.len(), "resource index out of range");
            let local = if self.res_mark[r] == self.generation {
                self.res_local[r]
            } else {
                let l = self.lres.len();
                self.res_mark[r] = self.generation;
                self.res_local[r] = l;
                self.lres.push(r);
                self.lcap.push(capacities[r]);
                self.lresid.push(capacities[r]);
                l
            };
            self.ridx.push(local);
        }
        self.roff.push(self.ridx.len());
    }

    /// Run progressive filling on the current component. Results are read
    /// back through [`component_rates`](Solver::component_rates) and
    /// [`component_residuals`](Solver::component_residuals).
    ///
    /// Each round scans the component's resources and the still-active
    /// flows, then freezes flows through a resource→flow membership index:
    /// only the members of resources that saturated *this* round are
    /// examined, instead of re-scanning every active flow's whole path.
    /// This is exact, not approximate — once a resource saturates, every
    /// active flow crossing it freezes in that same round, so an active
    /// flow can never cross a previously saturated resource. The freeze
    /// list is sorted ascending before weights are retired, so the
    /// floating-point subtraction order on `weight_on` (and hence every
    /// dlevel and every rate) is bit-identical to the historical
    /// scan-all-active-flows formulation.
    pub fn run_fill(&mut self) {
        let nf = self.weights.len();
        let nr = self.lres.len();
        self.lrates.clear();
        self.lrates.resize(nf, 0.0);
        self.is_active.clear();
        self.is_active.resize(nf, true);
        self.active.clear();
        self.capped.clear();
        for i in 0..nf {
            self.active.push(i);
            if self.caps[i].is_finite() {
                self.capped.push(i);
            }
        }
        self.weight_on.clear();
        self.weight_on.resize(nr, 0.0);
        for i in 0..nf {
            for k in self.roff[i]..self.roff[i + 1] {
                self.weight_on[self.ridx[k]] += self.weights[i];
            }
        }
        // Local resource→flow membership (CSR), ascending flow order within
        // each resource because flows are visited in push order.
        self.moff.clear();
        self.moff.resize(nr + 1, 0);
        for &r in &self.ridx {
            self.moff[r + 1] += 1;
        }
        for r in 0..nr {
            self.moff[r + 1] += self.moff[r];
        }
        self.mmemb.clear();
        self.mmemb.resize(self.ridx.len(), 0);
        self.mcur.clear();
        self.mcur.extend_from_slice(&self.moff[..nr]);
        for i in 0..nf {
            for k in self.roff[i]..self.roff[i + 1] {
                let r = self.ridx[k];
                self.mmemb[self.mcur[r]] = i;
                self.mcur[r] += 1;
            }
        }
        self.sthr.clear();
        self.sthr.extend(self.lcap.iter().map(|c| c.abs().max(1.0) * EPS));
        // Active-flow occupancy per local resource: once a resource's last
        // active flow freezes, its residual and weight can never change, so
        // it drops out of the per-round scans. (Its leftover `weight_on` is
        // cancellation dust far below `EPS` for any realistic weights, so
        // the historical full scan skipped it too.)
        self.rcount.clear();
        self.rcount.resize(nr, 0);
        for &r in &self.ridx {
            self.rcount[r] += 1;
        }
        self.live.clear();
        self.live.extend(0..nr);

        while !self.active.is_empty() {
            // Largest increment before some resource saturates. The exact
            // division — the scan's dominant cost — only runs for genuine
            // candidates: whenever `resid > bound * w` the quotient
            // provably rounds to at least the running minimum (`bound`
            // carries a relative margin of 1e-12, orders of magnitude
            // above the 2^-53 product/quotient rounding), so skipping it
            // cannot change the min and the result is bit-identical to
            // dividing everywhere. `bound` stays infinite (screen off)
            // until the running minimum is comfortably normal, keeping
            // the margin argument valid for zero/negative/subnormal
            // minima.
            let mut max_dlevel = f64::INFINITY;
            let mut bound = f64::INFINITY;
            for &r in &self.live {
                let w = self.weight_on[r];
                if w > EPS && self.lresid[r] <= bound * w {
                    let q = self.lresid[r] / w;
                    if q < max_dlevel {
                        max_dlevel = q;
                        bound = if q > 1e-300 { q * (1.0 + 1e-12) } else { f64::INFINITY };
                    }
                }
            }
            // ... or some still-active capped flow reaches its cap.
            for &i in &self.capped {
                max_dlevel = max_dlevel.min((self.caps[i] - self.lrates[i]) / self.weights[i]);
            }
            if !max_dlevel.is_finite() {
                // No resource constrains the remaining flows and none has a
                // cap: they are unbounded.
                for &i in &self.active {
                    self.lrates[i] = f64::INFINITY;
                    self.is_active[i] = false;
                }
                self.active.clear();
                break;
            }
            let dlevel = max_dlevel.max(0.0);

            // Apply the increment to every active flow, in ascending order.
            // `w * dlevel` is hoisted per flow — the identical product the
            // per-occurrence form computed, so every subtraction's bits
            // are unchanged.
            for &i in &self.active {
                let wd = self.weights[i] * dlevel;
                self.lrates[i] += wd;
                for k in self.roff[i]..self.roff[i + 1] {
                    self.lresid[self.ridx[k]] -= wd;
                }
            }

            // Resources that crossed their saturation threshold this round.
            // Saturation is permanent, and a saturated resource's active
            // flows all freeze below, emptying its occupancy — so it drops
            // out of `live` this same round and can never be re-detected;
            // no per-resource "already saturated" flag is needed.
            self.newly_sat.clear();
            for k in 0..self.live.len() {
                let r = self.live[k];
                if self.lresid[r] <= self.sthr[r] {
                    self.newly_sat.push(r);
                }
            }

            // Freeze flows at their cap or on a newly saturated resource,
            // in ascending flow order.
            self.freeze.clear();
            for &i in &self.capped {
                let c = self.caps[i];
                if self.lrates[i] >= c - c.abs().max(1.0) * EPS {
                    self.freeze.push(i);
                }
            }
            for k in 0..self.newly_sat.len() {
                let r = self.newly_sat[k];
                for m in self.moff[r]..self.moff[r + 1] {
                    let i = self.mmemb[m];
                    if self.is_active[i] {
                        self.freeze.push(i);
                    }
                }
            }
            self.freeze.sort_unstable();
            self.freeze.dedup();
            for k in 0..self.freeze.len() {
                let i = self.freeze[k];
                if !self.is_active[i] {
                    continue;
                }
                self.is_active[i] = false;
                for j in self.roff[i]..self.roff[i + 1] {
                    let r = self.ridx[j];
                    self.weight_on[r] -= self.weights[i];
                    self.rcount[r] -= 1;
                }
            }
            if !self.freeze.is_empty() {
                let mut active = std::mem::take(&mut self.active);
                active.retain(|&i| self.is_active[i]);
                self.active = active;
                let mut capped = std::mem::take(&mut self.capped);
                capped.retain(|&i| self.is_active[i]);
                self.capped = capped;
                let mut live = std::mem::take(&mut self.live);
                live.retain(|&r| self.rcount[r] > 0);
                self.live = live;
            }
        }

        // Clamp numerical dust.
        for r in self.lresid.iter_mut() {
            if *r < 0.0 {
                *r = 0.0;
            }
        }
    }

    /// Rates of the current component's flows, in push order.
    pub fn component_rates(&self) -> &[f64] {
        &self.lrates
    }

    /// `(global resource id, residual capacity)` of every resource the
    /// current component touches.
    pub fn component_residuals(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.lres.iter().copied().zip(self.lresid.iter().copied())
    }

    /// Full solve over borrowed flows; see [`solve`].
    pub fn solve_refs(&mut self, capacities: &[f64], flows: &[FlowRef<'_>]) -> Allocation {
        let mut rates = vec![0.0_f64; flows.len()];
        let mut residual: Vec<f64> = capacities.to_vec();
        for f in flows {
            debug_assert!(f.weight > 0.0, "flow weight must be positive");
        }
        // Pathless flows never interact with anything: an uncapped one is
        // unbounded, a capped one sits exactly at its cap.
        for (i, f) in flows.iter().enumerate() {
            if f.resources.is_empty() {
                rates[i] = f.cap.unwrap_or(f64::INFINITY);
            }
        }
        if !flows.is_empty() {
            let (off, memb) = resource_members(capacities.len(), flows);
            let mut seen = vec![false; flows.len()];
            let mut res_seen = vec![false; capacities.len()];
            let mut stack = Vec::new();
            let mut comp = Vec::new();
            for i0 in 0..flows.len() {
                if seen[i0] || flows[i0].resources.is_empty() {
                    continue;
                }
                collect_component(
                    i0, flows, &off, &memb, &mut seen, &mut res_seen, &mut stack, &mut comp,
                );
                self.fill_sorted_component(capacities, flows, &comp);
                for (k, &i) in comp.iter().enumerate() {
                    rates[i] = self.lrates[k];
                }
                for (r, resid) in self.component_residuals() {
                    residual[r] = resid;
                }
            }
        }
        // Clamp numerical dust (matches the per-component clamp; also
        // normalises untouched negative capacities, as the historical
        // solver did).
        for r in residual.iter_mut() {
            if *r < 0.0 {
                *r = 0.0;
            }
        }
        Allocation { rates, residual }
    }

    /// Scoped solve over borrowed flows; see [`solve_scoped`].
    pub fn solve_scoped_refs(
        &mut self,
        capacities: &[f64],
        flows: &[FlowRef<'_>],
        touched: &[usize],
        prev: &Allocation,
    ) -> Allocation {
        debug_assert_eq!(
            prev.rates.len(),
            flows.len(),
            "prev allocation must be aligned with the flow list"
        );
        let mut rates = prev.rates.clone();
        let mut residual = prev.residual.clone();
        residual.resize(capacities.len(), 0.0);
        // Pathless flows are unreachable through any resource; always
        // recompute them (cheap and exact).
        for (i, f) in flows.iter().enumerate() {
            if f.resources.is_empty() {
                rates[i] = f.cap.unwrap_or(f64::INFINITY);
            }
        }
        let (off, memb) = resource_members(capacities.len(), flows);
        let mut seen = vec![false; flows.len()];
        let mut res_seen = vec![false; capacities.len()];
        let mut stack = Vec::new();
        let mut comp = Vec::new();
        for &r0 in touched {
            debug_assert!(r0 < capacities.len(), "touched resource out of range");
            if off[r0] == off[r0 + 1] {
                // No flow crosses this resource any more (e.g. the last
                // flow on it departed): its residual reverts to capacity,
                // clamped exactly like the full solver's output.
                residual[r0] = capacities[r0];
                if residual[r0] < 0.0 {
                    residual[r0] = 0.0;
                }
                continue;
            }
            for k in off[r0]..off[r0 + 1] {
                let f0 = memb[k];
                if seen[f0] {
                    continue;
                }
                collect_component(
                    f0, flows, &off, &memb, &mut seen, &mut res_seen, &mut stack, &mut comp,
                );
                self.fill_sorted_component(capacities, flows, &comp);
                for (j, &i) in comp.iter().enumerate() {
                    rates[i] = self.lrates[j];
                }
                for (r, resid) in self.component_residuals() {
                    residual[r] = resid;
                }
            }
        }
        Allocation { rates, residual }
    }

    /// Fill one already-collected component (flow indices sorted ascending).
    fn fill_sorted_component(
        &mut self,
        capacities: &[f64],
        flows: &[FlowRef<'_>],
        comp: &[usize],
    ) {
        self.begin_component(capacities.len());
        for &i in comp {
            let f = flows[i];
            self.push_flow(f.weight, f.cap, f.resources, capacities);
        }
        self.run_fill();
    }
}

/// Build a CSR resource→flows membership index: `off` has length
/// `n_resources + 1`, and `memb[off[r]..off[r+1]]` lists the (ascending)
/// indices of the flows crossing resource `r`.
fn resource_members(n_resources: usize, flows: &[FlowRef<'_>]) -> (Vec<usize>, Vec<usize>) {
    let mut off = vec![0usize; n_resources + 1];
    for f in flows {
        for &r in f.resources {
            off[r + 1] += 1;
        }
    }
    for r in 0..n_resources {
        off[r + 1] += off[r];
    }
    let mut memb = vec![0usize; off[n_resources]];
    let mut cur = off.clone();
    for (i, f) in flows.iter().enumerate() {
        for &r in f.resources {
            memb[cur[r]] = i;
            cur[r] += 1;
        }
    }
    (off, memb)
}

/// Collect into `comp` the connected component containing flow `start`
/// (flows transitively linked through shared resources), marking `seen` /
/// `res_seen` along the way. The component is sorted ascending so callers
/// can feed it to [`Solver::push_flow`] in the canonical order.
#[allow(clippy::too_many_arguments)]
fn collect_component(
    start: usize,
    flows: &[FlowRef<'_>],
    off: &[usize],
    memb: &[usize],
    seen: &mut [bool],
    res_seen: &mut [bool],
    stack: &mut Vec<usize>,
    comp: &mut Vec<usize>,
) {
    comp.clear();
    stack.clear();
    seen[start] = true;
    stack.push(start);
    comp.push(start);
    while let Some(i) = stack.pop() {
        for &r in flows[i].resources {
            if res_seen[r] {
                continue;
            }
            res_seen[r] = true;
            for &j in &memb[off[r]..off[r + 1]] {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                    comp.push(j);
                }
            }
        }
    }
    comp.sort_unstable();
}

/// Check the max-min invariants of an allocation; returns a human-readable
/// violation description, or `None` if the allocation is valid. Used by
/// property tests and debug assertions in the engine.
///
/// This is a thin wrapper over [`MaxMinAudit`](crate::audit::MaxMinAudit),
/// which performs the full typed check (feasibility, bottleneck
/// saturation, equal weighted shares, residual conservation); the first
/// violation is rendered as a string.
pub fn validate(capacities: &[f64], flows: &[FlowSpec], alloc: &Allocation) -> Option<String> {
    crate::audit::MaxMinAudit::default()
        .check(capacities, flows, alloc)
        .first()
        .map(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::mbps;

    fn assert_valid(caps: &[f64], flows: &[FlowSpec], alloc: &Allocation) {
        if let Some(msg) = validate(caps, flows, alloc) {
            panic!("invalid allocation: {msg}\nrates={:?}", alloc.rates);
        }
    }

    #[test]
    fn single_flow_gets_full_link() {
        let caps = [mbps(100.0)];
        let flows = [FlowSpec::greedy(vec![0])];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(100.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn equal_split_on_shared_bottleneck() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0]); 4];
        let a = solve(&caps, &flows);
        for r in &a.rates {
            assert!((r - mbps(25.0)).abs() < 1.0);
        }
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn paper_variable_flow_example() {
        // §4.2: "three flows may have bandwidth requirements of 3, 4.5, and
        // 9 Mbps relative to each other; the result … may be that the flows
        // will get 1, 1.5 and 3 Mbps respectively" — i.e. a 5.5 Mbps
        // bottleneck shared proportionally.
        let caps = [mbps(5.5)];
        let flows = vec![
            FlowSpec { weight: 3.0, cap: None, resources: vec![0] },
            FlowSpec { weight: 4.5, cap: None, resources: vec![0] },
            FlowSpec { weight: 9.0, cap: None, resources: vec![0] },
        ];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(1.0)).abs() < 1.0, "{:?}", a.rates);
        assert!((a.rates[1] - mbps(1.5)).abs() < 1.0);
        assert!((a.rates[2] - mbps(3.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn capped_flow_releases_bandwidth() {
        // Two flows on a 100 Mbps link, one capped at 10: the other gets 90.
        let caps = [mbps(100.0)];
        let flows = vec![
            FlowSpec::capped(vec![0], mbps(10.0)),
            FlowSpec::greedy(vec![0]),
        ];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(10.0)).abs() < 1.0);
        assert!((a.rates[1] - mbps(90.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn classic_three_link_parking_lot() {
        // Flow 0 crosses links 0,1,2; flows 1,2,3 each cross one link.
        // Max-min: everyone gets 50 on 100 Mbps links.
        let caps = [mbps(100.0); 3];
        let flows = vec![
            FlowSpec::greedy(vec![0, 1, 2]),
            FlowSpec::greedy(vec![0]),
            FlowSpec::greedy(vec![1]),
            FlowSpec::greedy(vec![2]),
        ];
        let a = solve(&caps, &flows);
        for r in &a.rates {
            assert!((r - mbps(50.0)).abs() < 1.0, "{:?}", a.rates);
        }
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn bottleneck_elsewhere_frees_share() {
        // Link 0: 10 Mbps, link 1: 100 Mbps. Flow A crosses both; flow B
        // crosses link 1 only. A is limited to 10 by link 0; B picks up 90.
        let caps = [mbps(10.0), mbps(100.0)];
        let flows = vec![
            FlowSpec::greedy(vec![0, 1]),
            FlowSpec::greedy(vec![1]),
        ];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(10.0)).abs() < 1.0);
        assert!((a.rates[1] - mbps(90.0)).abs() < 1.0);
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let caps: [f64; 0] = [];
        let flows = [FlowSpec::greedy(vec![])];
        let a = solve(&caps, &flows);
        assert!(a.rates[0].is_infinite());
    }

    #[test]
    fn capped_pathless_flow_gets_cap() {
        let caps: [f64; 0] = [];
        let flows = [FlowSpec::capped(vec![], mbps(3.0))];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(3.0)).abs() < 1.0);
    }

    #[test]
    fn no_flows() {
        let caps = [mbps(100.0)];
        let a = solve(&caps, &[]);
        assert!(a.rates.is_empty());
        assert_eq!(a.residual[0], mbps(100.0));
    }

    #[test]
    fn zero_capacity_resource() {
        let caps = [0.0];
        let flows = [FlowSpec::greedy(vec![0])];
        let a = solve(&caps, &flows);
        assert!(a.rates[0].abs() < EPS);
    }

    #[test]
    fn repeated_resource_in_path_counts_twice() {
        // A flow that enters and leaves the same backplane: listing the
        // resource twice halves its share of that resource.
        let caps = [mbps(100.0)];
        let flows = [FlowSpec::greedy(vec![0, 0])];
        let a = solve(&caps, &flows);
        assert!((a.rates[0] - mbps(50.0)).abs() < 1.0);
    }

    #[test]
    fn residual_reported() {
        let caps = [mbps(100.0)];
        let flows = [FlowSpec::capped(vec![0], mbps(30.0))];
        let a = solve(&caps, &flows);
        assert!((a.residual[0] - mbps(70.0)).abs() < 1.0);
    }

    #[test]
    fn independent_components_solve_independently() {
        // Two disjoint bottlenecks. The rates on one must be bit-identical
        // to solving it alone — the property scoped re-solves depend on.
        let caps = [mbps(100.0), mbps(40.0)];
        let flows = vec![
            FlowSpec::greedy(vec![0]),
            FlowSpec { weight: 2.5, cap: None, resources: vec![1] },
            FlowSpec::greedy(vec![0]),
            FlowSpec::capped(vec![1], mbps(7.0)),
        ];
        let a = solve(&caps, &flows);
        let left_only = solve(&caps, &[flows[0].clone(), flows[2].clone()]);
        assert_eq!(a.rates[0].to_bits(), left_only.rates[0].to_bits());
        assert_eq!(a.rates[2].to_bits(), left_only.rates[1].to_bits());
        assert_eq!(a.residual[0].to_bits(), left_only.residual[0].to_bits());
        assert_valid(&caps, &flows, &a);
    }

    #[test]
    fn scoped_resolve_after_departure_matches_full() {
        // Three flows over two links; remove the middle one and re-solve
        // only its component. Bit-exact agreement with a full solve.
        let caps = [mbps(100.0), mbps(55.0), mbps(80.0)];
        let flows = vec![
            FlowSpec::greedy(vec![0, 1]),
            FlowSpec { weight: 3.0, cap: Some(mbps(20.0)), resources: vec![1] },
            FlowSpec::greedy(vec![2]),
        ];
        let base = solve(&caps, &flows);
        let removed = flows[1].clone();
        let flows2 = vec![flows[0].clone(), flows[2].clone()];
        let prev = Allocation {
            rates: vec![base.rates[0], base.rates[2]],
            residual: base.residual.clone(),
        };
        let scoped = solve_scoped(&caps, &flows2, &removed.resources, &prev);
        let full = solve(&caps, &flows2);
        for (a, b) in scoped.rates.iter().zip(&full.rates) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in scoped.residual.iter().zip(&full.residual) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scoped_resolve_with_empty_touched_is_identity() {
        let caps = [mbps(100.0)];
        let flows = vec![FlowSpec::greedy(vec![0]), FlowSpec::greedy(vec![0])];
        let base = solve(&caps, &flows);
        let scoped = solve_scoped(&caps, &flows, &[], &base);
        for (a, b) in scoped.rates.iter().zip(&base.rates) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scoped_resolve_resets_vacated_resource() {
        // Last flow on resource 1 departs; touched residual must revert to
        // full capacity even though no remaining flow crosses it.
        let caps = [mbps(100.0), mbps(10.0)];
        let flows = vec![FlowSpec::greedy(vec![0]), FlowSpec::greedy(vec![1])];
        let base = solve(&caps, &flows);
        let flows2 = vec![flows[0].clone()];
        let prev = Allocation {
            rates: vec![base.rates[0]],
            residual: base.residual.clone(),
        };
        let scoped = solve_scoped(&caps, &flows2, &[1], &prev);
        assert_eq!(scoped.residual[1].to_bits(), mbps(10.0).to_bits());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random problem: up to 8 resources, up to 12 flows.
        fn arb_problem() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>)> {
            let caps = prop::collection::vec(1.0e6..1.0e9f64, 1..8);
            caps.prop_flat_map(|caps| {
                let n = caps.len();
                let flow = (
                    0.1..10.0f64,
                    prop::option::of(1.0e5..2.0e9f64),
                    prop::collection::btree_set(0..n, 1..=n.min(4)),
                )
                    .prop_map(|(weight, cap, res)| FlowSpec {
                        weight,
                        cap,
                        resources: res.into_iter().collect(),
                    });
                (Just(caps), prop::collection::vec(flow, 1..12))
            })
        }

        /// A delta applied to a base problem, plus the touched-resource set
        /// a caller of `solve_scoped` would derive from it.
        #[derive(Clone, Debug)]
        enum Delta {
            Remove(usize),
            Add(FlowSpec),
            Retune { idx: usize, weight: f64, cap: Option<f64> },
            Reroute { idx: usize, resources: Vec<usize> },
        }

        fn arb_mutated() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>, Delta)> {
            arb_problem().prop_flat_map(|(caps, flows)| {
                let n = caps.len();
                let nf = flows.len();
                let new_flow = (
                    0.1..10.0f64,
                    prop::option::of(1.0e5..2.0e9f64),
                    prop::collection::btree_set(0..n, 1..=n.min(4)),
                )
                    .prop_map(|(weight, cap, res)| FlowSpec {
                        weight,
                        cap,
                        resources: res.into_iter().collect(),
                    });
                let delta = prop_oneof![
                    (0..nf).prop_map(Delta::Remove),
                    new_flow.prop_map(Delta::Add),
                    (0..nf, 0.1..10.0f64, prop::option::of(1.0e5..2.0e9f64))
                        .prop_map(|(idx, weight, cap)| Delta::Retune { idx, weight, cap }),
                    (0..nf, prop::collection::btree_set(0..n, 1..=n.min(4)))
                        .prop_map(|(idx, res)| Delta::Reroute {
                            idx,
                            resources: res.into_iter().collect(),
                        }),
                ];
                (Just(caps), Just(flows), delta)
            })
        }

        /// Apply `delta`, returning the new flow list, the prev allocation
        /// aligned with it, and the touched resources.
        fn apply_delta(
            flows: &[FlowSpec],
            base: &Allocation,
            delta: &Delta,
        ) -> (Vec<FlowSpec>, Allocation, Vec<usize>) {
            let mut flows2 = flows.to_vec();
            let mut rates = base.rates.clone();
            let touched;
            match delta {
                Delta::Remove(i) => {
                    touched = flows2.remove(*i).resources;
                    rates.remove(*i);
                }
                Delta::Add(f) => {
                    touched = f.resources.clone();
                    flows2.push(f.clone());
                    rates.push(0.0);
                }
                Delta::Retune { idx, weight, cap } => {
                    flows2[*idx].weight = *weight;
                    flows2[*idx].cap = *cap;
                    touched = flows2[*idx].resources.clone();
                }
                Delta::Reroute { idx, resources } => {
                    let mut t = flows2[*idx].resources.clone();
                    t.extend_from_slice(resources);
                    flows2[*idx].resources = resources.clone();
                    touched = t;
                }
            }
            let prev = Allocation { rates, residual: base.residual.clone() };
            (flows2, prev, touched)
        }

        proptest! {
            #[test]
            fn solver_output_is_valid((caps, flows) in arb_problem()) {
                let a = solve(&caps, &flows);
                prop_assert!(validate(&caps, &flows, &a).is_none(),
                    "{:?}", validate(&caps, &flows, &a));
            }

            #[test]
            fn allocation_is_homogeneous((caps, flows) in arb_problem()) {
                // Scaling every capacity *and* every cap by k scales the
                // whole allocation by k. (Note: scaling capacities alone is
                // NOT monotone for capped flows — freezing order changes —
                // which is why the stronger property is not asserted.)
                let k = 3.0;
                let a1 = solve(&caps, &flows);
                let caps2: Vec<f64> = caps.iter().map(|c| c * k).collect();
                let flows2: Vec<FlowSpec> = flows
                    .iter()
                    .map(|f| FlowSpec {
                        weight: f.weight,
                        cap: f.cap.map(|c| c * k),
                        resources: f.resources.clone(),
                    })
                    .collect();
                let a2 = solve(&caps2, &flows2);
                for (r1, r2) in a1.rates.iter().zip(&a2.rates) {
                    prop_assert!((r2 - k * r1).abs() <= (k * r1).abs().max(1.0) * 1e-6,
                        "not homogeneous: {r1} vs {r2}");
                }
            }

            #[test]
            fn removal_monotone_on_single_bottleneck(
                cap in 1.0e6..1.0e9f64,
                n in 2usize..10,
            ) {
                // On a single shared resource, removing an unweighted,
                // uncapped competitor weakly increases every remaining rate.
                // (This is FALSE for general multi-link networks — removing
                // a flow on link L can grow a multi-link flow on L that then
                // squeezes a third flow elsewhere — so the property is only
                // asserted in the single-bottleneck setting where it is a
                // theorem.)
                let caps = [cap];
                let flows = vec![FlowSpec::greedy(vec![0]); n];
                let a_all = solve(&caps, &flows);
                let a_red = solve(&caps, &flows[1..]);
                for (i, r) in a_red.rates.iter().enumerate() {
                    let before = a_all.rates[i + 1];
                    prop_assert!(*r >= before - before.abs().max(1.0) * 1e-6);
                }
            }

            #[test]
            fn solver_is_deterministic((caps, flows) in arb_problem()) {
                let a1 = solve(&caps, &flows);
                let a2 = solve(&caps, &flows);
                prop_assert_eq!(a1.rates, a2.rates);
                prop_assert_eq!(a1.residual, a2.residual);
            }

            #[test]
            fn reusing_a_solver_is_bit_stable((caps, flows) in arb_problem()) {
                // The same Solver instance re-used across problems must not
                // leak state between solves: scratch reuse is invisible.
                let refs: Vec<FlowRef<'_>> = flows.iter().map(FlowSpec::as_ref).collect();
                let mut solver = Solver::new();
                let a1 = solver.solve_refs(&caps, &refs);
                let a2 = solver.solve_refs(&caps, &refs);
                for (x, y) in a1.rates.iter().zip(&a2.rates) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                for (x, y) in a1.residual.iter().zip(&a2.residual) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }

            #[test]
            fn scoped_solve_matches_full_bitwise(
                (caps, flows, delta) in arb_mutated()
            ) {
                // THE incremental-solve contract: after any single delta
                // (arrival, departure, retune, reroute), re-solving only the
                // touched components on top of the previous allocation is
                // bit-identical to a from-scratch solve of the new problem.
                let base = solve(&caps, &flows);
                let (flows2, prev, touched) = apply_delta(&flows, &base, &delta);
                let full = solve(&caps, &flows2);
                let scoped = solve_scoped(&caps, &flows2, &touched, &prev);
                for (i, (a, b)) in scoped.rates.iter().zip(&full.rates).enumerate() {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "rate {} diverged: scoped {} vs full {} ({:?})", i, a, b, delta);
                }
                for (r, (a, b)) in scoped.residual.iter().zip(&full.residual).enumerate() {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "residual {} diverged: scoped {} vs full {} ({:?})", r, a, b, delta);
                }
            }
        }
    }
}
