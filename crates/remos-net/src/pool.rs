//! Hand-rolled scoped worker pool for deterministic fan-out.
//!
//! Zero dependencies and deliberately tiny: jobs are claimed through an
//! atomic cursor, each worker collects `(input index, result)` pairs
//! locally, and results are re-slotted by input index afterwards — so
//! the output order is deterministic (it matches the input order) no
//! matter how the OS schedules the workers.
//!
//! Lives in `remos-net` so both the engine (parallel independent
//! connected-component solves) and the modeler (batch query serving,
//! which re-exports it as `modeler::pool`) share one implementation.
//!
//! The `std::thread` use here is sanctioned: this module is the one
//! scoped exemption from the remos-audit `thread-spawn` rule, because
//! the pool runs pure computation over already-collected, immutable data
//! (disjoint solver components, shared query plans, pinned sample
//! selections) and never touches the simulated clock, the collector, or
//! the trace recorder.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest worker count [`default_workers`] will pick.
const MAX_WORKERS: usize = 8;

/// Worker count for `jobs` jobs: hardware parallelism, capped at
/// [`MAX_WORKERS`] and at the job count (never zero).
pub fn default_workers(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(MAX_WORKERS).clamp(1, jobs.max(1))
}

/// Run `f` over every job on `workers` scoped threads, returning the
/// results in input order. A panic in any job is resumed on the caller.
pub fn run_indexed<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    if workers == 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        out.push((i, f(&jobs[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Deterministic ordering: place each result at its input index.
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    for chunk in per_worker {
        for (i, r) in chunk {
            slots[i] = Some(r);
        }
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), jobs.len(), "worker pool lost a job result");
    out
}

/// Run `f` over every job *by mutable reference* on `workers` scoped
/// threads, returning the results in input order. Jobs are dealt out by
/// striding (worker `w` takes jobs `w`, `w + workers`, …), so the claim
/// schedule — unlike [`run_indexed`]'s atomic cursor — is deterministic
/// too, not just the result order. A panic in any job is resumed on the
/// caller. The federated collector fans its child polls out through
/// this.
pub fn run_indexed_mut<J, R, F>(jobs: &mut [J], workers: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, &mut J) -> R + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    if workers == 1 {
        return jobs.iter_mut().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let n = jobs.len();
    // Strided hand-out: split the slice into per-worker (index, &mut J)
    // lists up front so no synchronization is needed while running.
    let mut parts: Vec<Vec<(usize, &mut J)>> =
        (0..workers).map(|_| Vec::with_capacity(n / workers + 1)).collect();
    for (i, j) in jobs.iter_mut().enumerate() {
        parts[i % workers].push((i, j));
    }
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                let f = &f;
                s.spawn(move || {
                    part.into_iter().map(|(i, j)| (i, f(i, j))).collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for chunk in per_worker {
        for (i, r) in chunk {
            slots[i] = Some(r);
        }
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), n, "worker pool lost a job result");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mut_results_come_back_in_input_order() {
        let mut jobs: Vec<u64> = (0..101).collect();
        let got = run_indexed_mut(&mut jobs, 4, |i, j| {
            *j += 1;
            *j * 10 + i as u64 % 2
        });
        for (i, &j) in jobs.iter().enumerate() {
            assert_eq!(j, i as u64 + 1, "job {i} mutated in place");
        }
        let want: Vec<u64> = (0..101u64).map(|i| (i + 1) * 10 + i % 2).collect();
        assert_eq!(got, want);
        let mut empty: Vec<u64> = Vec::new();
        assert!(run_indexed_mut(&mut empty, 8, |_, j| *j).is_empty());
        let single = run_indexed_mut(&mut jobs[..3], 1, |_, j| *j);
        assert_eq!(single, vec![1, 2, 3]);
    }

    #[test]
    fn results_come_back_in_input_order() {
        let jobs: Vec<usize> = (0..257).collect();
        let got = run_indexed(&jobs, 4, |&j| j * 3);
        let want: Vec<usize> = jobs.iter().map(|&j| j * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_worker_and_empty_inputs() {
        let got = run_indexed(&[1u32, 2, 3], 1, |&j| j + 1);
        assert_eq!(got, vec![2, 3, 4]);
        let empty: Vec<u32> = run_indexed(&[], 8, |&j: &u32| j);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let got = run_indexed(&[10u64, 20], 64, |&j| j);
        assert_eq!(got, vec![10, 20]);
        assert!(default_workers(0) >= 1);
        assert!(default_workers(1) == 1);
        assert!(default_workers(1000) <= MAX_WORKERS);
    }
}
