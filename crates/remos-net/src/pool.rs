//! Hand-rolled scoped worker pool for deterministic fan-out.
//!
//! Zero dependencies and deliberately tiny: jobs are claimed through an
//! atomic cursor, each worker collects `(input index, result)` pairs
//! locally, and results are re-slotted by input index afterwards — so
//! the output order is deterministic (it matches the input order) no
//! matter how the OS schedules the workers.
//!
//! Lives in `remos-net` so both the engine (parallel independent
//! connected-component solves) and the modeler (batch query serving,
//! which re-exports it as `modeler::pool`) share one implementation.
//!
//! The `std::thread` use here is sanctioned: this module is the one
//! scoped exemption from the remos-audit `thread-spawn` rule, because
//! the pool runs pure computation over already-collected, immutable data
//! (disjoint solver components, shared query plans, pinned sample
//! selections) and never touches the simulated clock, the collector, or
//! the trace recorder.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest worker count [`default_workers`] will pick.
const MAX_WORKERS: usize = 8;

/// Worker count for `jobs` jobs: hardware parallelism, capped at
/// [`MAX_WORKERS`] and at the job count (never zero).
pub fn default_workers(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(MAX_WORKERS).clamp(1, jobs.max(1))
}

/// Run `f` over every job on `workers` scoped threads, returning the
/// results in input order. A panic in any job is resumed on the caller.
pub fn run_indexed<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    if workers == 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        out.push((i, f(&jobs[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Deterministic ordering: place each result at its input index.
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    for chunk in per_worker {
        for (i, r) in chunk {
            slots[i] = Some(r);
        }
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), jobs.len(), "worker pool lost a job result");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let jobs: Vec<usize> = (0..257).collect();
        let got = run_indexed(&jobs, 4, |&j| j * 3);
        let want: Vec<usize> = jobs.iter().map(|&j| j * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_worker_and_empty_inputs() {
        let got = run_indexed(&[1u32, 2, 3], 1, |&j| j + 1);
        assert_eq!(got, vec![2, 3, 4]);
        let empty: Vec<u32> = run_indexed(&[], 8, |&j: &u32| j);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let got = run_indexed(&[10u64, 20], 64, |&j| j);
        assert_eq!(got, vec![10, 20]);
        assert!(default_workers(0) >= 1);
        assert!(default_workers(1) == 1);
        assert!(default_workers(1000) <= MAX_WORKERS);
    }
}
