//! Seeded k-ary fat-tree fabric generator and churn workload.
//!
//! ROADMAP item 1/4: the testbed scenarios top out at a few dozen nodes,
//! which is too small to expose hot-path costs that only matter at
//! datacenter scale. This module builds the classic 3-tier k-ary
//! fat-tree (Al-Fares et al.): `k` pods, each with `k/2` edge and `k/2`
//! aggregation switches, `(k/2)^2` core switches, and `(k/2)^2` hosts
//! per pod — `k = 16` yields 1024 hosts and 320 switches (1344 nodes,
//! 3072 duplex links). Construction is fully deterministic: node ids,
//! names, and link ids depend only on `k`, so two builds are
//! interchangeable in digest comparisons.
//!
//! [`FabricChurn`] layers a seeded steady-state workload on top: a fixed
//! population of persistent greedy flows where every step retires the
//! oldest flow and admits a fresh one, with seeded src/dst draws and a
//! configurable intra-pod locality. All randomness comes from one
//! `StdRng`, so a `(k, flows, seed, locality)` tuple names a
//! reproducible scenario — the digest-gated contract `BENCH_fabric.json`
//! relies on.

use crate::engine::{FlowHandle, Simulator, SolverMode};
use crate::error::Result;
use crate::flow::FlowParams;
use crate::time::SimDuration;
use crate::topology::{NodeId, Topology, TopologyBuilder};
use crate::units::gbps;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A built fat-tree plus the dense host-id table needed to drive
/// workloads without any name lookups (the churn hot loop must not
/// touch the name map).
#[derive(Debug)]
pub struct FatTree {
    topology: Topology,
    /// Host ids in pod-major order: `hosts[pod * hosts_per_pod + i]`.
    hosts: Vec<NodeId>,
    k: usize,
}

impl FatTree {
    /// Build the 3-tier k-ary fat-tree. `k` must be even and at least 4.
    ///
    /// Capacities follow the usual oversubscribed profile: 1 Gbps host
    /// links, 10 Gbps edge-aggregation links, 40 Gbps
    /// aggregation-core links, all at 5 us latency.
    pub fn build(k: usize) -> Result<FatTree> {
        assert!(k >= 4 && k.is_multiple_of(2), "fat-tree arity must be even and >= 4");
        let half = k / 2;
        let lat = SimDuration::from_micros(5);
        let mut b = TopologyBuilder::new();

        // Core layer: (k/2) groups of (k/2) switches. Aggregation switch
        // `a` of every pod uplinks to all of core group `a`.
        let mut core = Vec::with_capacity(half * half);
        for g in 0..half {
            for i in 0..half {
                core.push(b.network(&format!("c{g}x{i}")));
            }
        }

        let mut hosts = Vec::with_capacity(k * half * half);
        for p in 0..k {
            let mut edges = Vec::with_capacity(half);
            let mut aggs = Vec::with_capacity(half);
            for e in 0..half {
                edges.push(b.network(&format!("p{p}e{e}")));
            }
            for a in 0..half {
                aggs.push(b.network(&format!("p{p}a{a}")));
            }
            // Hosts: (k/2) per edge switch.
            for (e, &edge) in edges.iter().enumerate() {
                for h in 0..half {
                    let host = b.compute(&format!("p{p}e{e}h{h}"));
                    b.link(host, edge, gbps(1.0), lat)?;
                    hosts.push(host);
                }
            }
            // Full bipartite edge <-> aggregation mesh within the pod.
            for &edge in &edges {
                for &agg in &aggs {
                    b.link(edge, agg, gbps(10.0), lat)?;
                }
            }
            // Aggregation switch `a` to every switch of core group `a`.
            for (a, &agg) in aggs.iter().enumerate() {
                for i in 0..half {
                    b.link(agg, core[a * half + i], gbps(40.0), lat)?;
                }
            }
        }

        Ok(FatTree { topology: b.build()?, hosts, k })
    }

    /// The built topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consume into the topology and the pod-major host table.
    pub fn into_parts(self) -> (Topology, Vec<NodeId>) {
        (self.topology, self.hosts)
    }

    /// Pod count (`k`).
    pub fn pods(&self) -> usize {
        self.k
    }

    /// Hosts per pod (`(k/2)^2`).
    pub fn hosts_per_pod(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }

    /// Host `i` of pod `p` (both zero-based).
    pub fn host(&self, pod: usize, i: usize) -> NodeId {
        self.hosts[pod * self.hosts_per_pod() + i]
    }

    /// All host ids, pod-major.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }
}

/// Seeded steady-state churn over a fat-tree: a constant population of
/// persistent greedy flows; each [`step`](FabricChurn::step) retires the
/// oldest flow, admits a seeded replacement, and advances simulated time
/// so the engine coalesces the pair into one rate recomputation.
pub struct FabricChurn {
    /// The simulator under test.
    pub sim: Simulator,
    hosts: Vec<NodeId>,
    pods: usize,
    hosts_per_pod: usize,
    live: VecDeque<FlowHandle>,
    rng: StdRng,
    locality_pct: u32,
}

impl FabricChurn {
    /// Build a `k`-ary fabric, admit `flows` seeded flows, and settle the
    /// initial allocation outside any measured window. `locality_pct` of
    /// flows (0..=100) stay within their source pod; the rest cross the
    /// core.
    pub fn new(
        k: usize,
        flows: usize,
        seed: u64,
        locality_pct: u32,
        mode: SolverMode,
    ) -> Result<FabricChurn> {
        let tree = FatTree::build(k)?;
        let pods = tree.pods();
        let hosts_per_pod = tree.hosts_per_pod();
        let (topology, hosts) = tree.into_parts();
        let mut sim = Simulator::new(topology)?;
        sim.set_solver_mode(mode);
        let mut churn = FabricChurn {
            sim,
            hosts,
            pods,
            hosts_per_pod,
            live: VecDeque::with_capacity(flows + 1),
            rng: StdRng::seed_from_u64(seed),
            locality_pct: locality_pct.min(100),
        };
        for _ in 0..flows {
            churn.spawn()?;
        }
        churn.sim.run_for(SimDuration::from_millis(1))?;
        Ok(churn)
    }

    /// Admit one seeded flow.
    fn spawn(&mut self) -> Result<()> {
        let src_pod = self.rng.gen_range(0..self.pods);
        let src_i = self.rng.gen_range(0..self.hosts_per_pod);
        let dst_pod = if self.rng.gen_range(0..100u32) < self.locality_pct {
            src_pod
        } else {
            // A different pod, drawn uniformly from the others.
            (src_pod + 1 + self.rng.gen_range(0..self.pods - 1)) % self.pods
        };
        let dst_i = if dst_pod == src_pod {
            (src_i + 1 + self.rng.gen_range(0..self.hosts_per_pod - 1)) % self.hosts_per_pod
        } else {
            self.rng.gen_range(0..self.hosts_per_pod)
        };
        let src = self.hosts[src_pod * self.hosts_per_pod + src_i];
        let dst = self.hosts[dst_pod * self.hosts_per_pod + dst_i];
        let weight = 1.0 + f64::from(self.rng.gen_range(0..4u32));
        let h = self.sim.start_flow(FlowParams::greedy(src, dst).with_weight(weight))?;
        self.live.push_back(h);
        Ok(())
    }

    /// One churn event: retire the oldest flow, admit a replacement, and
    /// advance simulated time by 100 us so the engine recomputes rates.
    pub fn step(&mut self) -> Result<()> {
        if let Some(h) = self.live.pop_front() {
            self.sim.stop_flow(h)?;
        }
        self.spawn()?;
        self.sim.run_for(SimDuration::from_micros(100))?;
        Ok(())
    }

    /// Current live-flow population.
    pub fn live_flows(&self) -> usize {
        self.sim.active_flow_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_tree_has_standard_shape() {
        let t = FatTree::build(4).unwrap();
        // 16 hosts, 8 edge, 8 agg, 4 core.
        assert_eq!(t.topology().node_count(), 16 + 8 + 8 + 4);
        // 16 host links + 4 pods * 4 edge-agg + 4 pods * 4 agg-core.
        assert_eq!(t.topology().link_count(), 16 + 16 + 16);
        assert!(t.topology().is_connected());
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.hosts_per_pod(), 4);
    }

    #[test]
    fn k16_tree_crosses_the_thousand_node_bar() {
        let t = FatTree::build(16).unwrap();
        assert_eq!(t.topology().node_count(), 1024 + 128 + 128 + 64);
        assert_eq!(t.topology().link_count(), 3 * 1024);
        assert!(t.topology().is_connected());
    }

    #[test]
    fn build_is_deterministic() {
        let a = FatTree::build(6).unwrap();
        let b = FatTree::build(6).unwrap();
        assert_eq!(a.hosts(), b.hosts());
        for n in a.topology().node_ids() {
            assert_eq!(a.topology().node(n).name, b.topology().node(n).name);
        }
    }

    #[test]
    fn churn_replays_bit_identically_per_seed_and_mode() {
        let run = |mode| {
            let mut c = FabricChurn::new(4, 24, 0xFAB, 75, mode).unwrap();
            for _ in 0..12 {
                c.step().unwrap();
            }
            assert_eq!(c.live_flows(), 24);
            (c.sim.rates_digest(), c.sim.event_digest())
        };
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Incremental));
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Full));
    }

    #[test]
    fn churn_audits_clean() {
        let mut c = FabricChurn::new(4, 16, 7, 50, SolverMode::Incremental).unwrap();
        c.sim.enable_audit();
        for _ in 0..8 {
            c.step().unwrap();
        }
        assert!(c.sim.audit_violations().is_empty(), "{:?}", c.sim.audit_violations());
    }
}
