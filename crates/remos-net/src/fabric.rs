//! Seeded k-ary fat-tree fabric generator and churn workload.
//!
//! ROADMAP item 1/4: the testbed scenarios top out at a few dozen nodes,
//! which is too small to expose hot-path costs that only matter at
//! datacenter scale. This module builds the classic 3-tier k-ary
//! fat-tree (Al-Fares et al.): `k` pods, each with `k/2` edge and `k/2`
//! aggregation switches, `(k/2)^2` core switches, and `(k/2)^2` hosts
//! per pod — `k = 16` yields 1024 hosts and 320 switches (1344 nodes,
//! 3072 duplex links). Construction is fully deterministic: node ids,
//! names, and link ids depend only on `k`, so two builds are
//! interchangeable in digest comparisons.
//!
//! [`FabricChurn`] layers a seeded steady-state workload on top: a fixed
//! population of persistent greedy flows where every step retires the
//! oldest flow and admits a fresh one, with seeded src/dst draws and a
//! configurable intra-pod locality. All randomness comes from one
//! `StdRng`, so a `(k, flows, seed, locality)` tuple names a
//! reproducible scenario — the digest-gated contract `BENCH_fabric.json`
//! relies on.

use crate::engine::{FlowHandle, Simulator, SolverMode};
use crate::error::{NetError, Result};
use crate::flow::FlowParams;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology, TopologyBuilder};
use crate::units::{gbps, Bps};
use crate::whatif::WhatIfFlow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A built fat-tree plus the dense host-id table needed to drive
/// workloads without any name lookups (the churn hot loop must not
/// touch the name map).
#[derive(Debug)]
pub struct FatTree {
    topology: Topology,
    /// Host ids in pod-major order: `hosts[pod * hosts_per_pod + i]`.
    hosts: Vec<NodeId>,
    /// Pod of each node, indexed by `NodeId`; `NO_POD` for core switches.
    pod_by_node: Vec<u32>,
    k: usize,
}

/// [`FatTree::pod_of`] sentinel for nodes outside every pod (the core).
const NO_POD: u32 = u32::MAX;

impl FatTree {
    /// Build the 3-tier k-ary fat-tree. `k` must be even and at least 4.
    ///
    /// Capacities follow the usual oversubscribed profile: 1 Gbps host
    /// links, 10 Gbps edge-aggregation links, 40 Gbps
    /// aggregation-core links, all at 5 us latency.
    pub fn build(k: usize) -> Result<FatTree> {
        assert!(k >= 4 && k.is_multiple_of(2), "fat-tree arity must be even and >= 4");
        let half = k / 2;
        let lat = SimDuration::from_micros(5);
        let mut b = TopologyBuilder::new();

        // Core layer: (k/2) groups of (k/2) switches. Aggregation switch
        // `a` of every pod uplinks to all of core group `a`.
        let mut pod_by_node: Vec<u32> = Vec::new();
        let tag = |n: NodeId, pod: u32, pods: &mut Vec<u32>| {
            let i = n.index();
            if pods.len() <= i {
                pods.resize(i + 1, NO_POD);
            }
            pods[i] = pod;
        };
        let mut core = Vec::with_capacity(half * half);
        for g in 0..half {
            for i in 0..half {
                let c = b.network(&format!("c{g}x{i}"));
                tag(c, NO_POD, &mut pod_by_node);
                core.push(c);
            }
        }

        let mut hosts = Vec::with_capacity(k * half * half);
        for p in 0..k {
            let mut edges = Vec::with_capacity(half);
            let mut aggs = Vec::with_capacity(half);
            for e in 0..half {
                let edge = b.network(&format!("p{p}e{e}"));
                tag(edge, p as u32, &mut pod_by_node);
                edges.push(edge);
            }
            for a in 0..half {
                let agg = b.network(&format!("p{p}a{a}"));
                tag(agg, p as u32, &mut pod_by_node);
                aggs.push(agg);
            }
            // Hosts: (k/2) per edge switch.
            for (e, &edge) in edges.iter().enumerate() {
                for h in 0..half {
                    let host = b.compute(&format!("p{p}e{e}h{h}"));
                    tag(host, p as u32, &mut pod_by_node);
                    b.link(host, edge, gbps(1.0), lat)?;
                    hosts.push(host);
                }
            }
            // Full bipartite edge <-> aggregation mesh within the pod.
            for &edge in &edges {
                for &agg in &aggs {
                    b.link(edge, agg, gbps(10.0), lat)?;
                }
            }
            // Aggregation switch `a` to every switch of core group `a`.
            for (a, &agg) in aggs.iter().enumerate() {
                for i in 0..half {
                    b.link(agg, core[a * half + i], gbps(40.0), lat)?;
                }
            }
        }

        Ok(FatTree { topology: b.build()?, hosts, pod_by_node, k })
    }

    /// The built topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Pod a node belongs to; `None` for core switches.
    pub fn pod_of(&self, n: NodeId) -> Option<usize> {
        match self.pod_by_node.get(n.index()).copied() {
            Some(p) if p != NO_POD => Some(p as usize),
            _ => None,
        }
    }

    /// Pod a link belongs to: `Some(p)` for host-edge and
    /// edge-aggregation links inside pod `p`, `None` for
    /// aggregation-core links (the spine/WAN tier). Every link is one or
    /// the other, so partitioning by this tiles the whole fabric.
    pub fn pod_of_link(&self, l: crate::topology::LinkId) -> Option<usize> {
        let link = self.topology.link(l);
        match (self.pod_of(link.a), self.pod_of(link.b)) {
            (Some(p), Some(q)) if p == q => Some(p),
            _ => None,
        }
    }

    /// Consume into the topology and the pod-major host table.
    pub fn into_parts(self) -> (Topology, Vec<NodeId>) {
        (self.topology, self.hosts)
    }

    /// Pod count (`k`).
    pub fn pods(&self) -> usize {
        self.k
    }

    /// Hosts per pod (`(k/2)^2`).
    pub fn hosts_per_pod(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }

    /// Host `i` of pod `p` (both zero-based).
    pub fn host(&self, pod: usize, i: usize) -> NodeId {
        self.hosts[pod * self.hosts_per_pod() + i]
    }

    /// All host ids, pod-major.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }
}

/// Seeded steady-state churn over a fat-tree: a constant population of
/// persistent greedy flows; each [`step`](FabricChurn::step) retires the
/// oldest flow, admits a seeded replacement, and advances simulated time
/// so the engine coalesces the pair into one rate recomputation.
pub struct FabricChurn {
    /// The simulator under test.
    pub sim: Simulator,
    hosts: Vec<NodeId>,
    pods: usize,
    hosts_per_pod: usize,
    live: VecDeque<FlowHandle>,
    rng: StdRng,
    locality_pct: u32,
}

impl FabricChurn {
    /// Build a `k`-ary fabric, admit `flows` seeded flows, and settle the
    /// initial allocation outside any measured window. `locality_pct` of
    /// flows (0..=100) stay within their source pod; the rest cross the
    /// core.
    pub fn new(
        k: usize,
        flows: usize,
        seed: u64,
        locality_pct: u32,
        mode: SolverMode,
    ) -> Result<FabricChurn> {
        let tree = FatTree::build(k)?;
        let pods = tree.pods();
        let hosts_per_pod = tree.hosts_per_pod();
        let (topology, hosts) = tree.into_parts();
        let mut sim = Simulator::new(topology)?;
        sim.set_solver_mode(mode);
        let mut churn = FabricChurn {
            sim,
            hosts,
            pods,
            hosts_per_pod,
            live: VecDeque::with_capacity(flows + 1),
            rng: StdRng::seed_from_u64(seed),
            locality_pct: locality_pct.min(100),
        };
        for _ in 0..flows {
            churn.spawn()?;
        }
        churn.sim.run_for(SimDuration::from_millis(1))?;
        Ok(churn)
    }

    /// Admit one seeded flow.
    fn spawn(&mut self) -> Result<()> {
        let src_pod = self.rng.gen_range(0..self.pods);
        let src_i = self.rng.gen_range(0..self.hosts_per_pod);
        let dst_pod = if self.rng.gen_range(0..100u32) < self.locality_pct {
            src_pod
        } else {
            // A different pod, drawn uniformly from the others.
            (src_pod + 1 + self.rng.gen_range(0..self.pods - 1)) % self.pods
        };
        let dst_i = if dst_pod == src_pod {
            (src_i + 1 + self.rng.gen_range(0..self.hosts_per_pod - 1)) % self.hosts_per_pod
        } else {
            self.rng.gen_range(0..self.hosts_per_pod)
        };
        let src = self.hosts[src_pod * self.hosts_per_pod + src_i];
        let dst = self.hosts[dst_pod * self.hosts_per_pod + dst_i];
        let weight = 1.0 + f64::from(self.rng.gen_range(0..4u32));
        let h = self.sim.start_flow(FlowParams::greedy(src, dst).with_weight(weight))?;
        self.live.push_back(h);
        Ok(())
    }

    /// One churn event: retire the oldest flow, admit a replacement, and
    /// advance simulated time by 100 us so the engine recomputes rates.
    pub fn step(&mut self) -> Result<()> {
        if let Some(h) = self.live.pop_front() {
            self.sim.stop_flow(h)?;
        }
        self.spawn()?;
        self.sim.run_for(SimDuration::from_micros(100))?;
        Ok(())
    }

    /// Current live-flow population.
    pub fn live_flows(&self) -> usize {
        self.sim.active_flow_count()
    }
}

/// An empirical flow-size distribution as cumulative `(probability,
/// bytes)` points, sampled by inverse transform with linear
/// interpolation between points.
///
/// The presets follow the two canonical datacenter traces: the
/// search-cluster mix (mostly short RPCs plus a heavy tail of multi-MB
/// responses) and the data-mining mix (half the flows under a few KB but
/// nearly all bytes in >100 MB background transfers).
#[derive(Clone, Debug)]
pub struct FlowSizeEcdf {
    /// `(cumulative probability, bytes)`, strictly increasing in both
    /// coordinates, first probability 0, last probability 1.
    points: Vec<(f64, u64)>,
}

impl FlowSizeEcdf {
    /// Build from cumulative points. The first point anchors probability
    /// `0.0` at the minimum size; the last must reach probability `1.0`.
    pub fn new(points: &[(f64, u64)]) -> Result<FlowSizeEcdf> {
        if points.len() < 2 {
            return Err(NetError::Invalid("ECDF needs at least two points".into()));
        }
        if points[0].0 != 0.0 || points[points.len() - 1].0 != 1.0 {
            return Err(NetError::Invalid("ECDF must span probabilities 0.0..=1.0".into()));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 || w[1].1 < w[0].1 {
                return Err(NetError::Invalid(format!(
                    "ECDF points must increase: {:?} then {:?}",
                    w[0], w[1]
                )));
            }
        }
        Ok(FlowSizeEcdf { points: points.to_vec() })
    }

    /// Search-cluster mix: short query/response RPCs with a moderate
    /// heavy tail.
    pub fn web_search() -> FlowSizeEcdf {
        FlowSizeEcdf::new(&[
            (0.0, 5_000),
            (0.15, 10_000),
            (0.30, 30_000),
            (0.45, 60_000),
            (0.60, 200_000),
            (0.70, 1_000_000),
            (0.80, 2_000_000),
            (0.90, 5_000_000),
            (0.97, 10_000_000),
            (1.0, 30_000_000),
        ])
        .expect("preset ECDF is valid")
    }

    /// Data-mining mix: half the flows are tiny control messages, almost
    /// all bytes ride in very large background transfers.
    pub fn data_mining() -> FlowSizeEcdf {
        FlowSizeEcdf::new(&[
            (0.0, 500),
            (0.50, 2_000),
            (0.70, 10_000),
            (0.80, 100_000),
            (0.90, 1_000_000),
            (0.95, 10_000_000),
            (0.99, 100_000_000),
            (1.0, 400_000_000),
        ])
        .expect("preset ECDF is valid")
    }

    /// Uniform sizes over `lo..=hi` bytes.
    pub fn uniform(lo: u64, hi: u64) -> Result<FlowSizeEcdf> {
        if hi <= lo {
            return Err(NetError::Invalid(format!("uniform ECDF needs lo < hi, got {lo}..{hi}")));
        }
        FlowSizeEcdf::new(&[(0.0, lo), (1.0, hi)])
    }

    /// Inverse-transform sample one flow size.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        // Segment whose upper cumulative probability covers `u`.
        let hi = self
            .points
            .partition_point(|&(p, _)| p < u)
            .clamp(1, self.points.len() - 1);
        let (p0, b0) = self.points[hi - 1];
        let (p1, b1) = self.points[hi];
        let t = ((u - p0) / (p1 - p0)).clamp(0.0, 1.0);
        b0 + ((b1 - b0) as f64 * t) as u64
    }

    /// Mean flow size in bytes (exact, by segment trapezoids) — the
    /// quantity the load calibration divides by.
    pub fn mean_bytes(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[0].1 as f64 + w[1].1 as f64) / 2.0)
            .sum()
    }
}

/// Parameters for seeded what-if workload synthesis.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// RNG seed; `(seed, flows, target_load, locality_pct, skew)` names a
    /// reproducible workload.
    pub seed: u64,
    /// Number of hypothetical flows to draw.
    pub flows: usize,
    /// Target utilization of the *hottest expected* host uplink
    /// (fraction of its capacity); the aggregate arrival rate is
    /// calibrated so offered load on that link equals this.
    pub target_load: f64,
    /// Percentage (0..=100) of flows whose destination stays in the
    /// source pod.
    pub locality_pct: u32,
    /// ToR (edge switch) popularity skew: per-ToR weight is
    /// `1 / (rank + 1)^skew` with rank = ToR index. `0.0` is uniform.
    pub skew: f64,
}

impl WorkloadSpec {
    /// A balanced default: moderate load, mild skew, mostly cross-pod.
    pub fn new(seed: u64, flows: usize, target_load: f64) -> WorkloadSpec {
        WorkloadSpec { seed, flows, target_load, locality_pct: 25, skew: 1.0 }
    }
}

/// Draw lognormal inter-arrival gaps with mean `mean_gap_secs` (sigma of
/// the underlying normal fixed at 1), via Box–Muller on the shared RNG.
fn lognormal_gap(rng: &mut StdRng, mean_gap_secs: f64) -> f64 {
    const SIGMA: f64 = 1.0;
    let mu = mean_gap_secs.ln() - SIGMA * SIGMA / 2.0;
    // Box–Muller; clamp u1 away from zero so ln stays finite.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + SIGMA * z).exp()
}

/// Pick an index from cumulative weights via one uniform draw.
fn pick_weighted(rng: &mut StdRng, cum: &[f64]) -> usize {
    let total = *cum.last().expect("non-empty weight table");
    let u: f64 = rng.gen::<f64>() * total;
    cum.partition_point(|&c| c <= u).min(cum.len() - 1)
}

/// Synthesize a seeded hypothetical flow set over a fat-tree: flow sizes
/// from `ecdf`, lognormal inter-arrivals calibrated so the hottest
/// expected host uplink sees `target_load` of its capacity, and a skewed
/// ToR-to-ToR spatial matrix (Zipf-like ToR popularity, `locality_pct`
/// of flows staying intra-pod). Fully deterministic per spec.
pub fn synth_fabric_workload(
    tree: &FatTree,
    ecdf: &FlowSizeEcdf,
    spec: &WorkloadSpec,
) -> Result<Vec<WhatIfFlow>> {
    // Hosts hang off edge switches at the fat-tree's access tier.
    synth_workload_over(tree.hosts(), tree.pods(), tree.pods() / 2, gbps(1.0), ecdf, spec)
}

/// Generic variant of [`synth_fabric_workload`] for an arbitrary host
/// list: hosts are grouped into `groups * tors_per_group` equal "racks"
/// in list order (pass `1, 1` for no structure), and `access_capacity`
/// is the per-host access-link capacity the load calibration targets.
pub fn synth_workload_over(
    hosts: &[NodeId],
    groups: usize,
    tors_per_group: usize,
    access_capacity: Bps,
    ecdf: &FlowSizeEcdf,
    spec: &WorkloadSpec,
) -> Result<Vec<WhatIfFlow>> {
    if hosts.len() < 2 {
        return Err(NetError::Invalid("workload synthesis needs at least two hosts".into()));
    }
    if !(spec.target_load > 0.0 && spec.target_load.is_finite()) {
        return Err(NetError::Invalid(format!("target load {} out of range", spec.target_load)));
    }
    if access_capacity <= 0.0 || access_capacity.is_nan() {
        return Err(NetError::Invalid("access capacity must be positive".into()));
    }
    let requested_tors = (groups * tors_per_group).max(1);
    let hosts_per_tor = hosts.len().div_ceil(requested_tors);
    // Actual rack count after rounding (the last rack may be partial).
    let n_tors = (hosts.len() - 1) / hosts_per_tor + 1;
    let tors_per_group = n_tors.div_ceil(groups.max(1));
    let locality_pct = spec.locality_pct.min(100);
    let locality = f64::from(locality_pct) / 100.0;

    // Zipf-like ToR popularity (rank = index), as a cumulative table.
    let weight = |t: usize| 1.0 / ((t + 1) as f64).powf(spec.skew);
    let mut cum_src = Vec::with_capacity(n_tors);
    let mut acc = 0.0;
    for t in 0..n_tors {
        acc += weight(t);
        cum_src.push(acc);
    }
    let total_w = acc;

    // Destination marginals at ToR granularity, for calibration: the
    // sampler below picks dst ToRs with the same skew, restricted to the
    // source group (locality) or to the other groups (1 - locality).
    let group_of = |t: usize| t / tors_per_group;
    let mut p_dst_tor = vec![0.0; n_tors];
    for s in 0..n_tors {
        let ps = weight(s) / total_w;
        let g = group_of(s);
        let (mut in_w, mut out_w) = (0.0, 0.0);
        for d in 0..n_tors {
            if group_of(d) == g {
                in_w += weight(d);
            } else {
                out_w += weight(d);
            }
        }
        for (d, p) in p_dst_tor.iter_mut().enumerate() {
            let (branch, denom) =
                if group_of(d) == g { (locality, in_w) } else { (1.0 - locality, out_w) };
            if denom > 0.0 {
                *p += ps * branch * weight(d) / denom;
            }
        }
    }
    // Hottest expected host marginal over src egress and dst ingress.
    let mut p_max = 0.0f64;
    for (t, &p_dst) in p_dst_tor.iter().enumerate() {
        let p_src = weight(t) / total_w;
        let hosts_here = hosts_per_tor.min(hosts.len() - t * hosts_per_tor);
        let per_host = p_src.max(p_dst) / hosts_here.max(1) as f64;
        p_max = p_max.max(per_host);
    }

    // Aggregate arrival rate so offered load on the hottest access link
    // equals the target: lambda * P_max * mean_bytes * 8 = load * cap.
    let mean_bytes = ecdf.mean_bytes();
    let lambda = spec.target_load * access_capacity / (8.0 * mean_bytes * p_max);
    let mean_gap = 1.0 / lambda;

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.flows);
    let mut at = 0.0f64;
    // Scratch cumulative table for the per-source dst-ToR draw.
    let mut cum_dst = vec![0.0; n_tors];
    for _ in 0..spec.flows {
        at += lognormal_gap(&mut rng, mean_gap);
        let src_tor = pick_weighted(&mut rng, &cum_src);
        let hosts_here = hosts_per_tor.min(hosts.len() - src_tor * hosts_per_tor);
        let src = hosts[src_tor * hosts_per_tor + rng.gen_range(0..hosts_here)];
        let stay_local = n_tors == 1 || rng.gen_range(0..100u32) < locality_pct;
        let g = group_of(src_tor);
        let mut acc = 0.0;
        for (d, c) in cum_dst.iter_mut().enumerate() {
            if (group_of(d) == g) == stay_local {
                acc += weight(d);
            }
            *c = acc;
        }
        let dst = if acc > 0.0 {
            let dst_tor = pick_weighted(&mut rng, &cum_dst);
            let dh = hosts_per_tor.min(hosts.len() - dst_tor * hosts_per_tor);
            let mut dst = hosts[dst_tor * hosts_per_tor + rng.gen_range(0..dh)];
            if dst == src {
                // Same rack, same host: take the neighbour instead.
                let i = hosts.iter().position(|&h| h == src).unwrap_or(0);
                dst = hosts[(i + 1) % hosts.len()];
            }
            dst
        } else {
            // Degenerate partition (e.g. one group, no locality): uniform.
            let i = hosts.iter().position(|&h| h == src).unwrap_or(0);
            hosts[(i + 1 + rng.gen_range(0..hosts.len() - 1)) % hosts.len()]
        };
        out.push(WhatIfFlow {
            src,
            dst,
            size_bytes: ecdf.sample(&mut rng),
            arrival: SimTime::from_secs_f64(at),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_tree_has_standard_shape() {
        let t = FatTree::build(4).unwrap();
        // 16 hosts, 8 edge, 8 agg, 4 core.
        assert_eq!(t.topology().node_count(), 16 + 8 + 8 + 4);
        // 16 host links + 4 pods * 4 edge-agg + 4 pods * 4 agg-core.
        assert_eq!(t.topology().link_count(), 16 + 16 + 16);
        assert!(t.topology().is_connected());
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.hosts_per_pod(), 4);
    }

    #[test]
    fn k16_tree_crosses_the_thousand_node_bar() {
        let t = FatTree::build(16).unwrap();
        assert_eq!(t.topology().node_count(), 1024 + 128 + 128 + 64);
        assert_eq!(t.topology().link_count(), 3 * 1024);
        assert!(t.topology().is_connected());
    }

    #[test]
    fn pod_partition_tiles_every_link() {
        let t = FatTree::build(4).unwrap();
        let mut per_pod = vec![0usize; t.pods()];
        let mut spine = 0usize;
        for l in t.topology().link_ids() {
            match t.pod_of_link(l) {
                Some(p) => per_pod[p] += 1,
                None => spine += 1,
            }
        }
        // Each pod: 4 host links + 4 edge-agg links; spine: 16 agg-core.
        assert!(per_pod.iter().all(|&c| c == 8), "{per_pod:?}");
        assert_eq!(spine, 16);
        // Hosts and pod switches carry their pod; the core carries none.
        assert_eq!(t.pod_of(t.host(2, 0)), Some(2));
        assert_eq!(t.pod_of(NodeId(0)), None); // first core switch
    }

    #[test]
    fn build_is_deterministic() {
        let a = FatTree::build(6).unwrap();
        let b = FatTree::build(6).unwrap();
        assert_eq!(a.hosts(), b.hosts());
        for n in a.topology().node_ids() {
            assert_eq!(a.topology().node(n).name, b.topology().node(n).name);
        }
    }

    #[test]
    fn churn_replays_bit_identically_per_seed_and_mode() {
        let run = |mode| {
            let mut c = FabricChurn::new(4, 24, 0xFAB, 75, mode).unwrap();
            for _ in 0..12 {
                c.step().unwrap();
            }
            assert_eq!(c.live_flows(), 24);
            (c.sim.rates_digest(), c.sim.event_digest())
        };
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Incremental));
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Full));
    }

    #[test]
    fn ecdf_validates_and_samples_in_range() {
        assert!(FlowSizeEcdf::new(&[(0.0, 10)]).is_err());
        assert!(FlowSizeEcdf::new(&[(0.1, 10), (1.0, 20)]).is_err());
        assert!(FlowSizeEcdf::new(&[(0.0, 10), (0.5, 5), (1.0, 20)]).is_err());
        let e = FlowSizeEcdf::uniform(1_000, 9_000).unwrap();
        assert!((e.mean_bytes() - 5_000.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = e.sample(&mut rng);
            assert!((1_000..=9_000).contains(&s), "{s}");
        }
        let ws = FlowSizeEcdf::web_search();
        let dm = FlowSizeEcdf::data_mining();
        assert!(dm.mean_bytes() > ws.mean_bytes());
    }

    #[test]
    fn synthesis_is_deterministic_per_spec() {
        let tree = FatTree::build(4).unwrap();
        let ecdf = FlowSizeEcdf::web_search();
        let spec = WorkloadSpec::new(42, 64, 0.5);
        let a = synth_fabric_workload(&tree, &ecdf, &spec).unwrap();
        let b = synth_fabric_workload(&tree, &ecdf, &spec).unwrap();
        assert_eq!(a, b);
        let c = synth_fabric_workload(&tree, &ecdf, &WorkloadSpec::new(43, 64, 0.5)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn synthesis_yields_valid_replayable_flows() {
        let tree = FatTree::build(4).unwrap();
        let ecdf = FlowSizeEcdf::uniform(10_000, 1_000_000).unwrap();
        let spec = WorkloadSpec { seed: 9, flows: 200, target_load: 0.6, locality_pct: 50, skew: 1.0 };
        let flows = synth_fabric_workload(&tree, &ecdf, &spec).unwrap();
        assert_eq!(flows.len(), 200);
        let hosts = tree.hosts();
        let mut last = crate::time::SimTime::ZERO;
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(hosts.contains(&f.src) && hosts.contains(&f.dst));
            assert!(f.arrival >= last, "arrivals must be nondecreasing");
            last = f.arrival;
        }
        // The set replays cleanly through the what-if kernel.
        let (topo, _) = tree.into_parts();
        let mut eng = crate::whatif::WhatIfEngine::from_topology(topo);
        let rep = eng.estimate(&flows).unwrap();
        assert!(rep.estimates.iter().all(|e| e.completed));
    }

    #[test]
    fn higher_target_load_packs_arrivals_tighter() {
        let tree = FatTree::build(4).unwrap();
        let ecdf = FlowSizeEcdf::web_search();
        let low = synth_fabric_workload(&tree, &ecdf, &WorkloadSpec::new(1, 128, 0.1)).unwrap();
        let high = synth_fabric_workload(&tree, &ecdf, &WorkloadSpec::new(1, 128, 0.9)).unwrap();
        let span = |v: &[WhatIfFlow]| v.last().unwrap().arrival.as_secs_f64();
        // 9x the offered load compresses the same flow count into
        // roughly a ninth of the time (same seed, same draws).
        assert!(span(&high) < span(&low) / 4.0, "{} vs {}", span(&high), span(&low));
    }

    #[test]
    fn generic_host_synthesis_handles_flat_lists() {
        let hosts: Vec<NodeId> = (0..5).map(NodeId).collect();
        let ecdf = FlowSizeEcdf::uniform(1_000, 2_000).unwrap();
        let spec = WorkloadSpec::new(3, 50, 0.4);
        let flows =
            synth_workload_over(&hosts, 1, 1, gbps(1.0), &ecdf, &spec).unwrap();
        assert_eq!(flows.len(), 50);
        for f in &flows {
            assert_ne!(f.src, f.dst);
        }
        assert!(synth_workload_over(&hosts[..1], 1, 1, gbps(1.0), &ecdf, &spec).is_err());
    }

    #[test]
    fn churn_audits_clean() {
        let mut c = FabricChurn::new(4, 16, 7, 50, SolverMode::Incremental).unwrap();
        c.sim.enable_audit();
        for _ in 0..8 {
            c.step().unwrap();
        }
        assert!(c.sim.audit_violations().is_empty(), "{:?}", c.sim.audit_violations());
    }
}
