//! Property tests for conservation invariants of the fluid engine:
//! every byte a flow delivers is accounted on every directed interface of
//! its path — the foundation the whole SNMP measurement chain rests on.

use proptest::prelude::*;
use remos_net::flow::FlowParams;
use remos_net::topology::DirLink;
use remos_net::{mbps, SimDuration, SimTime, Simulator, Topology, TopologyBuilder};

/// A dumbbell with `n` hosts per side; capacities vary by seed.
fn dumbbell(n: usize, backbone_mbps: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let rl = b.network("rl");
    let rr = b.network("rr");
    for i in 0..n {
        let h = b.compute(&format!("l{i}"));
        b.link(h, rl, mbps(100.0), SimDuration::from_micros(10)).unwrap();
    }
    for i in 0..n {
        let h = b.compute(&format!("r{i}"));
        b.link(h, rr, mbps(100.0), SimDuration::from_micros(10)).unwrap();
    }
    b.link(rl, rr, mbps(backbone_mbps), SimDuration::from_micros(10)).unwrap();
    b.build().unwrap()
}

#[derive(Debug, Clone)]
struct FlowPlan {
    src: usize,   // left host index
    dst: usize,   // right host index
    volume: Option<u64>,
    rate_cap_mbps: Option<f64>,
    start_ms: u64,
}

fn arb_plan() -> impl Strategy<Value = FlowPlan> {
    (
        0usize..4,
        0usize..4,
        prop::option::of(1_000u64..20_000_000),
        prop::option::of(1.0..80.0f64),
        0u64..2_000,
    )
        .prop_map(|(src, dst, volume, rate_cap_mbps, start_ms)| FlowPlan {
            src,
            dst,
            volume,
            rate_cap_mbps,
            start_ms,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bytes_are_conserved_on_every_interface(
        plans in prop::collection::vec(arb_plan(), 1..10),
        backbone in 10.0..100.0f64,
    ) {
        let topo = dumbbell(4, backbone);
        let mut sim = Simulator::new(topo).unwrap();
        let t = sim.topology_arc();

        // Start flows at their scheduled times.
        let mut plans = plans;
        plans.sort_by_key(|p| p.start_ms);
        let mut handles = Vec::new();
        for p in &plans {
            sim.run_until(SimTime::from_millis(p.start_ms)).unwrap();
            let src = t.lookup(&format!("l{}", p.src)).unwrap();
            let dst = t.lookup(&format!("r{}", p.dst)).unwrap();
            let mut params = FlowParams {
                src,
                dst,
                weight: 1.0,
                rate_cap: p.rate_cap_mbps.map(mbps),
                volume: p.volume,
                tag: remos_net::flow::FlowTag::APP,
            };
            if params.volume.is_none() && params.rate_cap.is_none() {
                // keep at least one bound so the run terminates cleanly
                params.volume = Some(1_000_000);
            }
            handles.push(sim.start_flow(params).unwrap());
        }
        sim.run_until(SimTime::from_secs(30)).unwrap();
        // Stop anything persistent.
        for h in handles {
            if sim.flow_is_active(h) {
                sim.stop_flow(h).unwrap();
            }
        }
        let finished = sim.take_finished();

        // Expected per-interface octets: each flow contributes its bytes
        // to every hop of its (final) path. Flows are never rerouted in
        // this test, so the static route is the path.
        let routing = sim.routing().clone_box_for_test();
        let mut expected = vec![0.0f64; t.dir_link_count()];
        for rec in &finished {
            let path = routing.path(&t, rec.src, rec.dst).unwrap();
            for hop in &path.hops {
                expected[hop.index()] += rec.bytes;
            }
        }
        for (i, exp) in expected.iter().enumerate() {
            let got = sim.dirlink_octets(DirLink::from_index(i));
            prop_assert!(
                (got - exp).abs() < 1.0,
                "iface {i}: counted {got}, expected {exp}"
            );
        }

        // And no resource ever exceeded its capacity-time budget: octets
        // on a link over 30 s cannot exceed capacity * 30 s.
        for i in 0..t.dir_link_count() {
            let link = t.link(DirLink::from_index(i).link);
            let budget = link.capacity * 30.0 / 8.0;
            let got = sim.dirlink_octets(DirLink::from_index(i));
            prop_assert!(got <= budget * (1.0 + 1e-9), "iface {i} overdrove its link");
        }
    }

    #[test]
    fn bounded_flows_deliver_exactly_their_volume(
        volumes in prop::collection::vec(1_000u64..5_000_000, 1..8),
    ) {
        let topo = dumbbell(4, 50.0);
        let mut sim = Simulator::new(topo).unwrap();
        let t = sim.topology_arc();
        let mut handles = Vec::new();
        for (i, &v) in volumes.iter().enumerate() {
            let src = t.lookup(&format!("l{}", i % 4)).unwrap();
            let dst = t.lookup(&format!("r{}", (i + 1) % 4)).unwrap();
            handles.push(sim.start_flow(FlowParams::bulk(src, dst, v)).unwrap());
        }
        let recs = sim.run_until_flows_complete(&handles).unwrap();
        for (rec, &v) in recs.iter().zip(&volumes) {
            prop_assert!(rec.completed);
            prop_assert!((rec.bytes - v as f64).abs() < 1.0, "{} vs {v}", rec.bytes);
        }
    }
}

/// Helper so the test can hold routing past later mutable borrows.
trait CloneRouting {
    fn clone_box_for_test(&self) -> remos_net::routing::Routing;
}

impl CloneRouting for remos_net::routing::Routing {
    fn clone_box_for_test(&self) -> remos_net::routing::Routing {
        self.clone()
    }
}

#[test]
fn counters_idle_network_stays_zero() {
    let topo = dumbbell(2, 100.0);
    let mut sim = Simulator::new(topo).unwrap();
    sim.run_until(SimTime::from_secs(100)).unwrap();
    let t = sim.topology_arc();
    for i in 0..t.dir_link_count() {
        assert_eq!(sim.dirlink_octets(DirLink::from_index(i)), 0.0);
    }
}
