//! Engine-level equivalence of the two rate-recomputation strategies.
//!
//! The same randomly generated churn schedule — weighted flow arrivals,
//! bounded completions, explicit stops, and scheduled link flaps
//! (including zero-length outages, which coalesce into a down+up pair at
//! one instant) — is replayed on two simulators, one per [`SolverMode`].
//! Every checkpoint's allocation digest, the final event digest, and the
//! audit outcome must match bit-for-bit: the incremental solver is not
//! allowed to be *approximately* right.

use proptest::prelude::*;
use remos_net::flow::FlowParams;
use remos_net::{mbps, SimDuration, SimTime, Simulator, SolverMode, Topology, TopologyBuilder};

/// A dumbbell with `n` hosts per side.
fn dumbbell(n: usize, backbone_mbps: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let rl = b.network("rl");
    let rr = b.network("rr");
    for i in 0..n {
        let h = b.compute(&format!("l{i}"));
        b.link(h, rl, mbps(100.0), SimDuration::from_micros(10)).unwrap();
    }
    for i in 0..n {
        let h = b.compute(&format!("r{i}"));
        b.link(h, rr, mbps(100.0), SimDuration::from_micros(10)).unwrap();
    }
    b.link(rl, rr, mbps(backbone_mbps), SimDuration::from_micros(10)).unwrap();
    b.build().unwrap()
}

#[derive(Debug, Clone)]
struct FlowPlan {
    src: usize, // left host index
    dst: usize, // right host index
    weight_tenths: u32,
    volume: Option<u64>,
    rate_cap_mbps: Option<f64>,
    start_ms: u64,
    stop_after_ms: Option<u64>,
}

fn arb_flow() -> impl Strategy<Value = FlowPlan> {
    (
        0usize..4,
        0usize..4,
        1u32..50,
        prop::option::of(1_000u64..20_000_000),
        prop::option::of(1.0..80.0f64),
        0u64..3_000,
        prop::option::of(100u64..5_000),
    )
        .prop_map(
            |(src, dst, weight_tenths, volume, rate_cap_mbps, start_ms, stop_after_ms)| FlowPlan {
                src,
                dst,
                weight_tenths,
                volume,
                rate_cap_mbps,
                start_ms,
                stop_after_ms,
            },
        )
}

#[derive(Debug, Clone)]
struct FlapPlan {
    link_pick: usize,
    down_ms: u64,
    /// Outage length; zero means down and up are due at the same instant
    /// and must be coalesced into one routing rebuild.
    outage_ms: u64,
}

fn arb_flap() -> impl Strategy<Value = FlapPlan> {
    (0usize..16, 100u64..4_000, prop_oneof![Just(0u64), 1u64..2_000])
        .prop_map(|(link_pick, down_ms, outage_ms)| FlapPlan { link_pick, down_ms, outage_ms })
}

/// Trace of one replay: per-arrival allocation digests, final allocation
/// digest, final event digest, and rendered audit violations.
type Trace = (Vec<u64>, u64, u64, Vec<String>);

fn replay(mode: SolverMode, plans: &[FlowPlan], flaps: &[FlapPlan], backbone: f64) -> Trace {
    let mut sim = Simulator::new(dumbbell(4, backbone)).unwrap();
    sim.set_solver_mode(mode);
    sim.enable_audit();
    let t = sim.topology_arc();
    let links: Vec<_> = t.link_ids().collect();
    for f in flaps {
        let l = links[f.link_pick % links.len()];
        sim.schedule_link_state(SimTime::from_millis(f.down_ms), l, false).unwrap();
        sim.schedule_link_state(SimTime::from_millis(f.down_ms + f.outage_ms), l, true).unwrap();
    }
    let mut checkpoints = Vec::new();
    let mut stops: Vec<(u64, remos_net::FlowHandle)> = Vec::new();
    for p in plans {
        sim.run_until(SimTime::from_millis(p.start_ms)).unwrap();
        let src = t.lookup(&format!("l{}", p.src)).unwrap();
        let dst = t.lookup(&format!("r{}", p.dst)).unwrap();
        let mut params = FlowParams {
            src,
            dst,
            weight: f64::from(p.weight_tenths) / 10.0,
            rate_cap: p.rate_cap_mbps.map(mbps),
            volume: p.volume,
            tag: remos_net::flow::FlowTag::APP,
        };
        if params.volume.is_none() && params.rate_cap.is_none() {
            params.volume = Some(1_000_000);
        }
        // A flap may have cut the route; both replays must fail alike.
        if let Ok(h) = sim.start_flow(params) {
            if let Some(after) = p.stop_after_ms {
                stops.push((p.start_ms + after, h));
            }
        }
        checkpoints.push(sim.rates_digest());
    }
    stops.sort_by_key(|&(at, h)| (at, h.id()));
    for (at, h) in stops {
        sim.run_until(SimTime::from_millis(at)).unwrap();
        if sim.flow_is_active(h) {
            sim.stop_flow(h).unwrap();
        }
        checkpoints.push(sim.rates_digest());
    }
    sim.run_until(SimTime::from_secs(10)).unwrap();
    let rates = sim.rates_digest();
    let violations = sim.audit_violations().iter().map(|v| v.to_string()).collect();
    (checkpoints, rates, sim.event_digest(), violations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit-identical digests at every checkpoint, in both modes, with a
    /// clean audit (which, in incremental mode, includes a shadow full
    /// solve of every recomputation).
    #[test]
    fn incremental_and_full_replays_agree(
        plans in prop::collection::vec(arb_flow(), 1..12),
        flaps in prop::collection::vec(arb_flap(), 0..4),
        backbone in 10.0..100.0f64,
    ) {
        let mut plans = plans;
        plans.sort_by_key(|p| p.start_ms);
        let full = replay(SolverMode::Full, &plans, &flaps, backbone);
        let inc = replay(SolverMode::Incremental, &plans, &flaps, backbone);
        prop_assert!(full.3.is_empty(), "full-mode audit: {:?}", full.3);
        prop_assert!(inc.3.is_empty(), "incremental-mode audit: {:?}", inc.3);
        prop_assert_eq!(full, inc);
    }
}

/// Switching modes mid-run resynchronises cleanly: the rest of the run
/// still matches a run done entirely in the other mode.
#[test]
fn mode_switch_mid_run_converges() {
    let run = |switch: bool| {
        let mut sim = Simulator::new(dumbbell(4, 40.0)).unwrap();
        sim.enable_audit();
        let t = sim.topology_arc();
        let mut handles = Vec::new();
        for i in 0..4 {
            let src = t.lookup(&format!("l{i}")).unwrap();
            let dst = t.lookup(&format!("r{}", (i + 1) % 4)).unwrap();
            handles.push(sim.start_flow(FlowParams::bulk(src, dst, 40_000_000)).unwrap());
        }
        sim.run_until(SimTime::from_secs(1)).unwrap();
        if switch {
            sim.set_solver_mode(SolverMode::Full);
        }
        sim.run_until_flows_complete(&handles).unwrap();
        assert!(sim.audit_violations().is_empty(), "{:?}", sim.audit_violations());
        (sim.rates_digest(), sim.event_digest())
    };
    assert_eq!(run(false), run(true));
}
