//! What-if kernel vs. ground-truth simulator equivalence.
//!
//! The fluid FCT kernel ([`WhatIfEngine`]) exists so the query layer can
//! answer "what if I launched these flows?" thousands of times faster
//! than running the event-driven [`Simulator`] — but it is only useful
//! if it is *exactly* as right. For seeded fabric workloads across
//! fat-tree arities, flow counts, and offered loads, the kernel's
//! per-flow start/finish instants and its FCT digest must match a
//! ground-truth simulator replay bit-for-bit, in both [`SolverMode`]s.

use proptest::prelude::*;
use remos_net::fabric::{synth_fabric_workload, FatTree, FlowSizeEcdf, WorkloadSpec};
use remos_net::whatif::{replay_ground_truth, WhatIfEngine, WhatIfFlow};
use remos_net::SolverMode;

/// Deterministic seeded workload over a k-ary fat-tree.
fn workload(k: usize, seed: u64, flows: usize, load: f64, web: bool) -> (FatTree, Vec<WhatIfFlow>) {
    let tree = FatTree::build(k).unwrap();
    let ecdf = if web { FlowSizeEcdf::web_search() } else { FlowSizeEcdf::data_mining() };
    let spec = WorkloadSpec::new(seed, flows, load);
    let flows = synth_fabric_workload(&tree, &ecdf, &spec).unwrap();
    (tree, flows)
}

/// `(digest, per-flow (started, finished, completed))` for one replay.
type Trace = (u64, Vec<(u64, u64, bool)>);

fn trace_of(report: &remos_net::whatif::WhatIfReport) -> Trace {
    let per_flow = report
        .estimates
        .iter()
        .map(|e| (e.started.as_nanos(), e.finished.as_nanos(), e.completed))
        .collect();
    (report.fct_digest, per_flow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel estimates in both solver modes agree with ground-truth
    /// simulator replays in both solver modes, bit-for-bit.
    #[test]
    fn whatif_matches_ground_truth_replay(
        k in prop_oneof![Just(4usize), Just(6), Just(8)],
        seed in 0u64..1_000_000,
        n_flows in 1usize..48,
        load_pct in 5u32..60,
        web in any::<bool>(),
    ) {
        let load = f64::from(load_pct) / 100.0;
        let (tree, flows) = workload(k, seed, n_flows, load, web);
        prop_assert_eq!(flows.len(), n_flows);

        let mut engine = WhatIfEngine::from_topology(tree.topology().clone());
        engine.set_mode(SolverMode::Incremental);
        let inc = engine.estimate(&flows).unwrap();
        engine.set_mode(SolverMode::Full);
        let full = engine.estimate(&flows).unwrap();

        let truth_inc =
            replay_ground_truth(tree.topology().clone(), &flows, SolverMode::Incremental)
                .unwrap();
        let truth_full =
            replay_ground_truth(tree.topology().clone(), &flows, SolverMode::Full).unwrap();

        let expected = trace_of(&truth_inc);
        prop_assert_eq!(&trace_of(&truth_full), &expected, "ground truth modes diverge");
        prop_assert_eq!(&trace_of(&inc), &expected, "incremental kernel != ground truth");
        prop_assert_eq!(&trace_of(&full), &expected, "full kernel != ground truth");

        // Every flow drains (no horizon, finite capacities), and the
        // kernel reports the slowdown >= 1 invariant the simulator's
        // max-min allocation implies.
        for e in &inc.estimates {
            prop_assert!(e.completed);
            prop_assert!(e.slowdown >= 1.0 - 1e-9, "slowdown {}", e.slowdown);
        }
    }
}

/// One scratch engine reused across back-to-back batches stays
/// bit-identical to fresh ground-truth replays: the arena reset between
/// `estimate` calls leaks no state.
#[test]
fn engine_reuse_across_batches_is_clean() {
    let tree = FatTree::build(4).unwrap();
    let ecdf = FlowSizeEcdf::web_search();
    let mut engine = WhatIfEngine::from_topology(tree.topology().clone());
    for seed in [1u64, 2, 3, 4, 5] {
        let spec = WorkloadSpec::new(seed, 24, 0.3);
        let flows = synth_fabric_workload(&tree, &ecdf, &spec).unwrap();
        let got = engine.estimate(&flows).unwrap();
        let truth =
            replay_ground_truth(tree.topology().clone(), &flows, SolverMode::Incremental)
                .unwrap();
        assert_eq!(got.fct_digest, truth.fct_digest, "seed {seed}");
    }
}
