//! Node clustering (§7.2).
//!
//! "The application provides an initial start node, which is the first
//! node that is added to the selected cluster of nodes. Next, the node
//! with the shortest distance to the existing nodes in the cluster is
//! determined and added to the cluster. … The above step is repeated until
//! the cluster contains the number of nodes needed for execution."
//!
//! Distances come from a Remos logical-topology query
//! ([`remos_core::RemosGraph::distance_matrix`]). The optimal-set problem
//! "is equivalent to a k-clique problem which is known to be NP-hard"
//! (§7.2 fn. 1); [`exhaustive_cluster`] solves it anyway for testbed-sized
//! pools so the greedy heuristic's quality can be measured.

/// Symmetrize a directional distance matrix by taking the worst direction
/// — synchronous data-parallel phases are gated by their slowest transfer.
pub fn symmetrize_worst(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            out[i][j] = m[i][j].max(m[j][i]);
        }
    }
    out
}

/// Communication cost of a candidate node set: the sum of pairwise
/// distances. Lower is better. (A sum — rather than the bottleneck max —
/// rewards sets that are close on *all* pairs, matching all-to-all
/// phases.)
pub fn set_comm_cost(dist: &[Vec<f64>], members: &[usize]) -> f64 {
    let mut cost = 0.0;
    for (a, &i) in members.iter().enumerate() {
        for &j in &members[a + 1..] {
            cost += dist[i][j];
        }
    }
    cost
}

/// Greedy cluster selection: grow from `start` by repeatedly adding the
/// node minimizing the summed distance to the current members (ties break
/// toward the lower index, keeping runs deterministic). Returns member
/// indices including `start`, in selection order.
///
/// Panics if `k` exceeds the pool size or `start` is out of range.
pub fn greedy_cluster(dist: &[Vec<f64>], start: usize, k: usize) -> Vec<usize> {
    let n = dist.len();
    assert!(start < n, "start node out of range");
    assert!(k >= 1 && k <= n, "cluster size {k} out of range (pool {n})");
    let mut members = vec![start];
    let mut in_cluster = vec![false; n];
    in_cluster[start] = true;
    while members.len() < k {
        let mut best: Option<(f64, usize)> = None;
        for cand in 0..n {
            if in_cluster[cand] {
                continue;
            }
            let d: f64 = members.iter().map(|&m| dist[m][cand]).sum();
            match best {
                Some((bd, _)) if d >= bd => {}
                _ => best = Some((d, cand)),
            }
        }
        let (_, chosen) = best.expect("pool exhausted before k reached");
        members.push(chosen);
        in_cluster[chosen] = true;
    }
    members
}

/// Exhaustive optimal cluster containing `start`: the k-subset minimizing
/// [`set_comm_cost`]. Exponential; intended for pools the size of the
/// paper's testbed (n ≤ ~20).
pub fn exhaustive_cluster(dist: &[Vec<f64>], start: usize, k: usize) -> Vec<usize> {
    let n = dist.len();
    assert!(start < n && k >= 1 && k <= n);
    let others: Vec<usize> = (0..n).filter(|&i| i != start).collect();
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<usize> = Vec::new();
    let mut current = vec![start];

    fn recur(
        others: &[usize],
        from: usize,
        need: usize,
        current: &mut Vec<usize>,
        dist: &[Vec<f64>],
        best_cost: &mut f64,
        best: &mut Vec<usize>,
    ) {
        if need == 0 {
            let c = set_comm_cost(dist, current);
            if c < *best_cost {
                *best_cost = c;
                *best = current.clone();
            }
            return;
        }
        for idx in from..others.len() {
            if others.len() - idx < need {
                break;
            }
            current.push(others[idx]);
            recur(others, idx + 1, need - 1, current, dist, best_cost, best);
            current.pop();
        }
    }
    recur(&others, 0, k - 1, &mut current, dist, &mut best_cost, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 nodes in two triangles {0,1,2} and {3,4,5}: close within a
    /// triangle (1.0), far across (10.0).
    #[allow(clippy::needless_range_loop)]
    fn two_clusters() -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                m[i][j] = if (i < 3) == (j < 3) { 1.0 } else { 10.0 };
            }
        }
        m
    }

    #[test]
    fn greedy_stays_in_cluster() {
        let m = two_clusters();
        assert_eq!(greedy_cluster(&m, 0, 3), vec![0, 1, 2]);
        assert_eq!(greedy_cluster(&m, 4, 3), vec![4, 3, 5]);
    }

    #[test]
    fn greedy_spills_when_forced() {
        let m = two_clusters();
        let sel = greedy_cluster(&m, 0, 4);
        assert_eq!(&sel[..3], &[0, 1, 2]);
        assert_eq!(sel[3], 3); // tie among 3,4,5 broken by index
    }

    #[test]
    fn exhaustive_matches_greedy_on_easy_instance() {
        let m = two_clusters();
        let g = greedy_cluster(&m, 0, 3);
        let mut e = exhaustive_cluster(&m, 0, 3);
        let mut gs = g.clone();
        gs.sort_unstable();
        e.sort_unstable();
        assert_eq!(gs, e);
    }

    #[test]
    fn exhaustive_beats_greedy_on_adversarial_instance() {
        // Greedy trap: node 1 is very close to 0, but everything else is
        // close to {2,3} and far from 1.
        let inf = 100.0;
        let m = vec![
            vec![0.0, 0.1, 2.0, 2.0], // 0
            vec![0.1, 0.0, inf, inf], // 1
            vec![2.0, inf, 0.0, 0.5], // 2
            vec![2.0, inf, 0.5, 0.0], // 3
        ];
        let g = greedy_cluster(&m, 0, 3); // grabs 1 first, then pays inf
        let e = exhaustive_cluster(&m, 0, 3); // {0,2,3}
        assert!(set_comm_cost(&m, &e) < set_comm_cost(&m, &g));
        let mut es = e.clone();
        es.sort_unstable();
        assert_eq!(es, vec![0, 2, 3]);
    }

    #[test]
    fn set_cost_counts_each_pair_once() {
        let m = two_clusters();
        assert_eq!(set_comm_cost(&m, &[0, 1, 2]), 3.0);
        assert_eq!(set_comm_cost(&m, &[0, 3]), 10.0);
        assert_eq!(set_comm_cost(&m, &[2]), 0.0);
    }

    #[test]
    fn symmetrize_takes_worst_direction() {
        let m = vec![vec![0.0, 1.0], vec![5.0, 0.0]];
        let s = symmetrize_worst(&m);
        assert_eq!(s[0][1], 5.0);
        assert_eq!(s[1][0], 5.0);
    }

    #[test]
    fn k_equals_one() {
        let m = two_clusters();
        assert_eq!(greedy_cluster(&m, 2, 1), vec![2]);
        assert_eq!(exhaustive_cluster(&m, 2, 1), vec![2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[allow(clippy::needless_range_loop)]
        fn arb_dist(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
            prop::collection::vec(prop::collection::vec(0.01..100.0f64, n), n).prop_map(
                move |mut m| {
                    for i in 0..n {
                        m[i][i] = 0.0;
                        for j in 0..i {
                            m[i][j] = m[j][i]; // symmetric
                        }
                    }
                    m
                },
            )
        }

        proptest! {
            #[test]
            fn greedy_result_is_valid(m in arb_dist(7), start in 0usize..7, k in 1usize..=7) {
                let sel = greedy_cluster(&m, start, k);
                prop_assert_eq!(sel.len(), k);
                prop_assert_eq!(sel[0], start);
                let mut sorted = sel.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), k, "duplicates in selection");
            }

            #[test]
            fn exhaustive_never_worse_than_greedy(
                m in arb_dist(7),
                start in 0usize..7,
                k in 1usize..=7,
            ) {
                let g = greedy_cluster(&m, start, k);
                let e = exhaustive_cluster(&m, start, k);
                prop_assert!(
                    set_comm_cost(&m, &e) <= set_comm_cost(&m, &g) + 1e-9,
                    "exhaustive {} > greedy {}",
                    set_comm_cost(&m, &e),
                    set_comm_cost(&m, &g)
                );
            }
        }
    }
}
