//! Synchronous execution of data-parallel programs on the simulated
//! network.
//!
//! Each phase is a barrier-synchronized step, as in the paper's programs:
//! compute time is the slowest node's (ranks are distributed cyclically —
//! running a program compiled for 8 ranks on 5 nodes stacks two ranks on
//! some nodes, reproducing the imbalance the paper reports as "the
//! overhead of compiling for 8 nodes and running on 5"); communication
//! phases start real flows in the simulator and finish when the last
//! transfer completes under max-min sharing with any background traffic —
//! which is precisely how "a single busy communication link … degrade\[s\]
//! overall performance dramatically".

use crate::program::{Phase, Program};
use remos_net::flow::{FlowParams, FlowTag};
use remos_net::topology::NodeId;
use remos_net::{NetError, SimDuration, SimTime};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors from the runtime.
#[derive(Debug)]
pub enum FxError {
    /// Underlying simulator failure.
    Net(NetError),
    /// Remos/adaptation failure.
    Core(remos_core::RemosError),
    /// Bad mapping or program.
    Invalid(String),
}

impl fmt::Display for FxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FxError::Net(e) => write!(f, "network: {e}"),
            FxError::Core(e) => write!(f, "remos: {e}"),
            FxError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for FxError {}

impl From<NetError> for FxError {
    fn from(e: NetError) -> Self {
        FxError::Net(e)
    }
}

impl From<remos_core::RemosError> for FxError {
    fn from(e: remos_core::RemosError) -> Self {
        FxError::Core(e)
    }
}

/// Convenience alias.
pub type FxResult<T> = Result<T, FxError>;

/// Assignment of a program's ranks to named nodes (rank `r` runs on
/// `nodes[r % nodes.len()]`, i.e. cyclic distribution).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Active node names, rank-major.
    pub nodes: Vec<String>,
}

impl Mapping {
    /// Build a mapping; node names must be distinct and non-empty.
    pub fn new(nodes: Vec<String>) -> FxResult<Mapping> {
        if nodes.is_empty() {
            return Err(FxError::Invalid("empty mapping".into()));
        }
        let mut sorted = nodes.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != nodes.len() {
            return Err(FxError::Invalid("duplicate node in mapping".into()));
        }
        Ok(Mapping { nodes })
    }

    /// Convenience constructor from string slices.
    pub fn of(nodes: &[&str]) -> FxResult<Mapping> {
        Mapping::new(nodes.iter().map(|s| s.to_string()).collect())
    }

    /// Node index hosting `rank`.
    pub fn node_of_rank(&self, rank: usize) -> usize {
        rank % self.nodes.len()
    }

    /// Ranks hosted by node index `i` for a program of `ranks` ranks.
    pub fn ranks_on_node(&self, i: usize, ranks: usize) -> usize {
        (0..ranks).filter(|&r| self.node_of_rank(r) == i).count()
    }
}

/// Runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Fixed synchronization overhead added per phase (barrier cost).
    pub phase_overhead: SimDuration,
    /// Fixed cost of remapping the active node set at a migration point
    /// (replicated data: no copying, but the task graph restarts).
    pub migration_cost: SimDuration,
    /// Tag attached to application flows.
    pub flow_tag: FlowTag,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            phase_overhead: SimDuration::from_millis(1),
            // Remapping replicated-data programs is cheap (no copying) —
            // 500 ms covers the barrier + task-graph restart; calibrated
            // so the paper's adaptive-overhead row (941 s vs 862 s over
            // ~100 decisions) is reproduced.
            migration_cost: SimDuration::from_millis(500),
            flow_tag: FlowTag::APP,
        }
    }
}

/// Where the time of a run went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Computation (barrier-synchronized max over nodes).
    pub compute: f64,
    /// Communication phases.
    pub comm: f64,
    /// Per-phase synchronization overhead.
    pub sync: f64,
    /// Remos queries + clustering decisions (adaptive runs).
    pub decision: f64,
    /// Remapping costs (adaptive runs).
    pub migration: f64,
}

impl TimeBreakdown {
    /// Sum of the parts.
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.sync + self.decision + self.migration
    }
}

/// Result of executing a program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Program name.
    pub program: String,
    /// Wall-clock (simulated) execution time, seconds.
    pub elapsed: f64,
    /// Where the time went.
    pub breakdown: TimeBreakdown,
    /// Application bytes sent over the network.
    pub bytes_sent: u64,
    /// Migrations performed: (iteration index, new node set).
    pub migrations: Vec<(usize, Vec<String>)>,
    /// The final node set.
    pub final_mapping: Vec<String>,
}

/// The runtime.
pub struct FxRuntime {
    sim: SharedSim,
    /// Configuration.
    pub cfg: RuntimeConfig,
}

impl FxRuntime {
    /// Runtime over the shared simulator.
    pub fn new(sim: SharedSim, cfg: RuntimeConfig) -> FxRuntime {
        FxRuntime { sim, cfg }
    }

    /// Shared simulator handle.
    pub fn sim(&self) -> &SharedSim {
        &self.sim
    }

    fn resolve(&self, mapping: &Mapping) -> FxResult<(Vec<NodeId>, Vec<f64>)> {
        let sim = self.sim.lock();
        let topo = sim.topology();
        let mut ids = Vec::with_capacity(mapping.nodes.len());
        let mut speeds = Vec::with_capacity(mapping.nodes.len());
        for n in &mapping.nodes {
            let id = topo.lookup(n)?;
            ids.push(id);
            speeds.push(topo.node(id).compute_flops);
        }
        Ok((ids, speeds))
    }

    /// Node-pair transfers (src node, dst node, bytes) a comm phase
    /// induces under a mapping; rank-local transfers are free.
    fn node_transfers(
        pattern: &crate::program::CommPattern,
        ranks: usize,
        mapping: &Mapping,
    ) -> Vec<(usize, usize, u64)> {
        let mut agg: HashMap<(usize, usize), u64> = HashMap::new();
        for (rs, rd, bytes) in pattern.transfers(ranks) {
            let ns = mapping.node_of_rank(rs);
            let nd = mapping.node_of_rank(rd);
            if ns != nd {
                *agg.entry((ns, nd)).or_insert(0) += bytes;
            }
        }
        let mut v: Vec<(usize, usize, u64)> =
            agg.into_iter().map(|((s, d), b)| (s, d, b)).collect();
        v.sort_unstable(); // deterministic flow start order
        v
    }

    /// Execute one phase; returns (elapsed seconds, bytes sent).
    fn run_phase(
        &mut self,
        phase: &Phase,
        ranks: usize,
        mapping: &Mapping,
        ids: &[NodeId],
        speeds: &[f64],
        breakdown: &mut TimeBreakdown,
    ) -> FxResult<u64> {
        match phase {
            Phase::Compute { parallel_flops, replicated_flops } => {
                // Barrier semantics: the slowest node gates the phase.
                let per_rank = parallel_flops / ranks as f64;
                let mut worst = 0.0f64;
                for (i, &speed) in speeds.iter().enumerate() {
                    let k = mapping.ranks_on_node(i, ranks) as f64;
                    let t = k * (per_rank + replicated_flops) / speed.max(1.0);
                    worst = worst.max(t);
                }
                let d = SimDuration::from_secs_f64(worst);
                self.sim.lock().run_for(d)?;
                breakdown.compute += worst;
                Ok(0)
            }
            Phase::Comm(pattern) => {
                let transfers = Self::node_transfers(pattern, ranks, mapping);
                if transfers.is_empty() {
                    return Ok(0);
                }
                let mut bytes = 0;
                let (t0, records, tail_latency) = {
                    let mut sim = self.sim.lock();
                    let t0 = sim.now();
                    let mut handles = Vec::with_capacity(transfers.len());
                    let mut tail_latency = SimDuration::ZERO;
                    for &(s, d, b) in &transfers {
                        bytes += b;
                        let path = sim.routing().path(sim.topology(), ids[s], ids[d])?;
                        tail_latency = tail_latency.max(path.latency(sim.topology()));
                        let h = sim.start_flow(
                            FlowParams::bulk(ids[s], ids[d], b).with_tag(self.cfg.flow_tag),
                        )?;
                        handles.push(h);
                    }
                    let records = sim.run_until_flows_complete(&handles)?;
                    (t0, records, tail_latency)
                };
                // The last bytes still propagate down the longest path
                // before the barrier releases.
                self.sim.lock().run_for(tail_latency)?;
                let t1 = records
                    .iter()
                    .map(|r| r.finished)
                    .max()
                    .unwrap_or(t0)
                    + tail_latency;
                breakdown.comm += t1.since(t0).as_secs_f64();
                Ok(bytes)
            }
        }
    }

    fn pay_overhead(&mut self, breakdown: &mut TimeBreakdown) -> FxResult<()> {
        self.sim.lock().run_for(self.cfg.phase_overhead)?;
        breakdown.sync += self.cfg.phase_overhead.as_secs_f64();
        Ok(())
    }

    /// Execute `prog` on a fixed mapping.
    pub fn run(&mut self, prog: &Program, mapping: &Mapping) -> FxResult<ExecutionReport> {
        self.run_with_hook(prog, mapping.clone(), |_, _, _| Ok(None))
    }

    /// Execute with a migration hook called at every iteration boundary:
    /// `hook(iteration, current mapping, last iteration secs)` may return
    /// a new mapping. The hook's own Remos queries advance simulated time;
    /// that time is accounted as `decision`.
    pub fn run_with_hook(
        &mut self,
        prog: &Program,
        mut mapping: Mapping,
        mut hook: impl FnMut(usize, &Mapping, f64) -> FxResult<Option<Mapping>>,
    ) -> FxResult<ExecutionReport> {
        if prog.ranks == 0 {
            return Err(FxError::Invalid("program has zero ranks".into()));
        }
        if mapping.nodes.len() > prog.ranks {
            return Err(FxError::Invalid(format!(
                "{} nodes exceed {} ranks",
                mapping.nodes.len(),
                prog.ranks
            )));
        }
        let (mut ids, mut speeds) = self.resolve(&mapping)?;
        let start = self.now();
        let mut breakdown = TimeBreakdown::default();
        let mut bytes_sent = 0u64;
        let mut migrations = Vec::new();

        for ph in &prog.startup {
            bytes_sent += self.run_phase(ph, prog.ranks, &mapping, &ids, &speeds, &mut breakdown)?;
            self.pay_overhead(&mut breakdown)?;
        }
        let mut last_iter_secs = 0.0;
        for it in 0..prog.iterations {
            // Migration point: all communication has completed.
            let t_dec0 = self.now();
            if let Some(new_mapping) = hook(it, &mapping, last_iter_secs)? {
                let t_dec1 = self.now();
                breakdown.decision += t_dec1.since(t_dec0).as_secs_f64();
                if new_mapping != mapping {
                    mapping = new_mapping;
                    let (i, s) = self.resolve(&mapping)?;
                    ids = i;
                    speeds = s;
                    self.sim.lock().run_for(self.cfg.migration_cost)?;
                    breakdown.migration += self.cfg.migration_cost.as_secs_f64();
                    migrations.push((it, mapping.nodes.clone()));
                }
            } else {
                let t_dec1 = self.now();
                breakdown.decision += t_dec1.since(t_dec0).as_secs_f64();
            }
            let t_it0 = self.now();
            // Execute the body; a mid-iteration route loss (link failure)
            // triggers one emergency adaptation and an iteration restart —
            // replicated data makes the restart legal (the paper's
            // migration-legality rule), though the partial work is lost.
            let mut emergency_retries = 0;
            'body: loop {
                let result: FxResult<u64> = (|| {
                    let mut sent = 0;
                    for ph in &prog.body {
                        sent += self
                            .run_phase(ph, prog.ranks, &mapping, &ids, &speeds, &mut breakdown)?;
                        self.pay_overhead(&mut breakdown)?;
                    }
                    Ok(sent)
                })();
                match result {
                    Ok(sent) => {
                        bytes_sent += sent;
                        break 'body;
                    }
                    Err(FxError::Net(NetError::NoRoute { .. })) if emergency_retries < 2 => {
                        emergency_retries += 1;
                        let Some(new_mapping) = hook(it, &mapping, last_iter_secs)? else {
                            return Err(FxError::Invalid(
                                "route lost mid-iteration and the adaptation hook offered no \
                                 alternative mapping"
                                    .into(),
                            ));
                        };
                        mapping = new_mapping;
                        let (i, s) = self.resolve(&mapping)?;
                        ids = i;
                        speeds = s;
                        self.sim.lock().run_for(self.cfg.migration_cost)?;
                        breakdown.migration += self.cfg.migration_cost.as_secs_f64();
                        migrations.push((it, mapping.nodes.clone()));
                    }
                    Err(e) => return Err(e),
                }
            }
            last_iter_secs = self.now().since(t_it0).as_secs_f64();
        }
        let elapsed = self.now().since(start).as_secs_f64();
        Ok(ExecutionReport {
            program: prog.name.clone(),
            elapsed,
            breakdown,
            bytes_sent,
            migrations,
            final_mapping: mapping.nodes,
        })
    }

    fn now(&self) -> SimTime {
        self.sim.lock().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CommPattern;
    use remos_net::{mbps, Simulator, TopologyBuilder};
    use remos_snmp::sim::share;

    /// 4 hosts on one router, 100 Mbps.
    fn testnet() -> SharedSim {
        let mut b = TopologyBuilder::new();
        let r = b.network("sw");
        for i in 1..=4 {
            let h = b.compute(&format!("h{i}"));
            b.link(h, r, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        }
        share(Simulator::new(b.build().unwrap()).unwrap())
    }

    fn compute_prog(iters: usize) -> Program {
        Program {
            name: "compute".into(),
            ranks: 2,
            startup: vec![],
            body: vec![Phase::Compute { parallel_flops: 100e6, replicated_flops: 0.0 }],
            iterations: iters,
        }
    }

    #[test]
    fn compute_phase_timing() {
        let sim = testnet();
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        let prog = compute_prog(1);
        let m = Mapping::of(&["h1", "h2"]).unwrap();
        let rep = rt.run(&prog, &m).unwrap();
        // 100 Mflops split over 2 nodes at 50 Mflops/s each = 1 s.
        assert!((rep.breakdown.compute - 1.0).abs() < 1e-6, "{:?}", rep.breakdown);
        assert_eq!(rep.bytes_sent, 0);
        assert!(rep.migrations.is_empty());
    }

    #[test]
    fn comm_phase_timing() {
        let sim = testnet();
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        let prog = Program {
            name: "x".into(),
            ranks: 2,
            startup: vec![],
            body: vec![Phase::Comm(CommPattern::AllToAll { bytes_per_pair: 12_500_000 })],
            iterations: 1,
        };
        let m = Mapping::of(&["h1", "h2"]).unwrap();
        let rep = rt.run(&prog, &m).unwrap();
        // 12.5 MB each way simultaneously over full-duplex 100 Mbps = 1 s.
        assert!((rep.breakdown.comm - 1.0).abs() < 1e-3, "{:?}", rep.breakdown);
        assert_eq!(rep.bytes_sent, 25_000_000);
    }

    #[test]
    fn comm_slows_under_background_traffic() {
        let sim = testnet();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let h1 = topo.lookup("h1").unwrap();
            let h3 = topo.lookup("h3").unwrap();
            // One greedy background flow shares h1's uplink.
            s.start_flow(FlowParams::greedy(h1, h3)).unwrap();
        }
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        let prog = Program {
            name: "x".into(),
            ranks: 2,
            startup: vec![],
            body: vec![Phase::Comm(CommPattern::AllToAll { bytes_per_pair: 12_500_000 })],
            iterations: 1,
        };
        let m = Mapping::of(&["h1", "h2"]).unwrap();
        let rep = rt.run(&prog, &m).unwrap();
        // h1 -> h2 now gets 50 Mbps: that direction takes 2 s.
        assert!((rep.breakdown.comm - 2.0).abs() < 1e-2, "{:?}", rep.breakdown);
    }

    #[test]
    fn rank_stacking_imbalance() {
        let sim = testnet();
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        // Compiled for 4 ranks, run on 3 nodes: one node carries 2 ranks.
        let prog = Program {
            name: "x".into(),
            ranks: 4,
            startup: vec![],
            body: vec![Phase::Compute { parallel_flops: 200e6, replicated_flops: 0.0 }],
            iterations: 1,
        };
        let m3 = Mapping::of(&["h1", "h2", "h3"]).unwrap();
        let rep3 = rt.run(&prog, &m3).unwrap();
        // Per rank: 50 Mflops = 1 s; stacked node: 2 s.
        assert!((rep3.breakdown.compute - 2.0).abs() < 1e-6);
        let m4 = Mapping::of(&["h1", "h2", "h3", "h4"]).unwrap();
        let rep4 = rt.run(&prog, &m4).unwrap();
        assert!((rep4.breakdown.compute - 1.0).abs() < 1e-6);
    }

    #[test]
    fn local_transfers_are_free() {
        let sim = testnet();
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        // 2 ranks on ONE node: all-to-all is entirely node-local.
        let prog = Program {
            name: "x".into(),
            ranks: 2,
            startup: vec![],
            body: vec![Phase::Comm(CommPattern::AllToAll { bytes_per_pair: 1_000_000 })],
            iterations: 1,
        };
        let m = Mapping::of(&["h1"]).unwrap();
        let rep = rt.run(&prog, &m).unwrap();
        assert_eq!(rep.bytes_sent, 0);
        assert!(rep.breakdown.comm < 1e-9);
    }

    #[test]
    fn hook_driven_migration() {
        let sim = testnet();
        let cfg = RuntimeConfig {
            migration_cost: SimDuration::from_secs(3),
            ..RuntimeConfig::default()
        };
        let mut rt = FxRuntime::new(sim, cfg);
        let prog = compute_prog(3);
        let m = Mapping::of(&["h1", "h2"]).unwrap();
        let rep = rt
            .run_with_hook(&prog, m, |it, _cur, _last| {
                if it == 1 {
                    Ok(Some(Mapping::of(&["h3", "h4"]).unwrap()))
                } else {
                    Ok(None)
                }
            })
            .unwrap();
        assert_eq!(rep.migrations.len(), 1);
        assert_eq!(rep.migrations[0].0, 1);
        assert_eq!(rep.final_mapping, vec!["h3", "h4"]);
        assert!((rep.breakdown.migration - 3.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_gather_and_ring_patterns() {
        let sim = testnet();
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        let m = Mapping::of(&["h1", "h2", "h3", "h4"]).unwrap();
        let run = |rt: &mut FxRuntime, pattern: CommPattern| {
            let prog = Program {
                name: "p".into(),
                ranks: 4,
                startup: vec![],
                body: vec![Phase::Comm(pattern)],
                iterations: 1,
            };
            rt.run(&prog, &m).unwrap()
        };
        // Broadcast: root's uplink carries 3 x 12.5 MB = 3 s at 100 Mbps.
        let b = run(&mut rt, CommPattern::Broadcast { root: 0, bytes: 12_500_000 });
        assert!((b.breakdown.comm - 3.0).abs() < 1e-2, "{:?}", b.breakdown);
        // Gather: root's downlink carries 3 x 12.5 MB = 3 s.
        let g = run(&mut rt, CommPattern::Gather { root: 0, bytes: 12_500_000 });
        assert!((g.breakdown.comm - 3.0).abs() < 1e-2, "{:?}", g.breakdown);
        // Ring: disjoint hops, all concurrent: 1 s.
        let r = run(&mut rt, CommPattern::Ring { bytes: 12_500_000 });
        assert!((r.breakdown.comm - 1.0).abs() < 1e-2, "{:?}", r.breakdown);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let sim = testnet();
            let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
            let prog = Program {
                name: "d".into(),
                ranks: 3,
                startup: vec![Phase::Comm(CommPattern::Broadcast { root: 0, bytes: 100_000 })],
                body: vec![
                    Phase::Compute { parallel_flops: 30e6, replicated_flops: 5e6 },
                    Phase::Comm(CommPattern::AllToAll { bytes_per_pair: 777_777 }),
                ],
                iterations: 7,
            };
            let m = Mapping::of(&["h1", "h2", "h3"]).unwrap();
            rt.run(&prog, &m).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn invalid_mappings_rejected() {
        assert!(Mapping::of(&[]).is_err());
        assert!(Mapping::of(&["a", "a"]).is_err());
        let sim = testnet();
        let mut rt = FxRuntime::new(sim, RuntimeConfig::default());
        let prog = compute_prog(1); // 2 ranks
        let m = Mapping::of(&["h1", "h2", "h3"]).unwrap();
        assert!(matches!(rt.run(&prog, &m), Err(FxError::Invalid(_))));
        let m2 = Mapping::of(&["h1", "nope"]).unwrap();
        assert!(matches!(rt.run(&prog, &m2), Err(FxError::Net(_))));
    }

    #[test]
    fn phase_overhead_accounted() {
        let sim = testnet();
        let cfg = RuntimeConfig {
            phase_overhead: SimDuration::from_millis(100),
            ..RuntimeConfig::default()
        };
        let mut rt = FxRuntime::new(sim, cfg);
        let prog = compute_prog(5);
        let m = Mapping::of(&["h1", "h2"]).unwrap();
        let rep = rt.run(&prog, &m).unwrap();
        assert!((rep.breakdown.sync - 0.5).abs() < 1e-9);
        assert!((rep.elapsed - rep.breakdown.total()).abs() < 1e-6);
    }
}
