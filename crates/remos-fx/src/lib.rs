//! # remos-fx — a data-parallel runtime substrate
//!
//! Stand-in for the Fx compiler/runtime system the paper builds on (§6–7):
//! "The Fx compiler system developed at Carnegie Mellon supports
//! integrated task and data parallel programming. … The Fx runtime system
//! was enhanced so that the assignment of nodes to tasks in a program
//! could be modified during execution."
//!
//! What the experiments actually exercise is (a) the synchronous phase
//! structure of data-parallel programs — compute phases alternating with
//! collective communication — and (b) the ability to remap the active node
//! set at migration points. This crate models exactly that:
//!
//! * [`program`] — programs as iterated phase lists (compute +
//!   collective-communication patterns);
//! * [`runtime`] — synchronous execution against the network simulator:
//!   communication phases start real flows and complete under max-min
//!   sharing with whatever background traffic exists;
//! * [`cluster`] — the greedy node-selection heuristic of §7.2 (plus an
//!   exhaustive reference for quality measurements);
//! * [`adapt`] — the adaptation module of §7.3: query Remos, build the
//!   distance matrix, cluster, compare against the current mapping,
//!   migrate when the improvement clears a threshold — including the
//!   self-traffic discount that fixes §8.3's migrate-away-from-your-own-
//!   traffic fallacy.

pub mod adapt;
pub mod cluster;
pub mod concurrent;
pub mod program;
pub mod runtime;

pub use adapt::{AdaptConfig, Adapter, QualityPolicy, SelfTraffic};
pub use cluster::{exhaustive_cluster, greedy_cluster, set_comm_cost};
pub use concurrent::{run_concurrent, TaskReport, TaskSpec};
pub use program::{CommPattern, Phase, Program};
pub use runtime::{ExecutionReport, FxRuntime, Mapping, RuntimeConfig};
