//! Concurrent task execution (Fx task parallelism, §7.1).
//!
//! "The Fx compiler system … supports integrated task and data parallel
//! programming. … The task parallelism support in Fx is used to map the
//! core computation onto an active task." Here several data-parallel
//! tasks run *concurrently* on one network: each task is an event-driven
//! state machine inside the simulator, so co-scheduled tasks contend for
//! links exactly like the paper's "internal sharing … as these
//! connections compete with each other for resources" (§3).
//!
//! Tasks run on fixed mappings (runtime migration stays with the
//! sequential [`crate::runtime::FxRuntime`]); use this executor to study
//! co-application interference and to validate simultaneous flow queries.

use crate::program::{CommPattern, Phase, Program};
use crate::runtime::{FxError, FxResult, Mapping, RuntimeConfig, TimeBreakdown};
use parking_lot::Mutex;
use remos_net::engine::{FlowHandle, ProcessCtx, TrafficProcess};
use remos_net::flow::FlowParams;
use remos_net::topology::NodeId;
use remos_net::{SimDuration, SimTime};
use remos_snmp::sim::SharedSim;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One task: a program pinned to a mapping, starting at `start`.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// The program to run.
    pub program: Program,
    /// Its node set.
    pub mapping: Mapping,
    /// When the task launches.
    pub start: SimTime,
}

/// Outcome of one concurrent task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskReport {
    /// Program name.
    pub program: String,
    /// Launch time, seconds.
    pub started: f64,
    /// Completion time, seconds.
    pub finished: f64,
    /// Elapsed (finished - started).
    pub elapsed: f64,
    /// Time breakdown (compute/comm/sync).
    pub breakdown: TimeBreakdown,
    /// Application bytes sent.
    pub bytes_sent: u64,
}

/// What the task state machine does next.
enum Step {
    /// Phase list exhausted.
    Done,
    /// Compute (or overhead) for a fixed span.
    Sleep(SimDuration),
    /// Communication transfers to launch.
    Comm(Vec<(usize, usize, u64)>),
}

struct TaskMachine {
    program: Program,
    mapping: Mapping,
    ids: Vec<NodeId>,
    speeds: Vec<f64>,
    cfg: RuntimeConfig,
    /// (iteration, phase-in-body); startup phases use iteration == usize::MAX.
    cursor: (usize, usize),
    in_startup: bool,
    started_at: Option<SimTime>,
    comm_started: Option<SimTime>,
    pending: Vec<FlowHandle>,
    breakdown: TimeBreakdown,
    bytes_sent: u64,
    slot: usize,
    results: Arc<Mutex<Vec<Option<TaskReport>>>>,
}

impl TaskMachine {
    fn phases(&self) -> &[Phase] {
        if self.in_startup {
            &self.program.startup
        } else {
            &self.program.body
        }
    }

    /// Advance the cursor past the phase just finished.
    fn advance(&mut self) {
        self.cursor.1 += 1;
        if self.cursor.1 >= self.phases().len() {
            self.cursor.1 = 0;
            if self.in_startup {
                self.in_startup = false;
                self.cursor.0 = 0;
                if self.program.body.is_empty() || self.program.iterations == 0 {
                    self.cursor.0 = self.program.iterations; // done
                }
            } else {
                self.cursor.0 += 1;
            }
        }
    }

    fn current_step(&self) -> Step {
        if !self.in_startup && self.cursor.0 >= self.program.iterations {
            return Step::Done;
        }
        let Some(phase) = self.phases().get(self.cursor.1) else { return Step::Done };
        match phase {
            Phase::Compute { parallel_flops, replicated_flops } => {
                let per_rank = parallel_flops / self.program.ranks as f64;
                let mut worst = 0.0f64;
                for (i, &speed) in self.speeds.iter().enumerate() {
                    let k = self.mapping.ranks_on_node(i, self.program.ranks) as f64;
                    worst = worst.max(k * (per_rank + replicated_flops) / speed.max(1.0));
                }
                Step::Sleep(SimDuration::from_secs_f64(worst))
            }
            Phase::Comm(pattern) => Step::Comm(Self::node_transfers(
                pattern,
                self.program.ranks,
                &self.mapping,
            )),
        }
    }

    fn node_transfers(
        pattern: &CommPattern,
        ranks: usize,
        mapping: &Mapping,
    ) -> Vec<(usize, usize, u64)> {
        let mut agg: HashMap<(usize, usize), u64> = HashMap::new();
        for (rs, rd, bytes) in pattern.transfers(ranks) {
            let ns = mapping.node_of_rank(rs);
            let nd = mapping.node_of_rank(rd);
            if ns != nd {
                *agg.entry((ns, nd)).or_insert(0) += bytes;
            }
        }
        let mut v: Vec<_> = agg.into_iter().map(|((s, d), b)| (s, d, b)).collect();
        v.sort_unstable();
        v
    }

    fn finish(&mut self, now: SimTime) {
        // `finish` only runs after `fire` set `started_at`; if that
        // invariant ever breaks, a zero-length report is still more
        // useful than a panic mid-simulation.
        let started = self.started_at.unwrap_or(now);
        self.results.lock()[self.slot] = Some(TaskReport {
            program: self.program.name.clone(),
            started: started.as_secs_f64(),
            finished: now.as_secs_f64(),
            elapsed: now.since(started).as_secs_f64(),
            breakdown: self.breakdown,
            bytes_sent: self.bytes_sent,
        });
    }
}

impl TrafficProcess for TaskMachine {
    fn fire(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
        // A comm phase just completed?
        if let Some(t0) = self.comm_started.take() {
            self.breakdown.comm += now.since(t0).as_secs_f64();
            self.pending.clear();
            self.breakdown.sync += self.cfg.phase_overhead.as_secs_f64();
            self.advance();
            // Pay the barrier overhead as real time before the next phase.
            return Some(now + self.cfg.phase_overhead);
        }
        self.schedule_next(now, ctx)
    }
}

impl TaskMachine {
    fn schedule_next(&mut self, now: SimTime, ctx: &mut ProcessCtx<'_>) -> Option<SimTime> {
        loop {
            match self.current_step() {
                Step::Done => {
                    self.finish(now);
                    return None;
                }
                Step::Sleep(d) => {
                    self.breakdown.compute += d.as_secs_f64();
                    self.breakdown.sync += self.cfg.phase_overhead.as_secs_f64();
                    self.advance();
                    return Some(now + d + self.cfg.phase_overhead);
                }
                Step::Comm(transfers) => {
                    if transfers.is_empty() {
                        // Fully node-local: free.
                        self.advance();
                        continue;
                    }
                    let mut handles = Vec::with_capacity(transfers.len());
                    for (s, d, b) in transfers {
                        self.bytes_sent += b;
                        handles.push(ctx.start_flow(
                            FlowParams::bulk(self.ids[s], self.ids[d], b)
                                .with_tag(self.cfg.flow_tag),
                        ));
                    }
                    self.comm_started = Some(now);
                    self.pending = handles.clone();
                    ctx.notify_when_complete(handles);
                    return None;
                }
            }
        }
    }
}

/// Run several tasks concurrently on the shared simulator. Returns the
/// per-task reports in input order once every task has finished.
pub fn run_concurrent(
    sim: &SharedSim,
    cfg: RuntimeConfig,
    tasks: Vec<TaskSpec>,
) -> FxResult<Vec<TaskReport>> {
    if tasks.is_empty() {
        return Ok(Vec::new());
    }
    let results: Arc<Mutex<Vec<Option<TaskReport>>>> =
        Arc::new(Mutex::new(vec![None; tasks.len()]));
    {
        let mut s = sim.lock();
        let topo = s.topology_arc();
        for (slot, t) in tasks.into_iter().enumerate() {
            if t.mapping.nodes.len() > t.program.ranks {
                return Err(FxError::Invalid(format!(
                    "task {slot}: {} nodes exceed {} ranks",
                    t.mapping.nodes.len(),
                    t.program.ranks
                )));
            }
            let mut ids = Vec::with_capacity(t.mapping.nodes.len());
            let mut speeds = Vec::with_capacity(t.mapping.nodes.len());
            for n in &t.mapping.nodes {
                let id = topo.lookup(n)?;
                ids.push(id);
                speeds.push(topo.node(id).compute_flops);
            }
            let has_startup = !t.program.startup.is_empty();
            let machine = TaskMachine {
                program: t.program,
                mapping: t.mapping,
                ids,
                speeds,
                cfg,
                cursor: (0, 0),
                in_startup: has_startup,
                started_at: None,
                comm_started: None,
                pending: Vec::new(),
                breakdown: TimeBreakdown::default(),
                bytes_sent: 0,
                slot,
                results: Arc::clone(&results),
            };
            s.add_process(t.start, Box::new(machine));
        }
    }
    // Drive the simulation until every slot reports, with a stall guard.
    let mut stalls = 0;
    loop {
        if results.lock().iter().all(Option::is_some) {
            break;
        }
        let before = sim.lock().now();
        sim.lock().run_for(SimDuration::from_secs(10))?;
        if sim.lock().now() == before {
            stalls += 1;
            if stalls > 3 {
                return Err(FxError::Invalid(
                    "concurrent tasks stalled (deadlocked flows?)".into(),
                ));
            }
        } else {
            stalls = 0;
        }
    }
    // The loop above only exits once every slot is Some, so filter_map
    // takes every report; it just avoids a panic path in library code.
    let mut out = results.lock();
    Ok(out.iter_mut().filter_map(|r| r.take()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CommPattern;
    use remos_net::{mbps, Simulator, TopologyBuilder};
    use remos_snmp::sim::share;

    /// 4 hosts on each of two routers joined by a backbone.
    fn testnet() -> SharedSim {
        let mut b = TopologyBuilder::new();
        let rl = b.network("rl");
        let rr = b.network("rr");
        for i in 0..4 {
            let h = b.compute(&format!("l{i}"));
            b.link(h, rl, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        }
        for i in 0..4 {
            let h = b.compute(&format!("r{i}"));
            b.link(h, rr, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        }
        b.link(rl, rr, mbps(100.0), SimDuration::from_micros(10)).unwrap();
        share(Simulator::new(b.build().unwrap()).unwrap())
    }

    fn comm_prog(name: &str, bytes: u64, iters: usize) -> Program {
        Program {
            name: name.into(),
            ranks: 2,
            startup: vec![],
            body: vec![Phase::Comm(CommPattern::AllToAll { bytes_per_pair: bytes })],
            iterations: iters,
        }
    }

    #[test]
    fn single_task_matches_sequential_runtime() {
        // The event-driven machine and the sequential runtime must agree.
        let prog = comm_prog("t", 12_500_000, 3);
        let seq = {
            let sim = testnet();
            let mut rt = crate::runtime::FxRuntime::new(sim, RuntimeConfig::default());
            rt.run(&prog, &Mapping::of(&["l0", "l1"]).unwrap()).unwrap()
        };
        let conc = {
            let sim = testnet();
            run_concurrent(
                &sim,
                RuntimeConfig::default(),
                vec![TaskSpec {
                    program: prog,
                    mapping: Mapping::of(&["l0", "l1"]).unwrap(),
                    start: SimTime::ZERO,
                }],
            )
            .unwrap()
        };
        // The sequential runtime additionally charges per-phase tail
        // propagation latency (~60 µs here), which the event-driven
        // machine does not model; agreement within a few ms is exact
        // otherwise.
        assert!(
            (conc[0].elapsed - seq.elapsed).abs() < 5e-3,
            "{} vs {}",
            conc[0].elapsed,
            seq.elapsed
        );
        assert_eq!(conc[0].bytes_sent, seq.bytes_sent);
        assert!((conc[0].breakdown.comm - seq.breakdown.comm).abs() < 5e-3);
    }

    #[test]
    fn disjoint_tasks_do_not_interfere() {
        let sim = testnet();
        let reports = run_concurrent(
            &sim,
            RuntimeConfig::default(),
            vec![
                TaskSpec {
                    program: comm_prog("a", 12_500_000, 2),
                    mapping: Mapping::of(&["l0", "l1"]).unwrap(),
                    start: SimTime::ZERO,
                },
                TaskSpec {
                    program: comm_prog("b", 12_500_000, 2),
                    mapping: Mapping::of(&["r0", "r1"]).unwrap(),
                    start: SimTime::ZERO,
                },
            ],
        )
        .unwrap();
        // Each all-to-all iteration: 12.5 MB at 100 Mbps = 1 s, x2 iters.
        for r in &reports {
            assert!((r.elapsed - 2.0).abs() < 0.01, "{r:?}");
        }
    }

    #[test]
    fn co_scheduled_tasks_share_the_backbone() {
        let sim = testnet();
        let reports = run_concurrent(
            &sim,
            RuntimeConfig::default(),
            vec![
                TaskSpec {
                    program: comm_prog("a", 12_500_000, 2),
                    mapping: Mapping::of(&["l0", "r0"]).unwrap(),
                    start: SimTime::ZERO,
                },
                TaskSpec {
                    program: comm_prog("b", 12_500_000, 2),
                    mapping: Mapping::of(&["l1", "r1"]).unwrap(),
                    start: SimTime::ZERO,
                },
            ],
        )
        .unwrap();
        // Both cross the backbone: each direction shared 50/50 while both
        // are active => each iteration takes ~2 s, total ~4 s.
        for r in &reports {
            assert!((r.elapsed - 4.0).abs() < 0.05, "{r:?}");
        }
    }

    #[test]
    fn staggered_start_is_honored() {
        let sim = testnet();
        let reports = run_concurrent(
            &sim,
            RuntimeConfig::default(),
            vec![TaskSpec {
                program: comm_prog("late", 12_500_000, 1),
                mapping: Mapping::of(&["l0", "l1"]).unwrap(),
                start: SimTime::from_secs(5),
            }],
        )
        .unwrap();
        assert!((reports[0].started - 5.0).abs() < 1e-9);
        assert!((reports[0].elapsed - 1.0).abs() < 0.01);
    }

    #[test]
    fn compute_and_mixed_phases() {
        let sim = testnet();
        let prog = Program {
            name: "mixed".into(),
            ranks: 2,
            startup: vec![Phase::Compute { parallel_flops: 100e6, replicated_flops: 0.0 }],
            body: vec![
                Phase::Compute { parallel_flops: 100e6, replicated_flops: 0.0 },
                Phase::Comm(CommPattern::AllToAll { bytes_per_pair: 12_500_000 }),
            ],
            iterations: 2,
        };
        let reports = run_concurrent(
            &sim,
            RuntimeConfig::default(),
            vec![TaskSpec {
                program: prog,
                mapping: Mapping::of(&["l0", "l1"]).unwrap(),
                start: SimTime::ZERO,
            }],
        )
        .unwrap();
        let r = &reports[0];
        // startup 1 s + 2 * (1 s compute + 1 s comm) = 5 s (+overheads).
        assert!((r.breakdown.compute - 3.0).abs() < 1e-6, "{r:?}");
        assert!((r.breakdown.comm - 2.0).abs() < 0.01, "{r:?}");
        assert!((r.elapsed - 5.0).abs() < 0.05, "{r:?}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_program() -> impl Strategy<Value = Program> {
            let phase = prop_oneof![
                (1.0e6..50.0e6f64).prop_map(|f| Phase::Compute {
                    parallel_flops: f,
                    replicated_flops: 0.0
                }),
                (10_000u64..2_000_000).prop_map(|b| Phase::Comm(CommPattern::AllToAll {
                    bytes_per_pair: b
                })),
                (10_000u64..2_000_000)
                    .prop_map(|b| Phase::Comm(CommPattern::Broadcast { root: 0, bytes: b })),
                (10_000u64..2_000_000)
                    .prop_map(|b| Phase::Comm(CommPattern::Ring { bytes: b })),
            ];
            (
                prop::collection::vec(phase.clone(), 0..2),
                prop::collection::vec(phase, 1..4),
                1usize..4,
                2usize..5,
            )
                .prop_map(|(startup, body, iterations, ranks)| Program {
                    name: "prop".into(),
                    ranks,
                    startup,
                    body,
                    iterations,
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The event-driven task machine and the sequential runtime
            /// are two implementations of the same semantics: on any
            /// single program they must agree (up to the sequential
            /// runtime's extra per-phase tail-latency charge).
            #[test]
            fn concurrent_matches_sequential(prog in arb_program()) {
                let nodes: Vec<String> =
                    (0..prog.ranks.min(4)).map(|i| format!("l{i}")).collect();
                let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
                let mapping = Mapping::of(&refs).unwrap();

                let seq = {
                    let sim = testnet();
                    let mut rt =
                        crate::runtime::FxRuntime::new(sim, RuntimeConfig::default());
                    rt.run(&prog, &mapping).unwrap()
                };
                let conc = {
                    let sim = testnet();
                    run_concurrent(
                        &sim,
                        RuntimeConfig::default(),
                        vec![TaskSpec { program: prog.clone(), mapping, start: SimTime::ZERO }],
                    )
                    .unwrap()
                };
                // Tail-latency differences: at most 40 µs per phase here.
                let phases =
                    (prog.startup.len() + prog.body.len() * prog.iterations) as f64;
                let slack = phases * 60e-6 + 1e-6;
                prop_assert!(
                    (conc[0].elapsed - seq.elapsed).abs() <= slack,
                    "conc {} vs seq {} (slack {slack})",
                    conc[0].elapsed,
                    seq.elapsed
                );
                prop_assert_eq!(conc[0].bytes_sent, seq.bytes_sent);
                // The two paths round compute spans to nanoseconds at
                // different points: tolerate a few ns per phase.
                prop_assert!(
                    (conc[0].breakdown.compute - seq.breakdown.compute).abs()
                        < phases * 1e-8 + 1e-9
                );
            }
        }
    }

    #[test]
    fn empty_and_invalid_inputs() {
        let sim = testnet();
        assert!(run_concurrent(&sim, RuntimeConfig::default(), vec![]).unwrap().is_empty());
        let too_many = TaskSpec {
            program: comm_prog("x", 10, 1), // 2 ranks
            mapping: Mapping::of(&["l0", "l1", "l2"]).unwrap(),
            start: SimTime::ZERO,
        };
        assert!(run_concurrent(&sim, RuntimeConfig::default(), vec![too_many]).is_err());
    }
}
