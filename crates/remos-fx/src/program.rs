//! Data-parallel program models.
//!
//! A program is a one-time `startup` phase list followed by `iterations`
//! repetitions of `body`. Iteration boundaries are the *migration points*
//! (§8.3: "iterative applications that adapt (if necessary) at the
//! beginning of every iteration of an outer loop"); the runtime guarantees
//! all communication has completed there, matching the paper's
//! replicated-data migration model.

use serde::{Deserialize, Serialize};

/// A collective communication pattern over the program's ranks.
///
/// Byte counts are *per logical transfer* as seen by the pattern; the
/// runtime turns them into point-to-point flows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CommPattern {
    /// Every rank sends `bytes_per_pair` to every other rank (matrix
    /// transpose / redistribution).
    AllToAll {
        /// Bytes each ordered pair exchanges.
        bytes_per_pair: u64,
    },
    /// Rank `root` sends `bytes` to every other rank.
    Broadcast {
        /// Sending rank.
        root: usize,
        /// Bytes per destination.
        bytes: u64,
    },
    /// Every rank but `root` sends `bytes` to `root` (reduction/gather
    /// traffic shape).
    Gather {
        /// Receiving rank.
        root: usize,
        /// Bytes per source.
        bytes: u64,
    },
    /// Rank i sends `bytes` to rank (i+1) mod P (nearest-neighbour shift
    /// / pipeline stage).
    Ring {
        /// Bytes per hop.
        bytes: u64,
    },
}

impl CommPattern {
    /// The point-to-point transfers (src rank, dst rank, bytes) this
    /// pattern induces on `p` ranks.
    pub fn transfers(&self, p: usize) -> Vec<(usize, usize, u64)> {
        match *self {
            CommPattern::AllToAll { bytes_per_pair } => {
                let mut v = Vec::with_capacity(p * (p - 1));
                for s in 0..p {
                    for d in 0..p {
                        if s != d {
                            v.push((s, d, bytes_per_pair));
                        }
                    }
                }
                v
            }
            CommPattern::Broadcast { root, bytes } => {
                (0..p).filter(|&d| d != root % p).map(|d| (root % p, d, bytes)).collect()
            }
            CommPattern::Gather { root, bytes } => {
                (0..p).filter(|&s| s != root % p).map(|s| (s, root % p, bytes)).collect()
            }
            CommPattern::Ring { bytes } => {
                (0..p).map(|s| (s, (s + 1) % p, bytes)).collect()
            }
        }
    }

    /// Total bytes moved on `p` ranks.
    pub fn total_bytes(&self, p: usize) -> u64 {
        self.transfers(p).iter().map(|&(_, _, b)| b).sum()
    }
}

/// One synchronous phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Computation: `parallel_flops` split evenly over the ranks, plus
    /// `replicated_flops` performed identically by every rank (the
    /// sequential fraction of codes like Airshed).
    Compute {
        /// Work divided across ranks.
        parallel_flops: f64,
        /// Work replicated on every rank.
        replicated_flops: f64,
    },
    /// Collective communication.
    Comm(CommPattern),
}

/// An iterated data-parallel program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    /// Display name.
    pub name: String,
    /// Rank count the program was compiled for. The runtime may execute
    /// it on fewer *nodes* (ranks are block-distributed), reproducing the
    /// paper's compiled-for-8-run-on-5 imbalance artifact.
    pub ranks: usize,
    /// One-time phases before the outer loop.
    pub startup: Vec<Phase>,
    /// Phases of one outer-loop iteration.
    pub body: Vec<Phase>,
    /// Outer-loop iteration count.
    pub iterations: usize,
}

impl Program {
    /// Total floating-point work of the whole run (startup + iterations),
    /// counting replicated work once per rank.
    pub fn total_flops(&self) -> f64 {
        let phase_flops = |ph: &Phase| match ph {
            Phase::Compute { parallel_flops, replicated_flops } => {
                parallel_flops + replicated_flops * self.ranks as f64
            }
            Phase::Comm(_) => 0.0,
        };
        let startup: f64 = self.startup.iter().map(phase_flops).sum();
        let body: f64 = self.body.iter().map(phase_flops).sum();
        startup + body * self.iterations as f64
    }

    /// Total bytes communicated over the whole run.
    pub fn total_comm_bytes(&self) -> u64 {
        let phase_bytes = |ph: &Phase| match ph {
            Phase::Comm(c) => c.total_bytes(self.ranks),
            Phase::Compute { .. } => 0,
        };
        let startup: u64 = self.startup.iter().map(phase_bytes).sum();
        let body: u64 = self.body.iter().map(phase_bytes).sum();
        startup + body * self.iterations as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_transfers() {
        let t = CommPattern::AllToAll { bytes_per_pair: 10 }.transfers(3);
        assert_eq!(t.len(), 6);
        assert!(t.contains(&(0, 1, 10)));
        assert!(t.contains(&(2, 0, 10)));
        assert!(!t.iter().any(|&(s, d, _)| s == d));
        assert_eq!(CommPattern::AllToAll { bytes_per_pair: 10 }.total_bytes(3), 60);
    }

    #[test]
    fn broadcast_and_gather() {
        let b = CommPattern::Broadcast { root: 1, bytes: 5 }.transfers(4);
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|&(s, _, _)| s == 1));
        let g = CommPattern::Gather { root: 0, bytes: 7 }.transfers(4);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|&(_, d, _)| d == 0));
    }

    #[test]
    fn ring_wraps() {
        let r = CommPattern::Ring { bytes: 1 }.transfers(3);
        assert_eq!(r, vec![(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
    }

    #[test]
    fn program_totals() {
        let p = Program {
            name: "toy".into(),
            ranks: 4,
            startup: vec![Phase::Compute { parallel_flops: 100.0, replicated_flops: 0.0 }],
            body: vec![
                Phase::Compute { parallel_flops: 40.0, replicated_flops: 10.0 },
                Phase::Comm(CommPattern::AllToAll { bytes_per_pair: 2 }),
            ],
            iterations: 5,
        };
        // startup 100 + 5 * (40 + 10*4)
        assert_eq!(p.total_flops(), 100.0 + 5.0 * 80.0);
        // 5 * 12 pairs * 2 bytes
        assert_eq!(p.total_comm_bytes(), 5 * 12 * 2);
    }
}
