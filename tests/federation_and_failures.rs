//! Integration tests for cooperating collectors and failure injection:
//! datagram loss, partial agent coverage, and wrong communities.

use remos::apps::testbed::cmu_testbed;
use remos::core::collector::multi::MultiCollector;
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::{Collector, SimClock};
use remos::core::{Query, Remos, RemosConfig, RemosError};
use remos::net::flow::FlowParams;
use remos::net::{mbps, SimDuration, Simulator};
use remos::snmp::sim::{register_all_agents, share, SharedSim};
use remos::snmp::SimTransport;
use std::sync::Arc;

fn base() -> (Arc<SimTransport>, SharedSim, Vec<String>) {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    (transport, sim, agents)
}

#[test]
fn federated_collectors_match_single_collector() {
    let (transport, sim, agents) = base();
    // Region split: aspen side vs timberline/whiteface side. The border
    // link (aspen—timberline) is visible to both children.
    let west: Vec<String> = agents
        .iter()
        .filter(|a| ["m-1", "m-2", "m-3", "aspen", "timberline"].contains(&a.as_str()))
        .cloned()
        .collect();
    let east: Vec<String> = agents
        .iter()
        .filter(|a| {
            ["m-4", "m-5", "m-6", "m-7", "m-8", "timberline", "whiteface", "aspen"]
                .contains(&a.as_str())
        })
        .cloned()
        .collect();
    let mk = |set: Vec<String>| {
        Box::new(SnmpCollector::new(
            Arc::clone(&transport),
            set,
            SnmpCollectorConfig::default(),
        )) as Box<dyn Collector>
    };
    let mut multi = MultiCollector::new(vec![mk(west), mk(east)]);
    multi.refresh_topology().unwrap();
    let merged = multi.topology().unwrap();

    let mut single =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    single.refresh_topology().unwrap();
    let truth = single.topology().unwrap();

    assert_eq!(merged.node_count(), truth.node_count());
    assert_eq!(merged.link_count(), truth.link_count());

    // Utilization seen through the federation matches too.
    {
        let mut s = sim.lock();
        let topo = s.topology_arc();
        let m1 = topo.lookup("m-1").unwrap();
        let m8 = topo.lookup("m-8").unwrap();
        s.start_flow(FlowParams::cbr(m1, m8, mbps(40.0))).unwrap();
    }
    multi.poll().unwrap();
    sim.lock().run_for(SimDuration::from_secs(2)).unwrap();
    assert!(multi.poll().unwrap());
    let snap = multi.history().latest().unwrap();
    let max_util = snap.util.iter().cloned().fold(0.0, f64::max);
    assert!((max_util - mbps(40.0)).abs() < mbps(1.0), "{max_util}");
    // Host info resolves through the federation.
    assert!(multi.host_info("m-1").is_ok());
    assert!(multi.host_info("aspen").is_err());
}

#[test]
fn collector_survives_datagram_loss() {
    let (transport, sim, agents) = base();
    // 5% loss: with 3 retries and two drop-rolls per attempt, a single
    // request fails with p = (1 - 0.95^2)^4 ≈ 9e-5, so the hundreds of
    // datagrams behind these queries still succeed reliably.
    transport.set_loss(0.05, 2024);
    let collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    let mut remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    // Discovery plus several polls: manager retries absorb the loss.
    for _ in 0..5 {
        let g = remos.run(Query::graph(["m-1", "m-8"])).unwrap().into_graph().unwrap();
        assert_eq!(g.links.len(), 1);
    }
    assert!(transport.stats().drops() > 0, "loss injection did nothing");
}

#[test]
fn partial_agent_coverage_still_measures() {
    // Routers-only SNMP (the realistic case: hosts often run no agent).
    // Utilization on host links must come from the router side's
    // ifInOctets fallback.
    let (transport, sim, _) = base();
    let routers: Vec<String> =
        ["aspen", "timberline", "whiteface"].iter().map(|s| s.to_string()).collect();
    let mut collector =
        SnmpCollector::new(Arc::clone(&transport), routers, SnmpCollectorConfig::default());
    collector.refresh_topology().unwrap();
    let topo = collector.topology().unwrap();
    // Hosts appear as neighbor-only compute nodes.
    assert_eq!(topo.node_count(), 11);
    assert_eq!(topo.compute_nodes().len(), 8);

    {
        let mut s = sim.lock();
        let t = s.topology_arc();
        let m4 = t.lookup("m-4").unwrap();
        let m5 = t.lookup("m-5").unwrap();
        s.start_flow(FlowParams::cbr(m4, m5, mbps(30.0))).unwrap();
    }
    collector.poll().unwrap();
    sim.lock().run_for(SimDuration::from_secs(2)).unwrap();
    assert!(collector.poll().unwrap());
    let snap = collector.history().latest().unwrap();
    // m-4's uplink utilization is observable via timberline's ifInOctets.
    let max_util = snap.util.iter().cloned().fold(0.0, f64::max);
    assert!((max_util - mbps(30.0)).abs() < mbps(1.0), "{max_util}");
    // But host resources are not (no host agents).
    assert!(matches!(
        collector.host_info("m-4"),
        Err(RemosError::UnknownNode(_))
    ));
}

#[test]
fn route_table_discovery_matches_neighbor_table() {
    // The paper's collector walked ipRouteTable; the LLDP path is the
    // modern equivalent. Both must reconstruct the identical topology.
    use remos::core::collector::snmp::DiscoveryMode;
    let (transport, _sim, agents) = base();
    let discover = |mode: DiscoveryMode| {
        let mut c = SnmpCollector::new(
            Arc::clone(&transport),
            agents.clone(),
            SnmpCollectorConfig { discovery: mode, ..Default::default() },
        );
        c.refresh_topology().unwrap();
        c.topology().unwrap()
    };
    let lldp = discover(DiscoveryMode::NeighborTable);
    let routes = discover(DiscoveryMode::RouteTable);
    assert_eq!(lldp.node_count(), routes.node_count());
    assert_eq!(lldp.link_count(), routes.link_count());
    for n in lldp.node_ids() {
        let name = &lldp.node(n).name;
        let rn = routes.lookup(name).unwrap();
        assert_eq!(lldp.node(n).kind, routes.node(rn).kind, "{name}");
        assert_eq!(lldp.degree(n), routes.degree(rn), "{name}");
    }
}

#[test]
fn route_table_discovery_with_routers_only() {
    // Without host agents, direct routes still reveal the host links;
    // unresolved addresses become ip-10-0-0-x placeholder hosts.
    use remos::core::collector::snmp::DiscoveryMode;
    let (transport, _sim, _) = base();
    let routers: Vec<String> =
        ["aspen", "timberline", "whiteface"].iter().map(|s| s.to_string()).collect();
    let mut c = SnmpCollector::new(
        Arc::clone(&transport),
        routers,
        SnmpCollectorConfig { discovery: DiscoveryMode::RouteTable, ..Default::default() },
    );
    c.refresh_topology().unwrap();
    let topo = c.topology().unwrap();
    assert_eq!(topo.node_count(), 11);
    assert_eq!(topo.link_count(), 10);
    // Host names are unknown to a routers-only walk: they surface as
    // synthetic ip-… names.
    let placeholders = topo
        .compute_nodes()
        .iter()
        .filter(|&&n| topo.node(n).name.starts_with("ip-"))
        .count();
    assert_eq!(placeholders, 8);
}

#[test]
fn wrong_community_fails_loudly() {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    register_all_agents(&transport, &sim, "secret");
    let mut collector = SnmpCollector::new(
        Arc::clone(&transport),
        vec!["aspen".into()],
        SnmpCollectorConfig::default(), // community "public" ≠ "secret"
    );
    assert!(collector.refresh_topology().is_err());
}

#[test]
fn rediscovery_after_loss_burst() {
    // A collector that hits a hard error can re-discover and continue.
    let (transport, sim, agents) = base();
    let mut collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    collector.refresh_topology().unwrap();
    collector.poll().unwrap();
    sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    collector.poll().unwrap();
    assert_eq!(collector.history().len(), 1);
    // Re-discovery clears history (indices may change meaning).
    collector.refresh_topology().unwrap();
    assert_eq!(collector.history().len(), 0);
    sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    collector.poll().unwrap();
    sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    assert!(collector.poll().unwrap());
}
