//! Determinism harness: every paper scenario, run twice with the same
//! seed, must replay the exact same event stream.
//!
//! Each run records a 64-bit FNV-1a digest of every simulator event
//! (flow starts, completions, link state changes — including bit-exact
//! allocated rates) plus the final clock and per-interface octet
//! counters. Two runs of the same scenario disagreeing on a single
//! event order, timestamp, or allocated byte produce different digests.
//!
//! The runtime [`MaxMinAudit`] is switched on for every run, so these
//! tests double as end-to-end checks that the bandwidth allocator never
//! violates feasibility, bottleneck, or conservation invariants during
//! real workloads. See docs/DETERMINISM.md for the reproducibility
//! contract.

use remos::apps::airshed::airshed_program_iters;
use remos::apps::fft::fft_program;
use remos::apps::harness::TestbedHarness;
use remos::apps::synthetic::{install_scenario, TrafficScenario};
use remos::apps::testbed::TESTBED_HOSTS;
use remos::core::collector::snmp::SnmpCollectorConfig;
use remos::net::{SimDuration, SimTime, SolverMode};
use remos::snmp::fault::{FaultDirector, FaultPlan};

/// Digest and audit outcome of one scenario run.
struct RunTrace {
    digest: u64,
    violations: Vec<String>,
}

/// Run `scenario` on a fresh audited harness and capture its trace.
fn trace<F: FnOnce(&mut TestbedHarness)>(
    h: &mut TestbedHarness,
    mode: SolverMode,
    scenario: F,
) -> RunTrace {
    {
        let mut sim = h.sim.lock();
        sim.enable_audit();
        sim.set_solver_mode(mode);
    }
    scenario(h);
    let sim = h.sim.lock();
    RunTrace {
        digest: sim.event_digest(),
        violations: sim.audit_violations().iter().map(|v| v.to_string()).collect(),
    }
}

/// Three executions — incremental twice, full once — must agree
/// bit-for-bit and audit clean. The incremental runs prove replay
/// determinism; the full run proves the scoped solver is equivalent to
/// re-solving everything (under audit, incremental runs additionally
/// shadow-solve every recomputation and report any rate divergence as a
/// violation, so the audit check covers both solvers' invariants).
fn assert_deterministic<F: Fn(&mut TestbedHarness)>(
    name: &str,
    mk: impl Fn() -> TestbedHarness,
    scenario: F,
) {
    let mut first = mk();
    let a = trace(&mut first, SolverMode::Incremental, &scenario);
    let mut second = mk();
    let b = trace(&mut second, SolverMode::Incremental, &scenario);
    let mut full = mk();
    let c = trace(&mut full, SolverMode::Full, &scenario);
    assert!(
        a.violations.is_empty(),
        "{name}: max-min audit violations (incremental): {:?}",
        a.violations
    );
    assert!(
        c.violations.is_empty(),
        "{name}: max-min audit violations (full): {:?}",
        c.violations
    );
    assert_eq!(
        a.digest, b.digest,
        "{name}: two runs with identical seeds diverged"
    );
    assert_eq!(
        a.digest, c.digest,
        "{name}: incremental and full solver modes diverged"
    );
}

#[test]
fn fft_run_is_deterministic() {
    assert_deterministic(
        "fft",
        TestbedHarness::cmu,
        |h| {
            install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
            h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
            h.run_fixed(&fft_program(512, 4), &["m-4", "m-5", "m-6", "m-7"]).unwrap();
        },
    );
}

#[test]
fn airshed_run_is_deterministic() {
    assert_deterministic(
        "airshed",
        TestbedHarness::cmu,
        |h| {
            install_scenario(&h.sim, TrafficScenario::Interfering2).unwrap();
            h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
            h.run_fixed(&airshed_program_iters(4, 6), &["m-4", "m-5", "m-6", "m-7"]).unwrap();
        },
    );
}

#[test]
fn node_selection_is_deterministic() {
    assert_deterministic(
        "selection",
        TestbedHarness::cmu,
        |h| {
            install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
            h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
            let sel_a = h.select_nodes(&TESTBED_HOSTS, "m-4", 4).unwrap();
            let sel_b = h.select_nodes(&TESTBED_HOSTS, "m-4", 4).unwrap();
            // Selection itself must also be stable within a run (modulo
            // measurement time passing between the two queries).
            assert_eq!(sel_a.len(), sel_b.len());
        },
    );
}

/// Chaos runs: an adaptive program under a seeded fault schedule. The
/// schedule (crash + freeze windows) and all datagram-loss draws derive
/// from the seed, so the whole degraded-mode pipeline must replay.
fn chaos_run(seed: u64) {
    let mk = || {
        let director = FaultDirector::new();
        director.set_plan(
            "m-6",
            FaultPlan::new().crash(
                SimTime::ZERO + SimDuration::from_secs(3),
                SimDuration::from_secs(2),
            ),
            seed,
        );
        director.set_plan(
            "timberline",
            FaultPlan::new()
                .freeze(
                    SimTime::ZERO + SimDuration::from_secs(4),
                    SimTime::ZERO + SimDuration::from_secs(5),
                )
                .flaky(
                    SimTime::ZERO + SimDuration::from_secs(6),
                    SimTime::ZERO + SimDuration::from_secs(7),
                    0.3,
                ),
            seed ^ 1,
        );
        TestbedHarness::cmu_with_faults(&director, SnmpCollectorConfig::default())
    };
    assert_deterministic(
        &format!("chaos seed {seed:#x}"),
        mk,
        |h| {
            install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
            h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
            h.select_nodes(&TESTBED_HOSTS, "m-4", 2).unwrap();
            let prog = airshed_program_iters(5, 3);
            h.run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-6", "m-7", "m-8"])
                .unwrap();
        },
    );
}

/// Query-path caching must not leak into answers: the same query
/// schedule replayed under the cached (default), shadow-audited, and
/// cache-disabled modeler configurations must produce bit-identical
/// per-query graph digests — in both solver modes. The schedule mixes
/// repeats (cache hits), a second target set (cache fills), and
/// measurement time passing between rounds.
#[test]
fn plan_cache_configs_agree_in_both_solver_modes() {
    use remos::core::{ModelerConfig, Query, QueryResult, Timeframe};

    let run = |mode: SolverMode, cfg: ModelerConfig| -> Vec<u64> {
        let mut h = TestbedHarness::cmu();
        h.sim.lock().set_solver_mode(mode);
        h.adapter.remos_mut().set_modeler_config(cfg);
        install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
        h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
        let sets: [&[&str]; 3] =
            [&["m-1", "m-8"], &["m-4", "m-5", "m-6"], &["m-1", "m-8"]];
        let mut digests = Vec::new();
        for _ in 0..4 {
            h.sim.lock().run_for(SimDuration::from_millis(500)).unwrap();
            for set in sets {
                let g = h
                    .adapter
                    .remos_mut()
                    .run(
                        Query::graph(set.iter().copied())
                            .timeframe(Timeframe::Window(SimDuration::from_secs(2))),
                    )
                    .and_then(QueryResult::into_graph)
                    .unwrap();
                digests.push(g.digest());
            }
        }
        digests
    };

    for mode in [SolverMode::Incremental, SolverMode::Full] {
        let cached = run(mode, ModelerConfig::default());
        let audited =
            run(mode, ModelerConfig { audit_cache: true, ..ModelerConfig::default() });
        let uncached = run(
            mode,
            ModelerConfig { plan_cache_capacity: 0, ..ModelerConfig::default() },
        );
        assert_eq!(
            cached, audited,
            "{mode:?}: audited cache diverged from plain cached serving"
        );
        assert_eq!(
            cached, uncached,
            "{mode:?}: cached serving diverged from cold rebuilds"
        );
    }
}

#[test]
fn chaos_seed_c0ffee_is_deterministic() {
    chaos_run(0xC0FFEE);
}

#[test]
fn chaos_seed_1998_is_deterministic() {
    chaos_run(1998);
}
