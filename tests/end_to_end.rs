//! End-to-end integration: the full SNMP → Collector → Modeler → API
//! pipeline against the simulator's ground truth.

use remos::apps::testbed::cmu_testbed;
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::SimClock;
use remos::core::{FlowInfoRequest, Query, Remos, RemosConfig, Timeframe};
use remos::net::flow::FlowParams;
use remos::net::{mbps, SimDuration, Simulator};
use remos::snmp::sim::{register_all_agents, share, SharedSim};
use remos::snmp::SimTransport;
use std::sync::Arc;

fn stack() -> (Remos, SharedSim) {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    let collector = SnmpCollector::new(transport, agents, SnmpCollectorConfig::default());
    let remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    (remos, sim)
}

#[test]
fn snmp_discovery_matches_ground_truth() {
    let (mut remos, sim) = stack();
    remos.refresh_topology().unwrap();
    let discovered = remos.collector().topology().unwrap();
    let truth = sim.lock().topology_arc();
    assert_eq!(discovered.node_count(), truth.node_count());
    assert_eq!(discovered.link_count(), truth.link_count());
    // Every ground-truth edge exists in the discovered view (by names).
    for l in truth.link_ids() {
        let link = truth.link(l);
        let a = truth.node(link.a).name.clone();
        let b = truth.node(link.b).name.clone();
        let da = discovered.lookup(&a).unwrap();
        let db = discovered.lookup(&b).unwrap();
        assert!(
            discovered.neighbors(da).iter().any(|&(_, n)| n == db),
            "missing edge {a} -- {b}"
        );
        // Capacity carried through ifSpeed.
        let (dl, _) = discovered
            .neighbors(da)
            .iter()
            .find(|&&(_, n)| n == db)
            .copied()
            .unwrap();
        assert_eq!(discovered.link(dl).capacity, link.capacity);
    }
}

#[test]
fn flow_grant_predicts_achieved_throughput() {
    // Remos promises a bandwidth; starting the real flow must deliver it.
    let (mut remos, sim) = stack();
    // Background load on the backbone.
    {
        let mut s = sim.lock();
        let topo = s.topology_arc();
        let m1 = topo.lookup("m-1").unwrap();
        let m7 = topo.lookup("m-7").unwrap();
        s.start_flow(FlowParams::cbr(m1, m7, mbps(35.0))).unwrap();
        s.run_for(SimDuration::from_secs(1)).unwrap();
    }
    let req = FlowInfoRequest::new().independent("m-2", "m-8");
    let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
    let promised = resp.independent.unwrap().bandwidth.median;

    let achieved = {
        let mut s = sim.lock();
        let topo = s.topology_arc();
        let m2 = topo.lookup("m-2").unwrap();
        let m8 = topo.lookup("m-8").unwrap();
        let f = s.start_flow(FlowParams::greedy(m2, m8)).unwrap();
        s.flow_rate(f).unwrap()
    };
    // ExternalPinned is conservative: promised <= achieved, and within
    // ~10% here because the CBR background doesn't yield.
    assert!(
        (promised - achieved).abs() < achieved * 0.1,
        "promised {promised} vs achieved {achieved}"
    );
    assert!((promised - mbps(65.0)).abs() < mbps(5.0), "{promised}");
}

#[test]
fn counter_wrap_does_not_corrupt_estimates() {
    // 100 Mbps for 700 s wraps a Counter32 twice over; polling every 60 s
    // keeps deltas below a single wrap, so estimates stay exact.
    let (mut remos, sim) = stack();
    {
        let mut s = sim.lock();
        let topo = s.topology_arc();
        let m4 = topo.lookup("m-4").unwrap();
        let m5 = topo.lookup("m-5").unwrap();
        s.start_flow(FlowParams::cbr(m4, m5, mbps(100.0))).unwrap();
    }
    for _ in 0..12 {
        sim.lock().run_for(SimDuration::from_secs(60)).unwrap();
        // poll through the public API: a Current graph query.
        let g = remos.run(Query::graph(["m-4", "m-5"])).unwrap().into_graph().unwrap();
        let a = g.index_of("m-4").unwrap();
        let b = g.index_of("m-5").unwrap();
        let avail = g.path_avail_bw(a, b).unwrap();
        assert!(avail < mbps(2.0), "wrap corrupted the estimate: avail {avail}");
    }
    assert!(sim.lock().now().as_secs_f64() > 700.0);
}

#[test]
fn simultaneous_query_matches_simulated_sharing() {
    // Two app flows converging on m-3: Remos (queried simultaneously)
    // must predict the 50/50 split the simulator actually produces.
    let (mut remos, sim) = stack();
    let req = FlowInfoRequest::new()
        .variable("m-1", "m-3", 1.0)
        .variable("m-2", "m-3", 1.0);
    let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
    for g in &resp.variable {
        assert!((g.bandwidth.median - mbps(50.0)).abs() < mbps(2.0));
    }
    let mut s = sim.lock();
    let topo = s.topology_arc();
    let m1 = topo.lookup("m-1").unwrap();
    let m2 = topo.lookup("m-2").unwrap();
    let m3 = topo.lookup("m-3").unwrap();
    let f1 = s.start_flow(FlowParams::greedy(m1, m3)).unwrap();
    let f2 = s.start_flow(FlowParams::greedy(m2, m3)).unwrap();
    assert!((s.flow_rate(f1).unwrap() - mbps(50.0)).abs() < 1.0);
    assert!((s.flow_rate(f2).unwrap() - mbps(50.0)).abs() < 1.0);
}

#[test]
fn windowed_quartiles_capture_burstiness() {
    let (mut remos, sim) = stack();
    remos::apps::synthetic::add_bursty_traffic(
        &sim,
        "m-6",
        "m-8",
        SimDuration::from_secs(2),
        SimDuration::from_secs(2),
        17,
    )
    .unwrap();
    sim.lock().run_for(SimDuration::from_secs(5)).unwrap();
    let g = remos
        .run(Query::graph(["m-6", "m-8"]).timeframe(Timeframe::Window(SimDuration::from_secs(40))))
        .unwrap()
        .into_graph()
        .unwrap();
    let a = g.index_of("m-6").unwrap();
    let link = &g.links[g.neighbors(a)[0].0];
    let q = link.avail_from(a);
    // On/off traffic: the spread between min and max must be large.
    assert!(q.max - q.min > mbps(50.0), "quartiles too tight: {q}");
    assert!(q.samples >= 2);
}
