//! Smoke-test versions of the paper's experiments: short runs asserting
//! the qualitative claims of Tables 1–3 and Figure 4. The full-length
//! regenerations live in `crates/bench/src/bin/`.

use remos::apps::airshed::airshed_program_iters;
use remos::apps::fft::fft_program;
use remos::apps::synthetic::{install_scenario, TrafficScenario};
use remos::apps::testbed::TESTBED_HOSTS;
use remos::apps::TestbedHarness;
use remos::fx::SelfTraffic;
use remos::net::SimDuration;

fn loaded_harness() -> TestbedHarness {
    let mut h = TestbedHarness::cmu();
    install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
    h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    let _ = &mut h;
    h
}

#[test]
fn table1_fft_times_near_paper() {
    // Unloaded FFT(512) on {m-4, m-5}: paper 0.462 s; the calibrated
    // model must land within 15%.
    let mut h = TestbedHarness::cmu();
    let rep = h.run_fixed(&fft_program(512, 2), &["m-4", "m-5"]).unwrap();
    assert!((rep.elapsed - 0.462).abs() < 0.462 * 0.15, "{}", rep.elapsed);
    // And 4 nodes must beat 2 nodes (paper: 0.266 vs 0.462).
    let rep4 = h
        .run_fixed(&fft_program(512, 4), &["m-4", "m-5", "m-6", "m-7"])
        .unwrap();
    assert!(rep4.elapsed < rep.elapsed, "{} !< {}", rep4.elapsed, rep.elapsed);
}

#[test]
fn table1_airshed_scaling() {
    // Paper: Airshed 908 s on 3 nodes, 650 s on 5. Short 10-iteration
    // runs must preserve the ordering and per-iteration magnitude.
    let mut h = TestbedHarness::cmu();
    let t3 = h
        .run_fixed(&airshed_program_iters(3, 10), &["m-4", "m-5", "m-6"])
        .unwrap()
        .elapsed;
    let t5 = h
        .run_fixed(
            &airshed_program_iters(5, 10),
            &["m-4", "m-5", "m-6", "m-7", "m-8"],
        )
        .unwrap()
        .elapsed;
    assert!(t5 < t3, "5 nodes must beat 3: {t5} !< {t3}");
    // Per-iteration times ~8.9 s and ~7.4 s in the calibrated model.
    assert!((t3 / 10.0 - 8.9).abs() < 1.5, "{t3}");
    assert!((t5 / 10.0 - 7.4).abs() < 1.5, "{t5}");
}

#[test]
fn fig4_selection_under_traffic() {
    let mut h = loaded_harness();
    let mut sel = h.select_nodes(&TESTBED_HOSTS, "m-4", 4).unwrap();
    sel.sort();
    assert_eq!(sel, vec!["m-1", "m-2", "m-4", "m-5"]);
}

#[test]
fn table2_static_selection_pays_dearly() {
    // Dynamic vs static under the m-6 -> m-8 traffic, FFT(512) x4.
    let prog = fft_program(512, 4);
    let mut h = loaded_harness();
    let sel = h.select_nodes(&TESTBED_HOSTS, "m-4", 4).unwrap();
    let refs: Vec<&str> = sel.iter().map(String::as_str).collect();
    let dynamic = h.run_fixed(&prog, &refs).unwrap().elapsed;

    let mut h2 = loaded_harness();
    let static_t = h2
        .run_fixed(&prog, &["m-4", "m-5", "m-6", "m-7"])
        .unwrap()
        .elapsed;
    // Paper: +79..194% across rows. Accept anything clearly > 40%.
    assert!(
        static_t > dynamic * 1.4,
        "static {static_t} not >> dynamic {dynamic}"
    );
}

#[test]
fn table3_adaptive_beats_fixed_under_interference() {
    let prog = airshed_program_iters(8, 8);
    let active = ["m-4", "m-5", "m-6", "m-7", "m-8"];

    let mut fixed_h = loaded_harness();
    let fixed = fixed_h.run_fixed(&prog, &active).unwrap();

    let mut adaptive_h = loaded_harness();
    let adaptive = adaptive_h.run_adaptive(&prog, &TESTBED_HOSTS, &active).unwrap();

    assert!(
        adaptive.elapsed < fixed.elapsed,
        "adaptive {} !< fixed {}",
        adaptive.elapsed,
        fixed.elapsed
    );
    assert!(!adaptive.migrations.is_empty());
    // It must end up away from the loaded m-6/m-8 links.
    assert!(!adaptive.final_mapping.iter().any(|n| n == "m-6" || n == "m-8"));
}

#[test]
fn table3_adaptation_overhead_without_traffic() {
    // With no traffic, adaptation can only cost time (paper: 941 vs 862).
    let prog = airshed_program_iters(8, 6);
    let active = ["m-4", "m-5", "m-6", "m-7", "m-8"];
    let mut h1 = TestbedHarness::cmu();
    let fixed = h1.run_fixed(&prog, &active).unwrap();
    let mut h2 = TestbedHarness::cmu();
    let adaptive = h2.run_adaptive(&prog, &TESTBED_HOSTS, &active).unwrap();
    assert!(adaptive.elapsed >= fixed.elapsed);
    // But the overhead stays moderate (paper: +9%; allow up to +30%).
    assert!(
        adaptive.elapsed < fixed.elapsed * 1.3,
        "overhead too large: {} vs {}",
        adaptive.elapsed,
        fixed.elapsed
    );
}

#[test]
fn self_traffic_fix_prevents_spurious_migration() {
    let prog = airshed_program_iters(8, 6);
    let active = ["m-4", "m-5", "m-6", "m-7", "m-8"];

    let mut naive = TestbedHarness::cmu();
    naive.adapter.cfg.self_traffic = SelfTraffic::Ignore;
    let naive_rep = naive.run_adaptive(&prog, &TESTBED_HOSTS, &active).unwrap();

    let mut fixed = TestbedHarness::cmu();
    fixed.adapter.cfg.self_traffic = SelfTraffic::Subtract;
    let fixed_rep = fixed.run_adaptive(&prog, &TESTBED_HOSTS, &active).unwrap();

    assert!(
        fixed_rep.migrations.len() < naive_rep.migrations.len(),
        "subtract {} !< ignore {}",
        fixed_rep.migrations.len(),
        naive_rep.migrations.len()
    );
    assert_eq!(fixed_rep.migrations.len(), 0, "{:?}", fixed_rep.migrations);
}

#[test]
fn compiled_for_8_run_on_5_overhead() {
    // The paper's 862-vs-650 imbalance artifact: same work, 8 ranks on 5
    // nodes is slower than 5 ranks on 5 nodes.
    let mut h = TestbedHarness::cmu();
    let active = ["m-4", "m-5", "m-6", "m-7", "m-8"];
    let t5 = h.run_fixed(&airshed_program_iters(5, 5), &active).unwrap().elapsed;
    let t8on5 = h.run_fixed(&airshed_program_iters(8, 5), &active).unwrap().elapsed;
    let ratio = t8on5 / t5;
    // Paper: 862/650 = 1.33. Accept 1.15..1.6.
    assert!((1.15..1.6).contains(&ratio), "imbalance ratio {ratio}");
}
