//! Observability contract: the metrics registry, the structured trace
//! recorder, and query provenance must agree with the ground truth the
//! rest of the system already exposes.
//!
//! * the engine's obs counters equal the simulator's own recompute
//!   tallies after the determinism suite's FFT scenario, in both
//!   [`SolverMode`]s;
//! * the trace digest is bit-identical across two identical runs
//!   (traces are stamped with simulated time, never the wall clock);
//! * provenance worst-quality degrades from `Fresh` once an agent is
//!   crashed under a pinned fault seed;
//! * a metrics snapshot survives a JSON round-trip losslessly and
//!   renders to Prometheus text.

use remos::apps::fft::fft_program;
use remos::apps::harness::TestbedHarness;
use remos::apps::synthetic::{install_scenario, TrafficScenario};
use remos::apps::testbed::TESTBED_HOSTS;
use remos::core::collector::snmp::SnmpCollectorConfig;
use remos::core::Query;
use remos::net::{SimDuration, SolverMode};
use remos::obs::MetricsSnapshot;
use remos::snmp::fault::{FaultDirector, FaultPlan};

/// The determinism suite's FFT scenario (`fft_run_is_deterministic`):
/// interfering traffic, 1 s of warmup, then a 512-point FFT on four
/// nodes.
fn fft_scenario(h: &mut TestbedHarness) {
    install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
    h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    h.run_fixed(&fft_program(512, 4), &["m-4", "m-5", "m-6", "m-7"]).unwrap();
}

/// Obs counters are not a parallel bookkeeping that can drift: after the
/// FFT scenario the registry's solver counts equal the engine's own
/// `u64` tallies exactly, whichever solver is active.
#[test]
fn metrics_counters_match_engine_counters_in_both_solver_modes() {
    for mode in [SolverMode::Incremental, SolverMode::Full] {
        let mut h = TestbedHarness::cmu();
        h.sim.lock().set_solver_mode(mode);
        fft_scenario(&mut h);

        let (full, scoped) = {
            let sim = h.sim.lock();
            (sim.full_recomputes(), sim.scoped_recomputes())
        };
        let snap = h.obs.metrics_snapshot();
        assert_eq!(
            snap.counters["engine_full_recomputes_total"], full,
            "{mode:?}: full-recompute counter drifted from the engine"
        );
        assert_eq!(
            snap.counters["engine_scoped_recomputes_total"], scoped,
            "{mode:?}: scoped-recompute counter drifted from the engine"
        );
        assert!(
            full + scoped > 0,
            "{mode:?}: FFT scenario drove no recomputations at all"
        );
    }
}

/// Two identical runs must record byte-identical traces: spans are
/// stamped with simulated time, so the digest doubles as a determinism
/// check on the observability layer itself.
#[test]
fn trace_digest_is_identical_across_identical_runs() {
    let run = || {
        let mut h = TestbedHarness::cmu();
        fft_scenario(&mut h);
        (h.obs.trace_digest(), h.obs.trace_recorded(), h.obs.trace_records())
    };
    let (digest_a, recorded_a, records_a) = run();
    let (digest_b, recorded_b, _) = run();
    assert!(recorded_a > 0, "the FFT scenario recorded no trace at all");
    assert_eq!(recorded_a, recorded_b, "runs recorded different trace volumes");
    assert_eq!(digest_a, digest_b, "identical runs produced different trace digests");
    assert!(
        records_a.iter().any(|r| r.name.starts_with("engine.solve.")),
        "no solver spans in the trace"
    );
}

/// Crash one agent under a pinned fault seed: the next graph answer must
/// carry a provenance record whose worst quality is no longer `Fresh`.
#[test]
fn provenance_quality_degrades_once_an_agent_crashes() {
    const SEED: u64 = 0x0b5e_7ab1_e5ee_d001;
    let director = FaultDirector::new();
    let mut h = TestbedHarness::cmu_with_faults(&director, SnmpCollectorConfig::default());
    h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();

    let healthy = h
        .adapter
        .remos_mut()
        .run(Query::graph(TESTBED_HOSTS))
        .unwrap()
        .into_graph()
        .unwrap();
    let prov = healthy.provenance.as_ref().expect("graph carries provenance");
    assert!(prov.worst_quality.is_fresh(), "healthy testbed should answer Fresh");
    assert!(prov.snapshots >= 1);
    assert!(!prov.solver.is_empty());

    let now = h.sim.lock().now();
    director.set_plan("m-6", FaultPlan::new().crash(now, SimDuration::from_secs(3_600)), SEED);
    h.sim.lock().run_for(SimDuration::from_secs(2)).unwrap();

    let degraded = h
        .adapter
        .remos_mut()
        .run(Query::graph(TESTBED_HOSTS))
        .unwrap()
        .into_graph()
        .unwrap();
    let prov = degraded.provenance.as_ref().expect("graph carries provenance");
    assert!(
        !prov.worst_quality.is_fresh(),
        "dead agent must degrade provenance quality, got {:?}",
        prov.worst_quality
    );
}

/// A snapshot survives its own JSON encoding losslessly (the hand-rolled
/// encoder and parser agree), and the Prometheus rendering exposes the
/// same counters.
#[test]
fn metrics_snapshot_round_trips_through_json() {
    let mut h = TestbedHarness::cmu();
    fft_scenario(&mut h);
    let _ = h
        .adapter
        .remos_mut()
        .run(Query::graph(TESTBED_HOSTS))
        .unwrap()
        .into_graph()
        .unwrap();

    let snap = h.obs.metrics_snapshot();
    assert!(snap.counters["remos_graph_queries_total"] >= 1);
    assert!(snap.counters["collector_polls_total"] >= 1);

    let json = snap.to_json();
    let back = MetricsSnapshot::from_json(&json).expect("snapshot JSON parses back");
    assert_eq!(snap, back, "JSON round-trip lost information");

    let prom = snap.render_prometheus();
    assert!(prom.contains("# TYPE remos_graph_queries_total counter"));
    assert!(prom.contains("# TYPE engine_full_recomputes_total counter"));
}
