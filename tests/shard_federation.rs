//! Sharded-collection equivalence and degradation tests.
//!
//! The sharded coordinator's contract has two halves. First, splitting a
//! fabric across shard collectors must be *invisible* to consumers: the
//! merged view is bit-identical — topology `Arc`, samples, graph
//! digests, flow grants — to a monolithic collector over the same
//! simulator, in both solver modes. Second, the incremental dirty-shard
//! merge must be bit-identical to a from-scratch re-merge
//! (`force_full_merge`) under any interleaving of shard faults, and a
//! crashed shard must degrade only its own region.

use proptest::prelude::*;
use remos::core::collector::multi::{MultiCollector, MultiCollectorConfig};
use remos::core::collector::oracle::OracleCollector;
use remos::core::collector::shard::{shard_fabric, ShardCollector};
use remos::core::collector::{Collector, SampleHistory, Snapshot};
use remos::core::graph::HostInfo;
use remos::core::{
    CoreResult, DataQuality, FlowInfoRequest, Modeler, RemosError, Timeframe,
};
use remos::net::flow::FlowParams;
use remos::net::topology::Topology;
use remos::net::{mbps, FatTree, SimDuration, SimTime, Simulator, SolverMode};
use remos::snmp::sim::{share, SharedSim};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shard wrapper with an externally driven kill switch: while `down`,
/// polling and rediscovery fail as an unreachable region would, but the
/// last samples stay in the history to be aged by the federation.
struct FlakyShard {
    inner: ShardCollector,
    down: Arc<AtomicBool>,
}

impl FlakyShard {
    fn check(&self) -> CoreResult<()> {
        if self.down.load(Ordering::Relaxed) {
            Err(RemosError::Collector("injected shard outage".into()))
        } else {
            Ok(())
        }
    }
}

impl Collector for FlakyShard {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        self.check()?;
        self.inner.refresh_topology()
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.inner.topology()
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        self.check()?;
        self.inner.host_info(name)
    }

    fn poll(&mut self) -> CoreResult<bool> {
        self.check()?;
        self.inner.poll()
    }

    fn history(&self) -> &SampleHistory {
        self.inner.history()
    }

    fn topology_epoch(&self) -> u64 {
        self.inner.topology_epoch()
    }

    fn now(&self) -> CoreResult<SimTime> {
        self.check()?;
        self.inner.now()
    }

    fn coverage(&self) -> Option<&[u32]> {
        self.inner.coverage()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

fn fabric_sim(k: usize, mode: SolverMode) -> (FatTree, SharedSim) {
    let tree = FatTree::build(k).unwrap();
    let mut sim = Simulator::new(FatTree::build(k).unwrap().into_parts().0).unwrap();
    sim.set_solver_mode(mode);
    (tree, share(sim))
}

/// Cross-pod traffic: a mix of greedy and fixed-rate flows derived from
/// the seed, so utilization differs per link and per run.
fn seed_flows(tree: &FatTree, sim: &SharedSim, seed: u64, n: usize) -> Vec<remos::net::FlowHandle> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move |bound: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let pods = tree.pods() as u64;
    let per_pod = (tree.topology().compute_nodes().len() / tree.pods()) as u64;
    let mut handles = Vec::new();
    let mut s = sim.lock();
    for _ in 0..n {
        let (sp, si) = (next(pods) as usize, next(per_pod) as usize);
        let (mut dp, di) = (next(pods) as usize, next(per_pod) as usize);
        if dp == sp {
            dp = (dp + 1) % tree.pods();
        }
        let (src, dst) = (tree.host(sp, si), tree.host(dp, di));
        let params = if next(2) == 0 {
            FlowParams::greedy(src, dst)
        } else {
            FlowParams::cbr(src, dst, mbps(5.0 + next(40) as f64))
        };
        handles.push(s.start_flow(params).unwrap());
    }
    handles
}

fn snapshots_bit_identical(a: &Snapshot, b: &Snapshot, what: &str) {
    assert_eq!(a.t, b.t, "{what}: sample time");
    assert_eq!(a.interval, b.interval, "{what}: sample interval");
    assert_eq!(a.util.len(), b.util.len(), "{what}: width");
    for (i, (x, y)) in a.util.iter().zip(b.util.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: util[{i}] {x} vs {y}");
    }
    assert_eq!(a.quality, b.quality, "{what}: quality");
}

/// The headline equivalence: an 8-way sharded federation over a fabric
/// answers bit-identically to a monolithic oracle collector over the
/// same simulator — shared topology `Arc`, samples, graph digest, and
/// flow grants — in both solver modes.
#[test]
fn sharded_view_is_bit_identical_to_monolithic() {
    for mode in [SolverMode::Incremental, SolverMode::Full] {
        let (tree, sim) = fabric_sim(8, mode);
        seed_flows(&tree, &sim, 0xC0FFEE, 24);
        sim.lock().run_for(SimDuration::from_millis(500)).unwrap();

        let mut mono = OracleCollector::new(Arc::clone(&sim));
        let children: Vec<Box<dyn Collector>> = shard_fabric(&tree, &sim, 7)
            .unwrap()
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn Collector>)
            .collect();
        assert_eq!(children.len(), 8, "7 pod groups + spine");
        let mut fed = MultiCollector::new(children);
        fed.refresh_topology().unwrap();

        // The merged topology IS the fabric's (same allocation), so node
        // ids, routing, and digests cannot drift.
        assert!(Arc::ptr_eq(&mono.topology().unwrap(), &fed.topology().unwrap()));

        // Two polls with traffic movement in between: util and interval
        // both become non-trivial.
        for _ in 0..2 {
            assert!(mono.poll().unwrap());
            assert!(fed.poll().unwrap());
            sim.lock().run_for(SimDuration::from_millis(250)).unwrap();
        }
        let (ms, fs) = (mono.history().latest().unwrap(), fed.history().latest().unwrap());
        assert!(ms.util.iter().any(|&u| u > 0.0), "scenario produced no traffic");
        snapshots_bit_identical(ms, fs, &format!("{mode:?}"));
        assert!(fs.quality.iter().all(|q| q.is_fresh()));

        // Graph digest and flow grants through the modeler agree.
        let names: Vec<String> = (0..tree.pods())
            .flat_map(|p| (0..2).map(move |i| (p, i)))
            .map(|(p, i)| tree.topology().node(tree.host(p, i)).name.clone())
            .collect();
        let modeler = Modeler::default();
        let gm = modeler.get_graph(&mono, &names, Timeframe::Current).unwrap();
        let gf = modeler.get_graph(&fed, &names, Timeframe::Current).unwrap();
        assert_eq!(gm.digest(), gf.digest(), "{mode:?}: merged graph digest drifted");

        let req = FlowInfoRequest::new()
            .fixed(&names[0], &names[3], mbps(10.0))
            .fixed(&names[1], &names[5], mbps(25.0));
        let rm = modeler.flow_info(&mono, &req, Timeframe::Current).unwrap();
        let rf = modeler.flow_info(&fed, &req, Timeframe::Current).unwrap();
        for (a, b) in rm.fixed.iter().zip(rf.fixed.iter()) {
            assert_eq!(a.bandwidth, b.bandwidth, "{mode:?}: grant bandwidth");
            assert_eq!(a.fully_satisfied, b.fully_satisfied);
            assert_eq!(a.estimate_quality, b.estimate_quality);
        }
    }
}

/// Builds a 4-shard flaky federation over `sim`, returning the
/// federation, the per-shard kill switches, and the per-shard regions.
fn flaky_federation(
    tree: &FatTree,
    sim: &SharedSim,
    force_full_merge: bool,
) -> (MultiCollector, Vec<Arc<AtomicBool>>, Vec<Vec<u32>>) {
    let shards = shard_fabric(tree, sim, 3).unwrap();
    let mut flags = Vec::new();
    let mut regions = Vec::new();
    let children: Vec<Box<dyn Collector>> = shards
        .into_iter()
        .map(|s| {
            let down = Arc::new(AtomicBool::new(false));
            flags.push(Arc::clone(&down));
            regions.push(s.region().to_vec());
            Box::new(FlakyShard { inner: s, down }) as Box<dyn Collector>
        })
        .collect();
    let fed = MultiCollector::with_config(
        children,
        MultiCollectorConfig {
            missing_after: SimDuration::from_secs(4),
            poll_workers: 1,
            force_full_merge,
            ..Default::default()
        },
    );
    (fed, flags, regions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental dirty-shard merge is bit-identical to a
    /// from-scratch re-merge under interleaved shard faults: two
    /// federations over the same simulator — one incremental, one
    /// `force_full_merge` — see the same fault schedule and must publish
    /// identical snapshots, graph digests, and flow grants every round.
    #[test]
    fn incremental_merge_matches_full_remerge(seed in 0u64..200) {
        let tree = FatTree::build(4).unwrap();
        let sim = share(Simulator::new(FatTree::build(4).unwrap().into_parts().0).unwrap());
        let mut handles = seed_flows(&tree, &sim, seed, 6);
        let (mut inc, inc_flags, _) = flaky_federation(&tree, &sim, false);
        let (mut full, full_flags, _) = flaky_federation(&tree, &sim, true);
        inc.refresh_topology().unwrap();
        full.refresh_topology().unwrap();
        prop_assert_eq!(inc.topology_epoch(), full.topology_epoch());

        let mut state = seed ^ 0x5DEE_CE66;
        let mut next = move |bound: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for round in 0..8 {
            // Interleaved faults: each shard is independently down ~1/4
            // of the rounds; the schedule is identical for both
            // federations.
            for (a, b) in inc_flags.iter().zip(full_flags.iter()) {
                let down = next(4) == 0;
                a.store(down, Ordering::Relaxed);
                b.store(down, Ordering::Relaxed);
            }
            // Churn: traffic moves between rounds so stale regions carry
            // visibly old utilization.
            if !handles.is_empty() && next(3) == 0 {
                let h = handles.swap_remove(next(handles.len() as u64) as usize);
                sim.lock().stop_flow(h).unwrap();
            }
            if next(3) == 0 {
                handles.extend(seed_flows(&tree, &sim, seed ^ round, 1));
            }
            sim.lock().run_for(SimDuration::from_millis(500)).unwrap();

            let ri = inc.poll();
            let rf = full.poll();
            prop_assert_eq!(ri.is_ok(), rf.is_ok(), "round {}: poll outcome diverged", round);
            if ri.is_err() {
                continue; // every shard down this round
            }
            prop_assert_eq!(
                inc.history().latest().is_some(),
                full.history().latest().is_some(),
                "round {}: one federation published, the other did not", round
            );
            let (a, b) = match (inc.history().latest(), full.history().latest()) {
                (Some(a), Some(b)) => (a, b),
                _ => continue,
            };
            snapshots_bit_identical(a, b, &format!("round {round}"));
        }

        // Everything a consumer can observe agrees at the end too.
        for f in inc_flags.iter().chain(full_flags.iter()) {
            f.store(false, Ordering::Relaxed);
        }
        let names: Vec<String> = (0..4)
            .map(|p| tree.topology().node(tree.host(p, 0)).name.clone())
            .collect();
        let modeler = Modeler::default();
        let gi = modeler.get_graph(&inc, &names, Timeframe::Current).unwrap();
        let gf = modeler.get_graph(&full, &names, Timeframe::Current).unwrap();
        prop_assert_eq!(gi.digest(), gf.digest());
        let req = FlowInfoRequest::new().fixed(&names[0], &names[2], mbps(8.0));
        let ri = modeler.flow_info(&inc, &req, Timeframe::Current).unwrap();
        let rf = modeler.flow_info(&full, &req, Timeframe::Current).unwrap();
        prop_assert_eq!(&ri.fixed[0].bandwidth, &rf.fixed[0].bandwidth);
        prop_assert_eq!(ri.fixed[0].estimate_quality, rf.fixed[0].estimate_quality);
    }
}

/// One shard crashes mid-churn: its region ages Stale and then Missing
/// while every other region keeps answering Fresh with live utilization.
#[test]
fn crashed_shard_degrades_only_its_region() {
    let tree = FatTree::build(4).unwrap();
    let sim = share(Simulator::new(FatTree::build(4).unwrap().into_parts().0).unwrap());
    seed_flows(&tree, &sim, 0x1998, 10);
    let (mut fed, flags, regions) = flaky_federation(&tree, &sim, false);
    fed.refresh_topology().unwrap();
    sim.lock().run_for(SimDuration::from_millis(500)).unwrap();
    assert!(fed.poll().unwrap());
    {
        let snap = fed.history().latest().unwrap();
        assert!(snap.quality.iter().all(|q| q.is_fresh()), "healthy baseline not fresh");
    }

    // Shard 0 (first pod group) crashes; traffic keeps churning.
    flags[0].store(true, Ordering::Relaxed);
    let in_region = |i: usize| regions[0].contains(&(i as u32));
    for _ in 0..3 {
        seed_flows(&tree, &sim, 0xD00D, 2);
        sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
        assert!(fed.poll().unwrap(), "federation must keep publishing");
    }
    let snap = fed.history().latest().unwrap();
    for (i, q) in snap.quality.iter().enumerate() {
        if in_region(i) {
            assert!(
                matches!(q, DataQuality::Stale { .. }),
                "crashed region entry {i} should be Stale, got {q:?}"
            );
        } else {
            assert!(q.is_fresh(), "healthy region entry {i} degraded: {q:?}");
        }
    }
    assert!(fed.describe().contains("3/4"), "describe: {}", fed.describe());

    // Past `missing_after`, the dead region reads Missing — but only it.
    sim.lock().run_for(SimDuration::from_secs(4)).unwrap();
    assert!(fed.poll().unwrap());
    let snap = fed.history().latest().unwrap();
    for (i, q) in snap.quality.iter().enumerate() {
        if in_region(i) {
            assert_eq!(*q, DataQuality::Missing, "entry {i}");
        } else {
            assert!(q.is_fresh(), "entry {i}: {q:?}");
        }
    }

    // The shard recovers: one poll later its region is Fresh again.
    flags[0].store(false, Ordering::Relaxed);
    sim.lock().run_for(SimDuration::from_millis(100)).unwrap();
    assert!(fed.poll().unwrap());
    let snap = fed.history().latest().unwrap();
    assert!(snap.quality.iter().all(|q| q.is_fresh()), "recovery did not restore freshness");
}
