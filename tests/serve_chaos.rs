//! Overload + chaos tests for the serving front end, with pinned seeds.
//!
//! The contract under test is the overload-safety bar of the serving
//! layer: at 4x the admission capacity, with agents crashing and links
//! going flaky mid-run, (a) the backlog never exceeds the configured
//! bound, (b) every submitted request either completes or comes back
//! with a *typed* `Overloaded` / `DeadlineExceeded` — nothing is
//! silently dropped and nothing panics, and (c) the shed decisions are
//! bit-reproducible: the same seed replays to the same admission/shed
//! digest.
//!
//! The satellite test races a `MultiCollector` failover against
//! `run_batch`: one region dies between two batches, the batch keeps
//! answering bit-identically run-to-run, and every answer's
//! `Provenance` names the surviving federation state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remos::apps::testbed::{cmu_testbed, TESTBED_HOSTS, TESTBED_ROUTERS};
use remos::core::collector::multi::MultiCollector;
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::{Collector, SimClock};
use remos::core::{Query, QuerySpec, Remos, RemosConfig, RemosError};
use remos::net::{SimDuration, Simulator};
use remos::serve::{
    BreakerCollector, BreakerConfig, CircuitBreaker, Rung, ServeRequest, Server, ServerConfig,
};
use remos::snmp::fault::{FaultDirector, FaultPlan};
use remos::snmp::sim::{register_all_agents_with_faults, share, SharedSim};
use remos::snmp::SimTransport;
use std::sync::Arc;

const QUEUE_BOUND: usize = 8;
/// Requests served per round; each round offers 4x this.
const CAPACITY: usize = 2;
const ROUNDS: usize = 20;

/// A serving stack over the CMU testbed with a seeded fault schedule:
/// one agent crashes for good mid-run, another turns flaky.
fn chaos_stack(seed: u64) -> (Server, SharedSim) {
    let sim = share(Simulator::new(cmu_testbed()).expect("simulator"));
    let transport = Arc::new(SimTransport::new());
    let director = FaultDirector::new();
    let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<&str> =
        TESTBED_HOSTS.iter().chain(TESTBED_ROUTERS.iter()).copied().collect();
    let crash_victim = pool.swap_remove(rng.gen_range(0..pool.len()));
    let flaky_victim = pool.swap_remove(rng.gen_range(0..pool.len()));
    let crash_at = SimDuration::from_millis(rng.gen_range(2_000..6_000));
    director.set_plan(
        crash_victim,
        FaultPlan::new().crash(remos::net::SimTime::ZERO + crash_at, SimDuration::from_secs(3_600)),
        seed,
    );
    let from = remos::net::SimTime::ZERO + SimDuration::from_millis(rng.gen_range(2_000..6_000));
    let until = from + SimDuration::from_millis(rng.gen_range(1_000..3_000));
    director.set_plan(
        flaky_victim,
        FaultPlan::new().flaky(from, until, rng.gen_range(0.2..0.5)),
        seed ^ 1,
    );

    let mut collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    let breaker = CircuitBreaker::new(BreakerConfig::default());
    collector.set_retry_observer(Arc::clone(&breaker) as _);
    let collector = BreakerCollector::wrap(collector, breaker);
    let remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    let cfg = ServerConfig {
        max_queue_depth: QUEUE_BOUND,
        max_tenant_depth: QUEUE_BOUND,
        default_allowance: Some(SimDuration::from_secs(6)),
        fair_seed: seed,
        ..ServerConfig::default()
    };
    (Server::new(remos, cfg), sim)
}

struct OverloadOutcome {
    digest: u64,
    offered: usize,
    admission_shed: usize,
    answered: usize,
    deadline_shed: usize,
    served_errors: usize,
    max_depth: usize,
}

/// Drive one seeded overload+chaos run at 4x capacity and account for
/// every single request.
fn overload_run(seed: u64) -> OverloadOutcome {
    let (mut server, sim) = chaos_stack(seed);
    let mut out = OverloadOutcome {
        digest: 0,
        offered: 0,
        admission_shed: 0,
        answered: 0,
        deadline_shed: 0,
        served_errors: 0,
        max_depth: 0,
    };
    let mut admitted = 0usize;
    let hosts = TESTBED_HOSTS;
    for round in 0..ROUNDS {
        for k in 0..CAPACITY * 4 {
            let i = (round * CAPACITY * 4 + k) % hosts.len();
            let j = (i + 1 + k % 3) % hosts.len();
            out.offered += 1;
            let req = ServeRequest::new(format!("t{}", k % 3), Query::graph([hosts[i], hosts[j]]));
            match server.submit(req) {
                Ok(_) => admitted += 1,
                Err(RemosError::Overloaded { retry_after }) => {
                    assert!(retry_after > SimDuration::ZERO, "seed {seed:#x}: zero retry hint");
                    out.admission_shed += 1;
                }
                Err(e) => panic!("seed {seed:#x}: untyped admission failure: {e}"),
            }
            // The backlog bound must hold at its tightest point — right
            // after every submit, overloaded or not.
            out.max_depth = out.max_depth.max(server.queue_depth());
        }
        for _ in 0..CAPACITY {
            let Some(o) = server.serve_next() else { break };
            note(seed, &mut out, o);
        }
        sim.lock().run_for(SimDuration::from_millis(250)).expect("advance");
    }
    for o in server.drain() {
        note(seed, &mut out, o);
    }
    assert_eq!(
        admitted,
        out.answered + out.deadline_shed + out.served_errors,
        "seed {seed:#x}: requests lost between admission and serving"
    );
    assert_eq!(out.offered, admitted + out.admission_shed, "seed {seed:#x}: offered mismatch");
    out.digest = server.decision_digest();
    out
}

fn note(seed: u64, out: &mut OverloadOutcome, o: remos::serve::ServeOutcome) {
    match &o.result {
        Ok(_) => {
            assert!(o.rung != Rung::Rejected, "seed {seed:#x}: Ok answer on the rejection rung");
            out.answered += 1;
        }
        Err(RemosError::DeadlineExceeded { .. }) => out.deadline_shed += 1,
        // Any other error must still be a typed RemosError (it is, by
        // construction) — count it so the accounting above stays exact.
        Err(_) => out.served_errors += 1,
    }
}

fn assert_overload_contract(seed: u64) {
    let first = overload_run(seed);
    let second = overload_run(seed);
    assert_eq!(
        first.digest, second.digest,
        "seed {seed:#x}: shed decisions are not reproducible"
    );
    assert!(
        first.max_depth <= QUEUE_BOUND,
        "seed {seed:#x}: queue grew to {} (bound {QUEUE_BOUND})",
        first.max_depth
    );
    assert!(first.admission_shed > 0, "seed {seed:#x}: 4x load never tripped admission");
    assert!(first.answered > 0, "seed {seed:#x}: overload starved every request");
}

#[test]
fn overload_chaos_seed_c0ffee() {
    assert_overload_contract(0xC0FFEE);
}

#[test]
fn overload_chaos_seed_1998() {
    assert_overload_contract(1998);
}

#[test]
fn overload_chaos_seed_42() {
    assert_overload_contract(42);
}

/// FNV-1a over a debug rendering: good enough to detect any bit-level
/// divergence between two runs' answers.
fn fingerprint(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Satellite: a `MultiCollector` failover racing `run_batch`. The east
/// region dies between two batches under a pinned chaos seed; the batch
/// API keeps answering, the answers are bit-identical run-to-run, and
/// the provenance of every post-failover answer names the surviving
/// federation state.
fn failover_batch_run(seed: u64) -> (u64, u64) {
    let sim = share(Simulator::new(cmu_testbed()).expect("simulator"));
    let transport = Arc::new(SimTransport::new());
    let director = FaultDirector::new();
    let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);
    let pick = |names: &[&str]| -> Vec<String> {
        agents.iter().filter(|a| names.contains(&a.as_str())).cloned().collect()
    };
    let east_names = ["m-4", "m-5", "m-6", "m-7", "m-8", "timberline", "whiteface"];
    let mk = |set: Vec<String>| -> Box<dyn Collector> {
        Box::new(SnmpCollector::new(
            Arc::clone(&transport),
            set,
            SnmpCollectorConfig::default(),
        ))
    };
    let multi =
        MultiCollector::new(vec![mk(pick(&["m-1", "m-2", "m-3", "aspen"])), mk(pick(&east_names))]);
    let mut remos = Remos::new(
        Box::new(multi),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    sim.lock().run_for(SimDuration::from_secs(1)).expect("warmup");

    let batch: Vec<QuerySpec> = vec![
        Query::graph(["m-1", "m-8"]).into(), // cross-region
        Query::graph(["m-1", "m-3"]).into(), // west only
        Query::graph(["m-5", "m-8"]).into(), // east only
    ];

    // Healthy batch: both children current.
    let healthy = remos.run_batch(batch.clone());
    let mut healthy_fp = 0u64;
    for r in &healthy {
        let g = r
            .as_ref()
            .expect("healthy batch entry failed")
            .clone()
            .into_graph()
            .expect("graph answer");
        let p = g.provenance.as_ref().expect("provenance stripped");
        assert_eq!(p.source.as_deref(), Some("multi(2/2 children current)"));
        healthy_fp ^= fingerprint(&format!("{:?}{:?}{:?}", g.nodes, g.links, g.provenance));
    }

    // Chaos, pinned by seed: a flaky window on one east agent, then the
    // whole east region crashes for good.
    let mut rng = StdRng::seed_from_u64(seed);
    let now = sim.lock().now();
    let until = now + SimDuration::from_millis(rng.gen_range(500..1_500));
    director.set_plan(
        east_names[rng.gen_range(0..east_names.len())],
        FaultPlan::new().flaky(now, until, rng.gen_range(0.2..0.5)),
        seed,
    );
    for a in east_names {
        director.set_plan(
            a,
            FaultPlan::new().crash(now, SimDuration::from_secs(3_600)),
            seed ^ 7,
        );
    }
    sim.lock().run_for(SimDuration::from_secs(1)).expect("outage settles");

    // Failover batch: the east child now only carries its last sample
    // forward, so the federation reports one current child — and every
    // answer still arrives, flagged instead of dropped.
    let after = remos.run_batch(batch);
    let mut after_fp = 0u64;
    for r in &after {
        let g = r
            .as_ref()
            .expect("failover batch entry failed")
            .clone()
            .into_graph()
            .expect("graph answer");
        let p = g.provenance.as_ref().expect("provenance stripped");
        assert_eq!(
            p.source.as_deref(),
            Some("multi(1/2 children current)"),
            "provenance does not name the surviving collector"
        );
        after_fp ^= fingerprint(&format!("{:?}{:?}{:?}", g.nodes, g.links, g.provenance));
    }
    (healthy_fp, after_fp)
}

#[test]
fn multicollector_failover_races_run_batch() {
    let (h1, a1) = failover_batch_run(0xC0FFEE);
    let (h2, a2) = failover_batch_run(0xC0FFEE);
    assert_eq!(h1, h2, "healthy batch answers diverged across identical runs");
    assert_eq!(a1, a2, "post-failover batch answers diverged across identical runs");
    assert_ne!(h1, a1, "failover left no trace in the answers at all");
}
