//! Co-scheduled applications and simultaneous flow queries.
//!
//! §3's "internal sharing" point scaled up to whole applications: two
//! FFTs co-scheduled across the testbed's backbone slow each other down,
//! and a *simultaneous* Remos flow query predicts the degraded per-flow
//! bandwidth that individual queries would overestimate — "information on
//! how much bandwidth is available for each flow in isolation is going to
//! be overly optimistic" (§4.2).

use remos::apps::fft::fft_program;
use remos::apps::TestbedHarness;
use remos::core::{FlowInfoRequest, Query};
use remos::fx::runtime::{Mapping, RuntimeConfig};
use remos::fx::{run_concurrent, TaskSpec};
use remos::net::SimTime;

#[test]
fn co_scheduled_ffts_slow_each_other_on_the_backbone() {
    // Solo: FFT(1K) x2 on {m-1, m-4} crosses aspen—timberline alone.
    let solo = {
        let h = TestbedHarness::cmu();
        let reports = run_concurrent(
            &h.sim,
            RuntimeConfig::default(),
            vec![TaskSpec {
                program: fft_program(1024, 2),
                mapping: Mapping::of(&["m-1", "m-4"]).unwrap(),
                start: SimTime::ZERO,
            }],
        )
        .unwrap();
        reports[0].elapsed
    };
    // Duo: a second FFT on {m-2, m-5} shares the same backbone.
    let duo = {
        let h = TestbedHarness::cmu();
        let reports = run_concurrent(
            &h.sim,
            RuntimeConfig::default(),
            vec![
                TaskSpec {
                    program: fft_program(1024, 2),
                    mapping: Mapping::of(&["m-1", "m-4"]).unwrap(),
                    start: SimTime::ZERO,
                },
                TaskSpec {
                    program: fft_program(1024, 2),
                    mapping: Mapping::of(&["m-2", "m-5"]).unwrap(),
                    start: SimTime::ZERO,
                },
            ],
        )
        .unwrap();
        assert!((reports[0].elapsed - reports[1].elapsed).abs() < 0.05, "{reports:?}");
        reports[0].elapsed
    };
    // Comm was ~30% of the solo run; halving comm bandwidth stretches it.
    assert!(duo > solo * 1.15, "duo {duo} vs solo {solo}");
    assert!(duo < solo * 2.0, "compute does not contend: {duo} vs {solo}");
}

#[test]
fn simultaneous_query_predicts_co_application_share() {
    let mut h = TestbedHarness::cmu();
    // Both prospective applications would push m-1 -> m-4 and m-2 -> m-5
    // over the backbone. Queried individually each sees 100 Mbps:
    let solo_1 = h
        .adapter
        .remos_mut()
        .run(Query::flows(FlowInfoRequest::new().variable("m-1", "m-4", 1.0)))
        .unwrap()
        .into_flows()
        .unwrap();
    assert!(solo_1.variable[0].bandwidth.median > 95e6);
    // Queried simultaneously, the shared backbone halves both:
    let both = h
        .adapter
        .remos_mut()
        .run(Query::flows(
            FlowInfoRequest::new()
                .variable("m-1", "m-4", 1.0)
                .variable("m-2", "m-5", 1.0),
        ))
        .unwrap()
        .into_flows()
        .unwrap();
    for g in &both.variable {
        assert!(
            (g.bandwidth.median - 50e6).abs() < 2e6,
            "{}",
            g.bandwidth
        );
    }
    // And the simulator agrees: start both greedy flows.
    let mut s = h.sim.lock();
    let t = s.topology_arc();
    let f1 = s
        .start_flow(remos::net::flow::FlowParams::greedy(
            t.lookup("m-1").unwrap(),
            t.lookup("m-4").unwrap(),
        ))
        .unwrap();
    let f2 = s
        .start_flow(remos::net::flow::FlowParams::greedy(
            t.lookup("m-2").unwrap(),
            t.lookup("m-5").unwrap(),
        ))
        .unwrap();
    assert!((s.flow_rate(f1).unwrap() - 50e6).abs() < 1e5);
    assert!((s.flow_rate(f2).unwrap() - 50e6).abs() < 1e5);
}

#[test]
fn three_way_coschedule_with_staggered_arrivals() {
    let h = TestbedHarness::cmu();
    let mk = |a: &str, b: &str, start| TaskSpec {
        program: fft_program(1024, 2),
        mapping: Mapping::of(&[a, b]).unwrap(),
        start,
    };
    let reports = run_concurrent(
        &h.sim,
        RuntimeConfig::default(),
        vec![
            mk("m-1", "m-4", SimTime::ZERO),
            mk("m-2", "m-5", SimTime::from_millis(500)),
            mk("m-3", "m-6", SimTime::from_secs(1)),
        ],
    )
    .unwrap();
    // Launch order respected; all complete.
    assert!(reports[0].started < reports[1].started);
    assert!(reports[1].started < reports[2].started);
    for r in &reports {
        assert!(r.elapsed > 0.0 && r.bytes_sent > 0);
    }
}
