//! Integration tests for dynamic topology: link failures, SNMP traps,
//! collector re-discovery, and application-level reaction — "The topology
//! and behavior of networks will change from application invocation to
//! invocation and may even change during execution" (§10).

use remos::apps::airshed::airshed_program_iters;
use remos::apps::testbed::{cmu_testbed, TESTBED_HOSTS};
use remos::apps::TestbedHarness;
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::Collector;
use remos::core::{Query, QueryResult, RemosError};
use remos::net::{SimDuration, SimTime, Simulator};
use remos::snmp::sim::{register_all_agents, share, SimTrapSource};
use remos::snmp::SimTransport;
use std::sync::Arc;

fn link_between(sim: &remos::snmp::sim::SharedSim, a: &str, b: &str) -> remos::net::LinkId {
    let s = sim.lock();
    let topo = s.topology_arc();
    let na = topo.lookup(a).unwrap();
    let nb = topo.lookup(b).unwrap();
    topo.neighbors(na)
        .iter()
        .find(|&&(_, n)| n == nb)
        .map(|&(l, _)| l)
        .expect("adjacent")
}

#[test]
fn trap_triggers_rediscovery() {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    let mut collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    collector.set_trap_source(Box::new(SimTrapSource::new(Arc::clone(&sim), "public")));

    collector.refresh_topology().unwrap();
    assert_eq!(collector.topology().unwrap().link_count(), 10);

    // Take the timberline—whiteface backbone down.
    let backbone = link_between(&sim, "timberline", "whiteface");
    sim.lock().set_link_state(backbone, false).unwrap();

    // The next poll sees the trap and re-discovers a 9-link topology.
    collector.poll().unwrap();
    let topo = collector.topology().unwrap();
    assert_eq!(topo.link_count(), 9);
    // whiteface and its hosts are now a disconnected island.
    assert!(!topo.is_connected());

    // Restoration is also trap-driven.
    sim.lock().set_link_state(backbone, true).unwrap();
    collector.poll().unwrap();
    assert_eq!(collector.topology().unwrap().link_count(), 10);
}

#[test]
fn graph_query_fails_across_partition() {
    let mut h = TestbedHarness::cmu();
    // Prime discovery.
    h.adapter
        .remos_mut()
        .run(Query::graph(["m-1", "m-8"]))
        .unwrap();
    let backbone = link_between(&h.sim, "timberline", "whiteface");
    h.sim.lock().set_link_state(backbone, false).unwrap();
    // m-8 is unreachable: the query must report the disconnection.
    let res = h
        .adapter
        .remos_mut()
        .run(Query::graph(["m-1", "m-8"]))
        .and_then(QueryResult::into_graph);
    assert!(
        matches!(res, Err(RemosError::Disconnected(_, _))),
        "{res:?}"
    );
    // Queries within the surviving region still work.
    let g = h
        .adapter
        .remos_mut()
        .run(Query::graph(["m-1", "m-4"]))
        .unwrap()
        .into_graph()
        .unwrap();
    assert_eq!(g.compute_names().len(), 2);
}

#[test]
fn adaptive_program_evacuates_failed_region() {
    let mut h = TestbedHarness::cmu();
    // whiteface loses its uplink at t = 30 s, stranding m-7 and m-8.
    let backbone = link_between(&h.sim, "timberline", "whiteface");
    h.sim
        .lock()
        .schedule_link_state(SimTime::from_secs(30), backbone, false)
        .unwrap();

    // 5-node Airshed starting with two nodes in the doomed region. The
    // adaptation pool excludes the stranded hosts after the failure
    // because the collector's re-discovered topology disconnects them —
    // consider_migration must route around.
    let prog = airshed_program_iters(5, 8);
    let rep = h.run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-6", "m-7", "m-8"]);
    // Either the run migrated off the island in time, or the partition hit
    // mid-communication. Both are legitimate outcomes of a partition; what
    // must NOT happen is a hang. Accept success-with-migration or a
    // disconnection error.
    match rep {
        Ok(rep) => {
            assert!(
                !rep.final_mapping.iter().any(|n| n == "m-7" || n == "m-8"),
                "{:?}",
                rep.final_mapping
            );
            assert!(!rep.migrations.is_empty());
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("no path") || msg.contains("no route") || msg.contains("stalled"),
                "unexpected error: {msg}"
            );
        }
    }
}

#[test]
fn flows_survive_failover_between_parallel_paths() {
    // Build a diamond: h1 -[r1]- h2 and h1 -[r2]- h2.
    let mut b = remos::net::TopologyBuilder::new();
    let h1 = b.compute("h1");
    let h2 = b.compute("h2");
    let r1 = b.network("r1");
    let r2 = b.network("r2");
    let lat = SimDuration::from_micros(10);
    let p1 = b.link(h1, r1, remos::net::mbps(100.0), lat).unwrap();
    b.link(r1, h2, remos::net::mbps(100.0), lat).unwrap();
    b.link(h1, r2, remos::net::mbps(100.0), lat).unwrap();
    b.link(r2, h2, remos::net::mbps(100.0), lat).unwrap();
    let mut sim = Simulator::new(b.build().unwrap()).unwrap();

    // A transfer that outlives two failovers.
    sim.schedule_link_state(SimTime::from_millis(300), p1, false).unwrap();
    sim.schedule_link_state(SimTime::from_millis(600), p1, true).unwrap();
    let f = sim
        .start_flow(remos::net::flow::FlowParams::bulk(h1, h2, 12_500_000))
        .unwrap();
    let recs = sim.run_until_flows_complete(&[f]).unwrap();
    assert!(recs[0].completed);
    // Full rate throughout (the backup has equal capacity): exactly 1 s.
    assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-3, "{}", sim.now());
}
