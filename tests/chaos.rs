//! Chaos tests: Table-2-style runs under randomized, seeded fault
//! schedules. Agents crash (sysUpTime and counters reset), freeze
//! (responses delayed past the manager's deadline), and turn flaky
//! (datagram loss bursts) while programs execute and queries run.
//!
//! The invariants exercised here are the degraded-mode contract:
//! queries keep returning answers while at least one agent is
//! reachable, data derived from unreachable agents is flagged
//! non-fresh instead of silently served, counter discontinuities never
//! fabricate utilization spikes, and a federation fails over between
//! collectors when one region goes dark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remos::apps::airshed::airshed_program_iters;
use remos::apps::harness::TestbedHarness;
use remos::apps::synthetic::{install_scenario, TrafficScenario};
use remos::apps::testbed::{cmu_testbed, TESTBED_HOSTS, TESTBED_ROUTERS};
use remos::core::collector::multi::{MultiCollector, MultiCollectorConfig};
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::{Collector, SimClock, Snapshot};
use remos::core::{DataQuality, FlowInfoRequest, Query, Remos, RemosConfig};
use remos::net::flow::FlowParams;
use remos::net::{mbps, DirLink, Direction, SimDuration, SimTime, Simulator, Topology};
use remos::snmp::fault::{FaultDirector, FaultPlan};
use remos::snmp::sim::{register_all_agents_with_faults, share};
use remos::snmp::SimTransport;
use std::sync::Arc;

/// Both directions of the (unique) link between two named nodes.
fn dirs_between(topo: &Topology, x: &str, y: &str) -> [DirLink; 2] {
    let xi = topo.lookup(x).unwrap();
    let yi = topo.lookup(y).unwrap();
    for link in topo.link_ids() {
        let l = topo.link(link);
        let (a, b) = (l.tail(Direction::AtoB), l.tail(Direction::BtoA));
        if (a == xi && b == yi) || (a == yi && b == xi) {
            return [
                DirLink { link, dir: Direction::AtoB },
                DirLink { link, dir: Direction::BtoA },
            ];
        }
    }
    panic!("no link between {x} and {y}");
}

/// Install a randomized fault schedule on 2–3 agents: always at least
/// one crash and one freeze, sometimes a flaky window on top.
/// Deterministic in `seed`. Faults start no earlier than t = 2 s so the
/// initial (strict, all-agents) discovery at t ≈ 1 s stays clean.
fn random_fault_schedule(director: &Arc<FaultDirector>, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<&str> = TESTBED_HOSTS
        .iter()
        .chain(TESTBED_ROUTERS.iter())
        .copied()
        .collect();
    let n = rng.gen_range(2..=3);
    let mut victims = Vec::new();
    for _ in 0..n {
        let i = rng.gen_range(0..pool.len());
        victims.push(pool.swap_remove(i).to_string());
    }
    for (k, v) in victims.iter().enumerate() {
        let crash_at = SimTime::ZERO + SimDuration::from_millis(rng.gen_range(2_000..20_000));
        let downtime = SimDuration::from_millis(rng.gen_range(1_000..3_000));
        let from = SimTime::ZERO + SimDuration::from_millis(rng.gen_range(2_000..20_000));
        let until = from + SimDuration::from_millis(rng.gen_range(500..2_000));
        let loss = rng.gen_range(0.2..0.5);
        let plan = match k {
            0 => FaultPlan::new().crash(crash_at, downtime),
            1 => FaultPlan::new().freeze(from, until),
            _ => FaultPlan::new().crash(crash_at, downtime).flaky(from, until, loss),
        };
        director.set_plan(v, plan, seed ^ k as u64);
    }
    victims
}

/// One full Table-2-style scenario under a seeded fault schedule: an
/// adaptive program runs to completion while agents misbehave, queries
/// keep answering afterwards, and data behind a dead agent is flagged.
fn chaos_scenario(seed: u64) {
    let director = FaultDirector::new();
    let victims = random_fault_schedule(&director, seed);
    let mut h = TestbedHarness::cmu_with_faults(&director, SnmpCollectorConfig::default());
    install_scenario(&h.sim, TrafficScenario::Interfering1).unwrap();
    h.sim.lock().run_for(SimDuration::from_secs(1)).unwrap();

    // Force discovery before any fault window opens (strict discovery
    // needs every agent once; after that, degraded mode carries on).
    h.select_nodes(&TESTBED_HOSTS, "m-4", 2).unwrap();

    // 5 ranks to match the 5 initial nodes: the runtime rejects mappings
    // with more nodes than ranks.
    let prog = airshed_program_iters(5, 4);
    let rep = h
        .run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-6", "m-7", "m-8"])
        .unwrap_or_else(|e| panic!("seed {seed:#x}: adaptive run failed: {e}"));
    assert!(rep.elapsed > 0.0, "seed {seed:#x}: no progress");
    assert!(rep.bytes_sent > 0, "seed {seed:#x}: nothing sent");

    // Kill one victim for good: queries must still answer (10 of 11
    // agents are reachable) and must flag the dead agent's links.
    let now = h.sim.lock().now();
    director.set_plan(
        &victims[0],
        FaultPlan::new().crash(now, SimDuration::from_secs(3_600)),
        seed,
    );
    h.sim.lock().run_for(SimDuration::from_secs(2)).unwrap();
    h.select_nodes(&TESTBED_HOSTS, "m-1", 2)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: query died with one agent down: {e}"));
    let g = h
        .adapter
        .remos_mut()
        .run(Query::graph(TESTBED_HOSTS))
        .unwrap()
        .into_graph()
        .unwrap();
    assert!(
        g.links
            .iter()
            .any(|l| l.quality.iter().any(|q| !q.is_fresh())),
        "seed {seed:#x}: dead agent {} left no non-fresh flag",
        victims[0]
    );
}

#[test]
fn chaos_seed_c0ffee() {
    chaos_scenario(0xC0FFEE);
}

#[test]
fn chaos_seed_1998() {
    chaos_scenario(1998);
}

#[test]
fn chaos_seed_42() {
    chaos_scenario(42);
}

/// Poll a fault-wired collector once a second for six seconds over a
/// constant 40 Mbps flow m-1 → m-8 and return the snapshots.
fn polled_run(director: &Arc<FaultDirector>) -> Vec<Snapshot> {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents_with_faults(&transport, &sim, "public", director);
    let mut c =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    c.refresh_topology().unwrap();
    {
        let mut s = sim.lock();
        let topo = s.topology_arc();
        let m1 = topo.lookup("m-1").unwrap();
        let m8 = topo.lookup("m-8").unwrap();
        s.start_flow(FlowParams::cbr(m1, m8, mbps(40.0))).unwrap();
    }
    c.poll().unwrap(); // prime baselines at t = 0
    let mut snaps = Vec::new();
    for _ in 0..6 {
        sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
        assert!(c.poll().unwrap(), "poll produced no sample");
        snaps.push(c.history().latest().unwrap().clone());
    }
    snaps
}

/// A crash mid-run resets the agent's counters; naive differencing
/// across the restart would read as a multi-Gbps spike (the delta looks
/// like a 32-bit wrap). The collector must instead discard the poisoned
/// interval and be back within 5% of the fault-free value on the next
/// clean interval.
#[test]
fn crash_discontinuity_produces_no_spike() {
    let clean = polled_run(&FaultDirector::new());

    let director = FaultDirector::new();
    // aspen (which carries the m-1 → m-8 flow's first hop) crashes at
    // t = 2.5 s and is back at t = 3.5 s: the t = 4 s poll sees the
    // sysUpTime regression and the reset counters.
    director.set_plan(
        "aspen",
        FaultPlan::new().crash(
            SimTime::ZERO + SimDuration::from_millis(2_500),
            SimDuration::from_secs(1),
        ),
        1,
    );
    let faulty = polled_run(&director);
    assert_eq!(clean.len(), faulty.len());

    // No spike, ever: the true rate never exceeds 40 Mbps, so nothing
    // in the faulty run may either (a leaked reset-delta would read as
    // gigabits per second).
    for (i, s) in faulty.iter().enumerate() {
        for &u in s.util.iter() {
            assert!(u <= mbps(42.0), "spike at sample {i}: {u} bps");
        }
    }
    // The faulty run visibly degrades during the outage …
    assert!(
        faulty
            .iter()
            .any(|s| s.quality.iter().any(|q| !q.is_fresh())),
        "crash left no quality flag"
    );
    // … and the next clean interval (t = 5 s, sample index 4) plus the
    // one after match the fault-free run within 5%, fully fresh again.
    for i in [4, 5] {
        assert!(faulty[i].quality.iter().all(|q| q.is_fresh()), "sample {i} not fresh");
        for (f, c) in faulty[i].util.iter().zip(clean[i].util.iter()) {
            let tol = (c * 0.05).max(mbps(0.5));
            assert!((f - c).abs() <= tol, "sample {i}: {f} vs clean {c}");
        }
    }
}

/// Satellite: federation failover. Two regional collectors feed a
/// MultiCollector; one region's agents all die mid-run. Merged samples
/// keep flowing from the survivor, the dead region's data ages from
/// Stale into Missing, and the border link stays fresh because the
/// surviving side still measures it.
#[test]
fn multi_collector_failover() {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    let director = FaultDirector::new();
    let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);
    let pick = |names: &[&str]| -> Vec<String> {
        agents
            .iter()
            .filter(|a| names.contains(&a.as_str()))
            .cloned()
            .collect()
    };
    let east_names = ["m-4", "m-5", "m-6", "m-7", "m-8", "timberline", "whiteface"];
    let mk = |set: Vec<String>| -> Box<dyn Collector> {
        Box::new(SnmpCollector::new(
            Arc::clone(&transport),
            set,
            SnmpCollectorConfig::default(),
        ))
    };
    let mut multi = MultiCollector::with_config(
        vec![mk(pick(&["m-1", "m-2", "m-3", "aspen"])), mk(pick(&east_names))],
        MultiCollectorConfig { missing_after: SimDuration::from_secs(2), ..Default::default() },
    );
    multi.refresh_topology().unwrap();
    let topo = multi.topology().unwrap();
    assert_eq!(topo.node_count(), 11);

    let west_dirs = dirs_between(&topo, "m-1", "aspen");
    let east_dirs = dirs_between(&topo, "m-4", "timberline");
    let border_dirs = dirs_between(&topo, "aspen", "timberline");

    multi.poll().unwrap(); // prime
    sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    assert!(multi.poll().unwrap());
    {
        let snap = multi.history().latest().unwrap();
        for d in west_dirs.iter().chain(&east_dirs).chain(&border_dirs) {
            assert!(snap.quality_of(*d).is_fresh(), "not fresh before faults");
        }
    }

    // The entire east region goes dark.
    let now = sim.lock().now();
    for a in east_names {
        director.set_plan(a, FaultPlan::new().crash(now, SimDuration::from_secs(3_600)), 9);
    }

    // Next merged sample still arrives (west answers); east data is now
    // one second old — Stale, not Missing yet.
    sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
    assert!(multi.poll().unwrap(), "federation stopped sampling after one region died");
    {
        let snap = multi.history().latest().unwrap();
        for d in &west_dirs {
            assert!(snap.quality_of(*d).is_fresh(), "survivor region degraded");
        }
        for d in &east_dirs {
            assert!(
                matches!(snap.quality_of(*d), DataQuality::Stale { .. }),
                "dead region should be stale, got {:?}",
                snap.quality_of(*d)
            );
        }
        // The border link is measured from the aspen side too, so the
        // failover keeps it fresh.
        for d in &border_dirs {
            assert!(snap.quality_of(*d).is_fresh(), "border link lost to failover");
        }
    }

    // Three more seconds: the dead region's age exceeds the 2 s budget
    // and its entries decay to Missing; the survivor never wavers.
    for _ in 0..3 {
        sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
        assert!(multi.poll().unwrap());
    }
    let snap = multi.history().latest().unwrap();
    for d in &west_dirs {
        assert!(snap.quality_of(*d).is_fresh(), "survivor region degraded late");
    }
    for d in &east_dirs {
        assert!(
            snap.quality_of(*d).is_missing(),
            "dead region should have aged to missing, got {:?}",
            snap.quality_of(*d)
        );
    }
}

/// Queries keep answering during a partial outage, and every answer
/// derived from the dead agent is flagged: graph links, path quality,
/// and flow-grant estimates.
#[test]
fn queries_survive_partial_outage_with_flags() {
    let sim = share(Simulator::new(cmu_testbed()).unwrap());
    let transport = Arc::new(SimTransport::new());
    let director = FaultDirector::new();
    let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);
    let collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    let mut remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );

    // Healthy baseline: everything fresh.
    let g = remos.run(Query::graph(TESTBED_HOSTS)).unwrap().into_graph().unwrap();
    assert!(g.links.iter().all(|l| l.quality.iter().all(|q| q.is_fresh())));

    // whiteface dies for good. It serves the outbound counters of its
    // own links, so whiteface → m-8 (among others) loses its source.
    let now = sim.lock().now();
    director.set_plan(
        "whiteface",
        FaultPlan::new().crash(now, SimDuration::from_secs(3_600)),
        7,
    );
    sim.lock().run_for(SimDuration::from_secs(1)).unwrap();

    let g = remos.run(Query::graph(TESTBED_HOSTS)).unwrap().into_graph().unwrap();
    // The query answered, and the dead router's links are flagged …
    assert!(g.links.iter().any(|l| l.quality.iter().any(|q| !q.is_fresh())));
    // … path-granular: aspen's region is untouched, the path into the
    // whiteface region is not.
    let m1 = g.index_of("m-1").unwrap();
    let m2 = g.index_of("m-2").unwrap();
    let m8 = g.index_of("m-8").unwrap();
    assert!(g.path_quality(m1, m2).unwrap().is_fresh());
    assert!(!g.path_quality(m1, m8).unwrap().is_fresh());

    // Flow grants carry the same flag: an estimate across the dead
    // region is marked, one inside the healthy region is not.
    let req = FlowInfoRequest::new()
        .fixed("m-1", "m-2", mbps(5.0))
        .fixed("m-1", "m-8", mbps(5.0));
    let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
    assert!(resp.fixed[0].estimate_quality.is_fresh());
    assert!(!resp.fixed[1].estimate_quality.is_fresh());
}
