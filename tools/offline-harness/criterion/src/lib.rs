//! Minimal criterion facade for the offline harness: compiles the bench
//! targets and runs each registered closure a handful of times (smoke
//! execution, no statistics) so `cargo bench` works offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {name} (smoke)");
        f(&mut Bencher);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self {
        println!("bench {}/{} (smoke)", self.name, id.0);
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("bench {}/{} (smoke)", self.name, id.0);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    pub fn new<P: Display>(name: &str, p: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

pub struct Bencher;

impl Bencher {
    /// Run the routine a few times — enough to catch panics and produce
    /// side effects, without pretending to measure anything.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            std_black_box(f());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
