//! Minimal serde_json facade for the offline harness.
//!
//! `Value` + `json!` are real (enough to build and pretty-print the
//! documents the bench binaries emit). The derive-driven entry points
//! (`to_string`, `from_str`, …) are stubs that fail at runtime, because
//! the harness's no-op serde derive emits no impls — tests that need
//! real roundtrips must be skipped offline.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stubbed out in offline harness")
    }
}

pub type Map = BTreeMap<String, Value>;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

macro_rules! value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}
value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Value, pretty: bool, depth: usize) -> fmt::Result {
    let pad = |f: &mut fmt::Formatter<'_>, d: usize| -> fmt::Result {
        if pretty {
            f.write_str("\n")?;
            for _ in 0..d {
                f.write_str("  ")?;
            }
        }
        Ok(())
    };
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                write!(f, "{}", *n as i64)
            } else {
                write!(f, "{n}")
            }
        }
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                pad(f, depth + 1)?;
                write_value(f, item, pretty, depth + 1)?;
            }
            if !items.is_empty() {
                pad(f, depth)?;
            }
            f.write_str("]")
        }
        Value::Object(map) => {
            f.write_str("{")?;
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                pad(f, depth + 1)?;
                write_escaped(f, k)?;
                f.write_str(if pretty { ": " } else { ":" })?;
                write_value(f, item, pretty, depth + 1)?;
            }
            if !map.is_empty() {
                pad(f, depth)?;
            }
            f.write_str("}")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, f.alternate(), 0)
    }
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($item)),* ])
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_entries!(map; $($body)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Object-body muncher for `json!` — handles nested `{…}` values, which
/// a plain `$val:expr` matcher cannot (a brace literal is not an expr).
#[macro_export]
#[doc(hidden)]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:tt : { $($nested:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($nested)* }));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:tt : { $($nested:tt)* } $(,)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($nested)* }));
    };
    ($map:ident; $key:tt : $val:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:tt : $val:expr) => {
        $map.insert($key.to_string(), $crate::Value::from($val));
    };
}

pub fn to_string<T: ?Sized>(_v: &T) -> Result<String, Error> {
    Err(Error)
}

pub fn to_string_pretty<T: ?Sized>(_v: &T) -> Result<String, Error> {
    Err(Error)
}

pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error)
}

pub fn to_value<T: ?Sized>(_v: &T) -> Result<Value, Error> {
    Err(Error)
}

pub fn from_value<T>(_v: Value) -> Result<T, Error> {
    Err(Error)
}
