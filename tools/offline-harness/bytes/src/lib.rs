//! Minimal bytes facade for the offline typecheck harness: the subset of
//! Buf/BufMut/Bytes/BytesMut that remos-snmp's codec uses, backed by Vec.

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn copy_from_slice(b: &[u8]) -> Bytes {
        Bytes { data: b.to_vec(), pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    pub fn slice(&self, range: impl core::ops::RangeBounds<usize>) -> Bytes {
        use core::ops::Bound;
        let base = &self.data[self.pos..];
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => base.len(),
        };
        Bytes { data: base[start..end].to_vec(), pos: 0 }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn take(&mut self, n: usize) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(self.take(n));
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

pub trait BufMut {
    fn put_slice(&mut self, b: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.data.extend_from_slice(b);
    }
}
