//! Minimal parking_lot facade for the offline typecheck harness:
//! panic-free lock API over std's poisoning one.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(e) => MutexGuard(e.into_inner()),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(e) => RwLockReadGuard(e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(e) => RwLockWriteGuard(e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
