//! Minimal rand facade for the offline typecheck harness: just enough
//! surface for StdRng::seed_from_u64 + gen/gen_bool/gen_range calls.
//! Sequences differ from the real crate, but are deterministic per seed
//! and genuinely pseudo-random (splitmix64), so seed-sensitivity and
//! distribution-shaped tests behave sanely.

pub mod rngs {
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) u64);
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng(state ^ 0x9e37_79b9_7f4a_7c15)
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in [0, 1).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gen_range<T: FromU64>(&mut self, range: impl SampleRange<T>) -> T {
        range.sample(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    fn gen<T: FromU64>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Range forms accepted by `gen_range`, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    fn sample(self, v: u64) -> T;
}

impl<T: FromU64> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, v: u64) -> T {
        T::in_range(self, v)
    }
}

impl<T: FromU64 + IncStep> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, v: u64) -> T {
        let (lo, hi) = self.into_inner();
        T::in_range(lo..hi.inc(), v)
    }
}

/// One-past-the-end for inclusive upper bounds (integers only).
pub trait IncStep {
    fn inc(self) -> Self;
}

macro_rules! inc_step {
    ($($t:ty),*) => {$(
        impl IncStep for $t {
            fn inc(self) -> $t {
                self + 1
            }
        }
    )*};
}
inc_step!(u32, u64, usize, i32, i64);

/// Helper bound standing in for rand's distribution machinery.
pub trait FromU64 {
    fn from_u64(v: u64) -> Self;
    fn in_range(range: core::ops::Range<Self>, v: u64) -> Self
    where
        Self: Sized;
}

impl FromU64 for f64 {
    fn from_u64(v: u64) -> f64 {
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
    fn in_range(range: core::ops::Range<f64>, v: u64) -> f64 {
        range.start + f64::from_u64(v) * (range.end - range.start)
    }
}

impl FromU64 for u64 {
    fn from_u64(v: u64) -> u64 {
        v
    }
    fn in_range(range: core::ops::Range<u64>, v: u64) -> u64 {
        range.start + v % (range.end - range.start)
    }
}

impl FromU64 for usize {
    fn from_u64(v: u64) -> usize {
        v as usize
    }
    fn in_range(range: core::ops::Range<usize>, v: u64) -> usize {
        range.start + (v % (range.end - range.start) as u64) as usize
    }
}

impl FromU64 for u32 {
    fn from_u64(v: u64) -> u32 {
        v as u32
    }
    fn in_range(range: core::ops::Range<u32>, v: u64) -> u32 {
        range.start + (v % (range.end - range.start) as u64) as u32
    }
}

impl FromU64 for i32 {
    fn from_u64(v: u64) -> i32 {
        v as i32
    }
    fn in_range(range: core::ops::Range<i32>, v: u64) -> i32 {
        range.start + (v % (range.end - range.start) as i64 as u64) as i32
    }
}

impl FromU64 for i64 {
    fn from_u64(v: u64) -> i64 {
        v as i64
    }
    fn in_range(range: core::ops::Range<i64>, v: u64) -> i64 {
        range.start + (v % (range.end - range.start) as u64) as i64
    }
}
