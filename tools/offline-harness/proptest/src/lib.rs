//! Minimal proptest work-alike for the offline typecheck/test harness.
//!
//! No shrinking, no persistence — just deterministic pseudo-random case
//! generation with the same API surface the repo's property tests use,
//! so `cargo test` can actually execute them in this sandbox.

pub mod test_runner {
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// splitmix64 — deterministic, seedable, dependency-free.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn seeded(seed: u64) -> TestRng {
            TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in [0, bound).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            std::rc::Rc::new(self)
        }
    }

    /// Rc rather than Box so strategies stay cloneable (real proptest's
    /// `BoxedStrategy` is `Clone` too, via an internal Arc).
    pub type BoxedStrategy<T> = std::rc::Rc<dyn Strategy<Value = T>>;

    impl<T> Strategy for std::rc::Rc<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Real proptest treats `&str` as a regex to generate matching strings.
    /// This harness ignores the pattern and emits 0–12 lowercase letters —
    /// enough for tests that use regexes as "some short identifier".
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(13) as usize;
            (0..len)
                .map(|_| char::from(b'a' + rng.below(26) as u8))
                .collect()
        }
    }

    /// `Just(v)` — constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted-equal union used by `prop_oneof!`.
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size bounds accepted where real proptest takes `Into<SizeRange>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64 + 1) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `target`; bail after
            // a bounded number of duplicate draws (real proptest rejects
            // the whole case instead — overkill for this harness).
            let mut attempts = 0;
            while out.len() < target && attempts < 64 + 16 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for [u8; 4] {
        fn arbitrary(rng: &mut TestRng) -> [u8; 4] {
            (rng.next_u64() as u32).to_be_bytes()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// Lazily-resolved index into a collection of runtime-known size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The `proptest::prop` path used via the prelude (`prop::collection::…`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::seeded(
                    0x5eed ^ (case as u64).wrapping_mul(0x0100_0000_01b3),
                );
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&$strat, &mut rng),)+
                );
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property failed at case {case}: {msg}");
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($arm),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                format!("{} != {}: {:?} vs {:?}", stringify!($a), stringify!($b), lhs, rhs),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                format!("{:?} vs {:?}: {}", lhs, rhs, format!($($fmt)+)),
            );
        }
    }};
}
