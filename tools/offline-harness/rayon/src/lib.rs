//! Minimal rayon facade for the offline harness: the parallel iterator
//! entry points the repo uses, executed sequentially. Results are
//! identical (the workloads are embarrassingly parallel); only wall-clock
//! parallelism is lost, which the harness does not measure.

pub mod prelude {
    pub trait ParSliceExt<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParSliceExt<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(n)
        }
    }
}
