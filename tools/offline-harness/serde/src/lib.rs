//! Minimal serde facade for the offline typecheck harness.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}
