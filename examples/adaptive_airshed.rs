//! Runtime adaptation: a migrating Airshed run (§8.3, Table 3).
//!
//! An Airshed simulation compiled for 8 ranks runs on 5 nodes. At every
//! outer iteration the adaptation module queries Remos and migrates to
//! the least-loaded part of the network. Midway through the run,
//! interfering traffic appears — watch the program move.
//!
//! Run with: `cargo run --release --example adaptive_airshed`

use remos::apps::airshed::airshed_program_iters;
use remos::apps::synthetic::add_greedy_traffic;
use remos::apps::testbed::TESTBED_HOSTS;
use remos::apps::TestbedHarness;
use remos::fx::SelfTraffic;
use remos::net::SimTime;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut h = TestbedHarness::cmu();
    // Apply the §8.3 fix so the program doesn't flee its own traffic.
    h.adapter.cfg.self_traffic = SelfTraffic::Subtract;

    // Traffic through timberline -> whiteface appears at t = 100 s.
    add_greedy_traffic(&h.sim, "m-6", "m-8", 8, SimTime::from_secs(100), None)?;

    let prog = airshed_program_iters(8, 30);
    println!("Airshed, 8 ranks on 5 nodes, 30 outer iterations.");
    println!("Interfering m-6 -> m-8 traffic starts at t=100 s.\n");
    let rep = h.run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-6", "m-7", "m-8"])?;

    println!("total time: {:.0} s", rep.elapsed);
    println!(
        "breakdown: compute {:.0} s, comm {:.0} s, decisions {:.0} s, migrations {:.0} s",
        rep.breakdown.compute,
        rep.breakdown.comm,
        rep.breakdown.decision,
        rep.breakdown.migration
    );
    if rep.migrations.is_empty() {
        println!("no migrations occurred");
    }
    for (iter, nodes) in &rep.migrations {
        println!("  iteration {iter:>3}: migrated to {}", nodes.join(", "));
    }
    println!("final node set: {}", rep.final_mapping.join(", "));

    // The same run without adaptation, for contrast.
    let mut h2 = TestbedHarness::cmu();
    add_greedy_traffic(&h2.sim, "m-6", "m-8", 8, SimTime::from_secs(100), None)?;
    let fixed = h2.run_fixed(&prog, &["m-4", "m-5", "m-6", "m-7", "m-8"])?;
    println!(
        "\nfixed-mapping run under the same traffic: {:.0} s ({:.0}% slower)",
        fixed.elapsed,
        (fixed.elapsed / rep.elapsed - 1.0) * 100.0
    );
    Ok(())
}
