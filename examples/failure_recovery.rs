//! Link failure, SNMP traps, and application recovery.
//!
//! The paper's closing remarks note that "the topology and behavior of
//! networks will change from application invocation to invocation and may
//! even change during execution". This example takes the testbed's
//! timberline—whiteface backbone down mid-run: the simulator reroutes or
//! kills affected flows, the agents raise linkDown traps, the collector
//! re-discovers the topology, and an adaptive Airshed run evacuates the
//! stranded region.
//!
//! Run with: `cargo run --release --example failure_recovery`

use remos::apps::airshed::airshed_program_iters;
use remos::apps::testbed::TESTBED_HOSTS;
use remos::apps::TestbedHarness;
use remos::prelude::*;
use remos::net::SimTime;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut h = TestbedHarness::cmu();

    // Find the backbone link.
    let backbone = {
        let s = h.sim.lock();
        let t = s.topology_arc();
        let tl = t.lookup("timberline")?;
        let wf = t.lookup("whiteface")?;
        t.neighbors(tl)
            .iter()
            .find(|&&(_, n)| n == wf)
            .map(|&(l, _)| l)
            .ok_or("timberline has no link to whiteface")?
    };

    // Show the healthy view first.
    let g = h
        .adapter
        .remos_mut()
        .run(Query::graph(TESTBED_HOSTS))?
        .into_graph()?;
    println!("healthy testbed: {} links, all hosts reachable", g.links.len());

    // The backbone dies at t = 25 s.
    h.sim.lock().schedule_link_state(SimTime::from_secs(25), backbone, false)?;
    println!("scheduled: timberline—whiteface fails at t=25 s\n");

    // An adaptive Airshed on 4 nodes, two of them beyond the doomed link.
    let prog = airshed_program_iters(4, 8);
    let rep = h.run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-7", "m-8"]);
    match rep {
        Ok(rep) => {
            println!("run completed in {:.0} s", rep.elapsed);
            for (iter, nodes) in &rep.migrations {
                println!("  iteration {iter}: migrated to {}", nodes.join(", "));
            }
            println!("final node set: {}", rep.final_mapping.join(", "));
            assert!(!rep.final_mapping.iter().any(|n| n == "m-7" || n == "m-8"));
            println!("\nthe program evacuated the partitioned region and finished.");
        }
        Err(e) => {
            // The failure can also strike mid-communication, which a real
            // runtime would surface as a connection error.
            println!("run aborted by the partition: {e}");
            println!("(the failure hit while a transfer was in flight)");
        }
    }

    // The collector's view after the failure reflects the partition.
    let res = h
        .adapter
        .remos_mut()
        .run(Query::graph(["m-4", "m-7"]))
        .and_then(QueryResult::into_graph);
    println!(
        "\npost-failure graph query m-4 <-> m-7: {}",
        match res {
            Ok(_) => "still connected (unexpected!)".to_string(),
            Err(e) => format!("{e}"),
        }
    );
    Ok(())
}
