//! Network-aware node selection on the CMU testbed (§8.2, Fig 4).
//!
//! Installs the paper's synthetic m-6 → m-8 traffic, lets Remos select
//! execution nodes for a 4-node FFT, and compares against the naive
//! static choice — the experiment behind Table 2.
//!
//! Run with: `cargo run --release --example node_selection`

use remos::apps::fft::fft_program;
use remos::apps::synthetic::{install_scenario, TrafficScenario};
use remos::apps::testbed::TESTBED_HOSTS;
use remos::apps::TestbedHarness;
use remos::net::SimDuration;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The Fig 3 testbed with the Fig 4 traffic.
    let mut h = TestbedHarness::cmu();
    install_scenario(&h.sim, TrafficScenario::Interfering1)?;
    h.sim.lock().run_for(SimDuration::from_secs(1))?;
    println!("Background traffic: m-6 -> timberline -> whiteface -> m-8\n");

    // Remos-driven selection, start node m-4 (the paper's §7.3 pipeline).
    let selected = h.select_nodes(&TESTBED_HOSTS, "m-4", 4)?;
    println!("Remos selects: {}", selected.join(", "));

    let prog = fft_program(512, 4);
    let refs: Vec<&str> = selected.iter().map(String::as_str).collect();
    let smart = h.run_fixed(&prog, &refs)?;
    println!(
        "FFT(512) on Remos-selected nodes: {:.3} s  (compute {:.3}, comm {:.3})",
        smart.elapsed, smart.breakdown.compute, smart.breakdown.comm
    );

    // The naive choice: the locality-best set, ignoring traffic.
    let mut h2 = TestbedHarness::cmu();
    install_scenario(&h2.sim, TrafficScenario::Interfering1)?;
    h2.sim.lock().run_for(SimDuration::from_secs(1))?;
    let naive = ["m-4", "m-5", "m-6", "m-7"];
    let slow = h2.run_fixed(&prog, &naive)?;
    println!(
        "FFT(512) on static-chosen nodes  ({}): {:.3} s  (comm {:.3})",
        naive.join(", "),
        slow.elapsed,
        slow.breakdown.comm
    );
    println!(
        "\nnetwork-aware selection is {:.0}% faster under this traffic",
        (slow.elapsed / smart.elapsed - 1.0) * 100.0
    );
    Ok(())
}
