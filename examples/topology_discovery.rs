//! Topology discovery and logical collapse (§4.3, §5).
//!
//! Shows the collector's raw SNMP view (walking a router agent's MIB the
//! way the real Remos collector did), the physical topology it
//! reconstructs, and how the Modeler collapses it into logical
//! topologies of different shapes depending on which nodes an
//! application asks about. Also demonstrates the benchmark collector for
//! "networks that do not respond to our SNMP queries".
//!
//! Run with: `cargo run --example topology_discovery`

use remos::apps::testbed::cmu_testbed;
use remos::core::collector::benchmark::{BenchmarkCollector, BenchmarkCollectorConfig};
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::{Collector, SimClock};
use remos::core::{Remos, RemosConfig};
use remos::prelude::*;
use remos::snmp::oid::well_known;
use remos::snmp::sim::{register_all_agents, share};
use remos::snmp::{Manager, SimTransport};
use remos::net::Simulator;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let sim = share(Simulator::new(cmu_testbed())?);
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");

    // --- Raw SNMP: walk timberline's interface table --------------------
    let mgr = Manager::new(Arc::clone(&transport), "public");
    println!("SNMP walk of timberline's neighbor table:");
    for vb in mgr.bulk_walk("timberline", &well_known::neighbor_name())? {
        println!("  {} = {}", vb.oid, vb.value);
    }

    // --- The collector's reconstructed physical view --------------------
    let mut collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    collector.refresh_topology()?;
    let topo = collector.topology()?;
    println!(
        "\ndiscovered: {} nodes ({} hosts, {} routers), {} links",
        topo.node_count(),
        topo.compute_nodes().len(),
        topo.network_nodes().len(),
        topo.link_count()
    );

    // --- Logical collapse ------------------------------------------------
    let mut remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    for nodes in [vec!["m-1", "m-8"], vec!["m-1", "m-4", "m-8"], vec!["m-4", "m-5"]] {
        let g = remos.run(Query::graph(nodes.iter().copied()))?.into_graph()?;
        println!(
            "\nlogical topology for {:?}: {} nodes, {} links",
            nodes,
            g.nodes.len(),
            g.links.len()
        );
        for l in &g.links {
            println!(
                "  {} -- {}: {:.0} Mbps, latency {} (physical chain collapsed)",
                g.nodes[l.a].name,
                g.nodes[l.b].name,
                l.capacity / 1e6,
                l.latency
            );
        }
    }

    // --- Benchmark collector over an "opaque" region ---------------------
    let mut probe = BenchmarkCollector::new(
        Arc::clone(&sim),
        vec!["m-1".into(), "m-4".into(), "m-7".into()],
        BenchmarkCollectorConfig::default(),
    );
    probe.poll()?;
    let snap = probe.history().latest().ok_or("benchmark collector produced no snapshot")?;
    println!("\nbenchmark collector (active probes, no SNMP):");
    let t = probe.topology()?;
    for l in t.link_ids() {
        let link = t.link(l);
        let fwd = 100e6 - snap.util[l.index() * 2];
        println!(
            "  measured {} -> {}: {:.0} Mbps available",
            t.node(link.a).name,
            t.node(link.b).name,
            fwd / 1e6
        );
    }
    println!("  probing consumed {} of simulated time (SNMP polling is passive)", snap.interval);
    Ok(())
}
