//! The three flow classes and statistical reporting (§4.2, §4.4).
//!
//! Reproduces the paper's worked example — variable flows with relative
//! bandwidths 3 : 4.5 : 9 sharing a 5.5 Mbps bottleneck receive 1, 1.5
//! and 3 Mbps — and shows why Remos reports quartiles instead of a mean:
//! under bursty on/off cross-traffic the mean says "half a link", while
//! the quartiles reveal the bimodal truth.
//!
//! Run with: `cargo run --example flow_queries`

use remos::apps::synthetic::add_bursty_traffic;
use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::SimClock;
use remos::core::{Remos, RemosConfig};
use remos::prelude::*;
use remos::net::{kbps, mbps, SimDuration, Simulator, TopologyBuilder};
use remos::snmp::sim::{register_all_agents, share};
use remos::snmp::SimTransport;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // Three senders, one receiver, and a 5.5 Mbps bottleneck link into it.
    let mut b = TopologyBuilder::new();
    let s1 = b.compute("s1");
    let s2 = b.compute("s2");
    let s3 = b.compute("s3");
    let sink = b.compute("sink");
    let sw = b.network("sw");
    let lat = SimDuration::from_micros(100);
    for s in [s1, s2, s3] {
        b.link(s, sw, mbps(100.0), lat)?;
    }
    b.link(sw, sink, mbps(5.5), lat)?;
    let sim = share(Simulator::new(b.build()?)?);

    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    let collector = SnmpCollector::new(transport, agents, SnmpCollectorConfig::default());
    let mut remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );

    // --- The paper's §4.2 example -------------------------------------
    let req = FlowInfoRequest::new()
        .variable("s1", "sink", 3.0)
        .variable("s2", "sink", 4.5)
        .variable("s3", "sink", 9.0);
    let resp = remos.run(Query::flows(req))?.into_flows()?;
    println!("variable flows 3 : 4.5 : 9 over a 5.5 Mbps bottleneck:");
    for g in &resp.variable {
        println!(
            "  {} -> {}: {:.2} Mbps",
            g.endpoints.src,
            g.endpoints.dst,
            g.bandwidth.median / 1e6
        );
    }

    // --- Fixed + independent interplay ---------------------------------
    let req = FlowInfoRequest::new()
        .fixed("s1", "sink", kbps(1500.0))
        .independent("s2", "sink");
    let resp = remos.run(Query::flows(req))?.into_flows()?;
    let indep = resp.independent.as_ref().ok_or("independent flow missing from response")?;
    println!(
        "\nfixed 1.5 Mbps flow granted {:.2} Mbps; independent flow absorbs {:.2} Mbps",
        resp.fixed[0].bandwidth.median / 1e6,
        indep.bandwidth.median / 1e6
    );

    // --- Quartiles under bursty traffic (§4.4) --------------------------
    add_bursty_traffic(
        &sim,
        "s3",
        "sink",
        SimDuration::from_secs(2),
        SimDuration::from_secs(2),
        99,
    )?;
    let req = FlowInfoRequest::new().independent("s1", "sink");
    let resp = remos
        .run(Query::flows(req).timeframe(Timeframe::Window(SimDuration::from_secs(30))))?
        .into_flows()?;
    let q = &resp
        .independent
        .as_ref()
        .ok_or("independent flow missing from response")?
        .bandwidth;
    println!("\nindependent flow vs 50%-duty bursty cross-traffic, 30 s window:");
    println!("  quartiles [min|q1|median|q3|max] in Mbps:");
    println!(
        "  [{:.2} | {:.2} | {:.2} | {:.2} | {:.2}]  mean {:.2}, accuracy {:.2}",
        q.min / 1e6,
        q.q1 / 1e6,
        q.median / 1e6,
        q.q3 / 1e6,
        q.max / 1e6,
        q.mean / 1e6,
        q.accuracy
    );
    println!("  (a single mean would hide that the link alternates empty/full)");
    Ok(())
}
