//! Quickstart: the complete Remos pipeline on a small network.
//!
//! Builds the Fig 2 stack bottom-up — simulated network, SNMP agents,
//! Collector, Modeler/Remos — then asks the two questions Remos exists to
//! answer: "what does the network between my nodes look like?" and "what
//! bandwidth would my flows get?"
//!
//! Run with: `cargo run --example quickstart`

use remos::core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos::core::collector::SimClock;
use remos::core::{Remos, RemosConfig};
use remos::prelude::*;
use remos::net::flow::FlowParams;
use remos::net::{mbps, SimDuration, Simulator, TopologyBuilder};
use remos::snmp::sim::{register_all_agents, share};
use remos::snmp::SimTransport;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A network: two hosts behind one router, 100 Mbps links.
    let mut b = TopologyBuilder::new();
    let alpha = b.compute("alpha");
    let beta = b.compute("beta");
    let router = b.network("router");
    b.link(alpha, router, mbps(100.0), SimDuration::from_micros(100))?;
    b.link(router, beta, mbps(100.0), SimDuration::from_micros(100))?;
    let sim = share(Simulator::new(b.build()?)?);

    // 2. SNMP agents on every node, and a collector that polls them.
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    println!("SNMP agents: {agents:?}");
    let collector = SnmpCollector::new(
        Arc::clone(&transport),
        agents,
        SnmpCollectorConfig::default(),
    );

    // 3. Remos on top.
    let mut remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );

    // 4. Some background traffic to make the answers interesting.
    sim.lock().start_flow(FlowParams::cbr(alpha, beta, mbps(60.0)))?;
    sim.lock().run_for(SimDuration::from_secs(1))?;

    // 5. remos_get_graph: the logical topology between alpha and beta.
    let graph = remos.run(Query::graph(["alpha", "beta"]))?.into_graph()?;
    println!("\nLogical topology: {} nodes, {} links", graph.nodes.len(), graph.links.len());
    if let Some(p) = &graph.provenance {
        println!(
            "(answer built from {} snapshot(s), worst quality {:?}, solver {})",
            p.snapshots, p.worst_quality, p.solver
        );
    }
    let a = graph.index_of("alpha")?;
    let z = graph.index_of("beta")?;
    println!(
        "available bandwidth alpha -> beta: {:.1} Mbps (60 of 100 Mbps are in use)",
        graph.path_avail_bw(a, z)? / 1e6
    );
    println!(
        "available bandwidth beta -> alpha: {:.1} Mbps (that direction is idle)",
        graph.path_avail_bw(z, a)? / 1e6
    );

    // 6. remos_flow_info: what would my flows get?
    let req = FlowInfoRequest::new()
        .fixed("alpha", "beta", mbps(10.0)) // an audio-like fixed flow
        .independent("alpha", "beta"); //      and a greedy bulk flow
    let resp = remos.run(Query::flows(req))?.into_flows()?;
    let fixed = &resp.fixed[0];
    println!(
        "\nfixed 10 Mbps flow: granted {:.1} Mbps (satisfied: {})",
        fixed.bandwidth.median / 1e6,
        fixed.fully_satisfied
    );
    let indep = resp.independent.as_ref().ok_or("independent flow missing from response")?;
    println!(
        "independent flow:   granted {:.1} Mbps (the residual after the fixed flow)",
        indep.bandwidth.median / 1e6
    );
    println!("path latency: {}", indep.latency);
    Ok(())
}
