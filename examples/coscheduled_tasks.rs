//! Task parallelism: co-scheduled applications sharing one network.
//!
//! Fx "supports integrated task and data parallel programming" (§7.1);
//! this example launches three FFTs as concurrent tasks. Two share the
//! aspen—timberline backbone and interfere; the third arrives late onto a
//! disjoint region. A simultaneous Remos flow query predicts the
//! degraded shares the co-scheduled tasks will actually see — the §4.2
//! point that querying flows in isolation is "overly optimistic".
//!
//! Run with: `cargo run --release --example coscheduled_tasks`

use remos::apps::fft::fft_program;
use remos::apps::TestbedHarness;
use remos::prelude::*;
use remos::fx::runtime::{Mapping, RuntimeConfig};
use remos::fx::{run_concurrent, TaskSpec};
use remos::net::SimTime;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut h = TestbedHarness::cmu();

    // Before launching: ask Remos what the two backbone-crossing tasks
    // will get, individually and together.
    let solo = h
        .adapter
        .remos_mut()
        .run(Query::flows(FlowInfoRequest::new().variable("m-1", "m-4", 1.0)))?
        .into_flows()?;
    let both = h
        .adapter
        .remos_mut()
        .run(Query::flows(
            FlowInfoRequest::new()
                .variable("m-1", "m-4", 1.0)
                .variable("m-2", "m-5", 1.0),
        ))?
        .into_flows()?;
    println!(
        "queried alone, m-1 -> m-4 is promised {:.0} Mbps; queried together with m-2 -> m-5: {:.0} Mbps each",
        solo.variable[0].bandwidth.median / 1e6,
        both.variable[0].bandwidth.median / 1e6
    );

    // Launch: two FFT(1K) tasks across the backbone at t=0, a third on
    // the whiteface region at t=1 s.
    let mapping = |a: &str, b: &str| Mapping::of(&[a, b]);
    let task = |m: Mapping, start| TaskSpec { program: fft_program(1024, 2), mapping: m, start };
    let reports = run_concurrent(
        &h.sim,
        RuntimeConfig::default(),
        vec![
            task(mapping("m-1", "m-4")?, SimTime::ZERO),
            task(mapping("m-2", "m-5")?, SimTime::ZERO),
            task(mapping("m-7", "m-8")?, SimTime::from_secs(1)),
        ],
    )?;

    println!("\nthree FFT(1K) tasks co-scheduled:");
    for r in &reports {
        println!(
            "  started t={:>4.1} s: finished t={:>5.2} s (elapsed {:.2} s; comm {:.2} s, compute {:.2} s)",
            r.started, r.finished, r.elapsed, r.breakdown.comm, r.breakdown.compute
        );
    }
    println!(
        "\nthe two backbone tasks ran their transposes at the shared 50 Mbps\n\
         Remos predicted; the whiteface task ran at full speed in parallel."
    );
    assert!(reports[0].elapsed > reports[2].elapsed);
    Ok(())
}
